"""Scenario: a data journalist extends an open-data table with more rows.

This is the survey's §2.5 workload: given a query table, find unionable
tables in a lake whose members share *domains* but have little raw value
overlap.  The example compares all three surveyed generations of union
search side by side:

* TUS       — attribute unionability (set / semantic / NL measures);
* SANTOS    — adds binary-relationship semantics (kills confounders);
* Starmie   — contextualized column embeddings + ANN index.

Run:  python examples/open_data_union_search.py
"""

from repro.bench.metrics import average_precision, precision_at_k
from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.generate import make_union_corpus


def main() -> None:
    # A synthetic open-data lake: 6 topic groups x 5 tables, partial value
    # overlap, shuffled column orders, noisy headers — plus exact ground
    # truth for scoring what each engine returns.
    corpus = make_union_corpus(
        n_groups=6, tables_per_group=5, rows_per_table=50, value_overlap=0.3,
        seed=7,
    )
    print(f"lake: {corpus.lake.stats()}")

    system = DiscoverySystem(
        corpus.lake,
        DiscoveryConfig(embedding_dim=48),
        ontology=corpus.ontology,
    ).build()

    query_name = corpus.groups[0][0]
    truth = corpus.truth[query_name]
    print(f"\nquery table: {query_name}")
    print(f"ground truth unionable: {sorted(truth)}")

    for method in ("tus", "santos", "starmie"):
        results = system.unionable_search(query_name, k=5, method=method)
        got = [r.table for r in results]
        p_at_k = precision_at_k(got, truth, 4)
        ap = average_precision(got, truth)
        print(f"\n== {method} ==  P@4={p_at_k:.2f}  AP={ap:.2f}")
        for r in results:
            marker = "*" if r.table in truth else " "
            print(f" {marker} {r.table:<18} score={r.score:.3f}")

    # Show the column alignment Starmie found for its top hit — which query
    # column unions with which candidate column.
    top = system.unionable_search(query_name, k=1, method="starmie")[0]
    query = corpus.lake.table(query_name)
    cand = corpus.lake.table(top.table)
    print(f"\ncolumn alignment for {query_name} <-> {top.table}:")
    for qi, cj, score in top.alignment:
        print(
            f"  {query.columns[qi].name:<18} <-> "
            f"{cand.columns[cj].name:<18} cos={score:.2f}"
        )


if __name__ == "__main__":
    main()
