"""Scenario: improve an ML model by discovering features in the lake.

The survey's §2.7 workload: a data scientist has a weak regression model
and a lake full of tables that might join useful features in.  The example
runs (1) ARDA-style automatic augmentation with random-injection feature
selection and (2) QCR correlated-column search to *explain* which lake
columns correlate with the target before joining anything.

Run:  python examples/ml_feature_augmentation.py
"""

from repro.apps.arda import ArdaAugmenter
from repro.datalake.generate import make_correlation_corpus, make_ml_corpus
from repro.search.correlated import CorrelatedSearch


def main() -> None:
    # --- Part 1: ARDA augmentation -------------------------------------------
    corpus = make_ml_corpus(
        n_rows=300, n_informative=4, n_noise=10, noise_level=0.3, seed=3
    )
    print(f"lake: {corpus.lake.stats()}")
    print(
        f"hidden signal lives in {len(corpus.informative)} of "
        f"{len(corpus.informative) + len(corpus.noise)} candidate tables"
    )

    augmenter = ArdaAugmenter(corpus.lake, seed=3).build()
    base = corpus.lake.table(corpus.base_table)
    report = augmenter.augment(base, key_column=0, target_column=2)

    print("\ndownstream ridge-regression R^2:")
    print(f"  base feature only      : {report.base_r2:6.3f}")
    print(f"  + all joined features  : {report.augmented_r2:6.3f}")
    print(f"  + random-inj. selection: {report.selected_r2:6.3f}")

    kept = {name.split(":")[0] for name in report.selected_features}
    print(f"\nselected joins: {sorted(kept)}")
    print(f"  informative kept: {len(kept & corpus.informative)}"
          f"/{len(corpus.informative)}")
    print(f"  noise kept      : {len(kept & corpus.noise)}"
          f"/{len(corpus.noise)}")

    # --- Part 2: correlated-column search (QCR sketches) ---------------------
    corr = make_correlation_corpus(n_candidates=20, n_keys=400, seed=3)
    engine = CorrelatedSearch(sketch_size=256).build(corr.lake)
    query = corr.lake.table(corr.query_table)

    print("\ntop columns correlated with corr_query.y after joining:")
    print(f"{'table':<16} {'est r':>7} {'true r':>7} {'containment':>12}")
    for hit in engine.search(query, key_column=0, value_column=1, k=6):
        print(
            f"{hit.table:<16} {hit.correlation:7.2f} "
            f"{corr.truth[hit.table]:7.2f} {hit.containment:12.2f}"
        )
    print("\n(the sketches never executed a join — estimates come from "
          "keyed bottom-n samples)")


if __name__ == "__main__":
    main()
