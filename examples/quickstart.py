"""Quickstart: build a lake from CSV files and discover tables in it.

Creates a handful of CSV files in a temp directory (standing in for your
open-data dump), ingests them as a DataLake, runs the Figure-1 offline
pipeline, and issues one query of each kind.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import DataLake, DiscoveryConfig, DiscoverySystem, write_table_csv
from repro.datalake.table import ColumnRef, Table, TableMetadata


def make_demo_csvs(directory: Path) -> None:
    """Write a tiny 'open data portal' of related CSVs."""
    cities = Table.from_dict(
        "city_population",
        {
            "city": ["oslo", "rome", "lima", "cairo", "quito", "hanoi"],
            "population": ["709000", "2873000", "9752000", "9540000",
                           "1763000", "8054000"],
        },
        TableMetadata(title="world city population", tags=["geo", "census"]),
    )
    air = Table.from_dict(
        "air_quality",
        {
            "city": ["oslo", "rome", "lima", "cairo", "bogota", "hanoi"],
            "pm25": ["7.2", "16.1", "23.5", "67.9", "15.3", "39.8"],
        },
        TableMetadata(title="urban air quality measurements", tags=["environment"]),
    )
    more_cities = Table.from_dict(
        "asian_cities",
        {
            "metro": ["hanoi", "manila", "jakarta", "bangkok"],
            "country": ["vietnam", "philippines", "indonesia", "thailand"],
        },
        TableMetadata(title="asian metro areas", tags=["geo"]),
    )
    salaries = Table.from_dict(
        "salaries",
        {
            "role": ["engineer", "analyst", "manager", "designer"],
            "salary": ["120000", "90000", "140000", "95000"],
        },
        TableMetadata(title="staff salaries", tags=["hr"]),
    )
    for t in (cities, air, more_cities, salaries):
        write_table_csv(t, directory / f"{t.name}.csv")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        make_demo_csvs(directory)

        # 1. Ingest every CSV under the directory.
        lake = DataLake.from_directory(directory)
        print(f"ingested lake: {lake.stats()}")

        # 2. Offline pipeline: understand + embed + index (Figure 1).
        system = DiscoverySystem(
            lake, DiscoveryConfig(embedding_dim=16, embedding_min_count=1)
        ).build()

        # 3. Keyword search over metadata.
        print("\nkeyword search 'air quality':")
        for hit in system.keyword_search("air quality", k=3):
            print(f"  {hit.table:<20} score={hit.score:.2f}")

        # 4. Joinable table search: what joins with city_population.city?
        print("\njoinable with city_population.city (exact top-k):")
        for res in system.joinable_search(
            ColumnRef("city_population", 0), k=3
        ):
            print(f"  {res.ref}  overlap_fraction={res.score:.2f}")

        # 5. Unionable table search: what extends city_population with rows?
        print("\nunionable with city_population (embedding-based):")
        for res in system.unionable_search("city_population", k=3):
            print(f"  {res.table:<20} score={res.score:.2f}")

        # 6. Navigation: explore the lake by topic intent.
        print("\nnavigate toward 'city population census':")
        print(f"  reached tables: {system.navigate('city population census')}")


if __name__ == "__main__":
    main()
