"""Scenario: understand what an unlabeled lake contains before searching it.

The survey's §2.2 workload — the offline table-understanding stages that
make search possible: (1) semantic type detection with and without table
context, (2) unsupervised domain discovery, (3) ontology annotation of
columns and column-pair relationships, (4) Juneau-style data profiles, and
(5) InfoGather-style entity augmentation built on the understanding.

Run:  python examples/table_understanding.py
"""

from repro.datalake.generate import (
    make_relationship_corpus,
    make_typed_corpus,
)
from repro.search.infogather import InfoGather
from repro.understanding.annotate import OntologyAnnotator
from repro.understanding.domains import DomainDiscovery
from repro.understanding.profiles import TableProfile
from repro.understanding.sato import ColumnOnlyBaseline, SatoTypeDetector


def main() -> None:
    # --- 1. Semantic type detection (Sherlock vs Sato) ------------------------
    corpus = make_typed_corpus(
        n_tables=60, cols_per_table=5, ambiguity=0.8, seed=5
    )
    tables = sorted(corpus.lake, key=lambda t: t.name)
    cut = int(0.7 * len(tables))
    labels = {(r.table, r.index): t for r, t in corpus.labels.items()}

    sato = SatoTypeDetector(n_epochs=200).fit(tables[:cut], labels)
    sherlock = ColumnOnlyBaseline(n_epochs=200).fit(tables[:cut], labels)

    def accuracy(preds):
        keys = [(t.name, i) for t in tables[cut:] for i in range(t.num_cols)]
        return sum(preds[k] == labels[k] for k in keys) / len(keys)

    print("semantic type detection on ambiguous columns:")
    print(f"  sherlock (column only) : {accuracy(sherlock.predict(tables[cut:])):.3f}")
    print(f"  sato (table context)   : {accuracy(sato.predict(tables[cut:])):.3f}")

    # --- 2+3. Relationship corpus: domains + annotation -----------------------
    rel = make_relationship_corpus(n_queries=3, seed=5)

    # Columns here sample ~5% of each domain vocabulary, so pairwise column
    # overlap is small — lower the edge threshold accordingly.
    domains = DomainDiscovery(overlap_threshold=0.02, min_support=1).discover(
        rel.lake
    )
    print(f"\ndiscovered {len(domains)} value domains; largest:")
    for d in domains[:3]:
        sample = ", ".join(sorted(d.values)[:4])
        print(f"  {len(d):4d} values across {len(d.columns)} columns "
              f"(e.g. {sample})")

    annotator = OntologyAnnotator(rel.ontology)
    some_table = rel.lake.table("relq_00")
    ann = annotator.annotate(some_table)
    print(f"\nontology annotation of {some_table.name}:")
    for ci, cls in ann.column_types.items():
        print(f"  column {ci} ({some_table.columns[ci].name}) -> {cls} "
              f"(coverage {ann.coverage[ci]:.2f})")
    for (i, j), relname in ann.relationships.items():
        print(f"  relationship between columns {i} and {j}: {relname}")

    # --- 4. Data profiles ------------------------------------------------------
    p0 = TableProfile.from_table(rel.lake.table("relq_00"))
    p_pos = TableProfile.from_table(rel.lake.table("relpos_00_00"))
    p_far = TableProfile.from_table(rel.lake.table("relq_02"))
    print("\nJuneau-style profile relatedness from relq_00:")
    print(f"  to relpos_00_00 (same relation): {p0.relatedness(p_pos):.3f}")
    print(f"  to relq_02 (different domains) : {p0.relatedness(p_far):.3f}")

    # --- 5. Entity augmentation -------------------------------------------------
    gatherer = InfoGather(rel.lake).build()
    a_col = rel.lake.table("relq_00").columns[0]
    entities = a_col.non_null_values()[:5]
    examples = {}
    b_col = rel.lake.table("relq_00").columns[1]
    for e, v in zip(a_col.values[5:8], b_col.values[5:8]):
        examples[e] = v
    out = gatherer.augment_by_example(entities, examples)
    print("\nInfoGather augmentation by example "
          f"(coverage {out.coverage(entities):.2f}):")
    for e in entities[:3]:
        print(f"  {e} -> {out.values.get(e.lower(), '?')}")


if __name__ == "__main__":
    main()
