"""Scenario: explore an unfamiliar data lake without writing a query.

The survey's §2.6 workload: instead of query-driven discovery, the user
*navigates*.  The example builds (1) a lake-wide organization (a topic
hierarchy over tables), (2) a RONIN-style online organization over one
search's results, (3) an Aurum-style knowledge graph for hop-by-hop column
exploration, and (4) a DomainNet homograph report warning which values are
ambiguous across domains.

Run:  python examples/lake_navigation.py
"""

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.generate import make_homograph_corpus, make_union_corpus
from repro.datalake.table import ColumnRef
from repro.graph.homograph import HomographDetector


def show_tree(node, names_per_leaf=3, indent=0) -> None:
    label = f"node {node.node_id} ({len(node.tables)} tables)"
    if node.is_leaf:
        label += ": " + ", ".join(node.tables[:names_per_leaf])
        if len(node.tables) > names_per_leaf:
            label += ", ..."
    print("  " * indent + label)
    for child in node.children:
        show_tree(child, names_per_leaf, indent + 1)


def main() -> None:
    corpus = make_union_corpus(
        n_groups=6, tables_per_group=4, rows_per_table=40, seed=11
    )
    system = DiscoverySystem(
        corpus.lake, DiscoveryConfig(embedding_dim=32, org_branching=3)
    ).build()

    # 1. Lake-wide organization.
    org = system.organization()
    print("lake organization (topic hierarchy):")
    show_tree(org.root)

    # 2. Navigate by intent.
    intent = "concept_000 concept_001"
    print(f"\nnavigating toward intent {intent!r}:")
    print(f"  reached: {system.navigate(intent)}")

    # 3. RONIN: organize one query's result set online.
    results = [
        r.table for r in system.unionable_search(corpus.groups[0][0], k=8)
    ]
    print(f"\nsearch returned {len(results)} tables; organizing them online:")
    show_tree(system.explore_results(results).root)

    # 4. Aurum EKG: hop from a column to its neighbourhood.
    ref = ColumnRef(corpus.groups[0][0], 0)
    print(f"\ncolumns related to {ref} in the knowledge graph:")
    for other, weight in system.related_columns(ref, k=5):
        print(f"  {other}  weight={weight:.2f}")

    # 5. Homograph warning report.
    homo_corpus = make_homograph_corpus(
        n_tables=30, n_homographs=6, rows_per_table=25, seed=11
    )
    detector = HomographDetector(approx_samples=80)
    print("\npossible homographs in a second lake (ambiguous values):")
    for h in detector.top_homographs(homo_corpus.lake, k=6):
        planted = "planted" if h.value in homo_corpus.homographs else ""
        print(f"  {h.value:<12} centrality={h.score:.4f} {planted}")


if __name__ == "__main__":
    main()
