"""Integration tests: DiscoverySystem end-to-end over generated corpora.

These drive the Figure-1 facade exactly as a downstream user would: build
once, then exercise every online API against ground truth.
"""

import pytest

from repro.bench.metrics import precision_at_k
from repro.core.config import DiscoveryConfig
from repro.core.errors import ConfigError, LakeError
from repro.core.pipeline import STAGES, pipeline_report, run_pipeline
from repro.core.system import DiscoverySystem
from repro.datalake.table import ColumnRef


@pytest.fixture(scope="module")
def system(union_corpus):
    config = DiscoveryConfig(
        embedding_dim=32, enable_domains=True, num_partitions=4
    )
    return DiscoverySystem(
        union_corpus.lake, config, ontology=union_corpus.ontology
    ).build()


class TestConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            DiscoveryConfig(num_perm=2).validate()
        with pytest.raises(ConfigError):
            DiscoveryConfig(containment_threshold=0.0).validate()
        with pytest.raises(ConfigError):
            DiscoveryConfig(union_measure="bogus").validate()
        with pytest.raises(ConfigError):
            DiscoveryConfig(union_index="bogus").validate()
        with pytest.raises(ConfigError):
            DiscoveryConfig(context_weight=1.0).validate()

    def test_defaults_valid(self):
        assert DiscoveryConfig().validate()


class TestOfflinePipeline:
    def test_unbuilt_system_rejects_queries(self, union_corpus):
        fresh = DiscoverySystem(union_corpus.lake)
        with pytest.raises(LakeError):
            fresh.keyword_search("x")

    def test_stage_timings_recorded(self, system):
        assert set(system.stats.stage_seconds) >= {
            "embeddings",
            "keyword_index",
            "join_index",
            "union_index",
        }

    def test_stats_populated(self, system, union_corpus):
        assert system.stats.tables == len(union_corpus.lake)
        assert system.stats.vocabulary > 0
        assert system.stats.domains_found > 0

    def test_run_pipeline_helper(self, union_corpus):
        seen = {}
        sys2 = run_pipeline(
            union_corpus.lake,
            DiscoveryConfig(embedding_dim=16),
            skip={"domains", "annotation"},
            progress=lambda s, t: seen.__setitem__(s, t),
        )
        assert "embeddings" in seen
        assert "domains" not in sys2.stats.stage_seconds
        report = pipeline_report(sys2)
        assert "tables" in report

    def test_run_pipeline_unknown_stage(self, union_corpus):
        with pytest.raises(ValueError):
            run_pipeline(union_corpus.lake, skip={"warp-drive"})

    def test_stage_names_documented(self):
        assert "union_index" in STAGES


class TestOnlineSearch:
    def test_keyword(self, system, union_corpus):
        hits = system.keyword_search("group 0", k=5)
        assert hits
        assert hits[0].table.startswith("union_g00")

    def test_joinable_exact_by_ref(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        res = system.joinable_search(ColumnRef(qname, 0), k=5)
        assert res
        assert all(r.ref.table != qname for r in res)

    def test_joinable_containment(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        res = system.joinable_search(
            ColumnRef(qname, 0), k=5, method="containment", threshold=0.2
        )
        assert isinstance(res, list)

    def test_joinable_unknown_method(self, system, union_corpus):
        with pytest.raises(ValueError):
            system.joinable_search(
                ColumnRef(union_corpus.groups[0][0], 0), method="psychic"
            )

    @pytest.mark.parametrize("method", ["tus", "santos", "starmie"])
    def test_unionable_methods(self, system, union_corpus, method):
        qname = union_corpus.groups[0][0]
        res = system.unionable_search(qname, k=3, method=method)
        got = [r.table for r in res]
        p = precision_at_k(got, union_corpus.truth[qname], 3)
        assert p >= 0.6, (method, got)

    def test_unionable_unknown_method(self, system, union_corpus):
        with pytest.raises(ValueError):
            system.unionable_search(union_corpus.groups[0][0], method="magic")

    def test_fuzzy_joinable(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        res = system.fuzzy_joinable_search(ColumnRef(qname, 0), k=5)
        assert isinstance(res, list)

    def test_multi_attribute(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        res = system.multi_attribute_search(
            union_corpus.lake.table(qname), [0, 1], k=3
        )
        assert isinstance(res, list)


class TestNavigationAndApps:
    def test_organization_builds(self, system, union_corpus):
        org = system.organization()
        assert sorted(org.root.tables) == sorted(
            union_corpus.lake.table_names()
        )

    def test_navigate_text_intent(self, system):
        tables = system.navigate("concept_000")
        assert tables

    def test_explore_results(self, system, union_corpus):
        subset = union_corpus.groups[0] + union_corpus.groups[1]
        org = system.explore_results(subset)
        assert sorted(org.root.tables) == sorted(subset)

    def test_knowledge_graph_lazy_and_cached(self, system):
        g1 = system.knowledge_graph()
        g2 = system.knowledge_graph()
        assert g1 is g2
        assert g1.graph.number_of_nodes() > 0

    def test_related_columns(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        res = system.related_columns(ColumnRef(qname, 0), k=5)
        assert isinstance(res, list)


class TestDisabledComponents:
    def test_no_embeddings_blocks_vector_apis(self, union_corpus):
        cfg = DiscoveryConfig(enable_embeddings=False)
        sys2 = DiscoverySystem(union_corpus.lake, cfg).build()
        with pytest.raises(LakeError):
            sys2.unionable_search(union_corpus.groups[0][0], method="starmie")
        with pytest.raises(LakeError):
            sys2.navigate("anything")
        with pytest.raises(LakeError):
            sys2.fuzzy_joinable_search(
                ColumnRef(union_corpus.groups[0][0], 0)
            )
        # TUS set-measure still works without embeddings.
        res = sys2.unionable_search(
            union_corpus.groups[0][0], k=3, method="tus"
        )
        assert res

    def test_no_ontology_blocks_santos(self, union_corpus):
        sys2 = DiscoverySystem(
            union_corpus.lake, DiscoveryConfig(embedding_dim=16)
        ).build()
        with pytest.raises(LakeError):
            sys2.unionable_search(union_corpus.groups[0][0], method="santos")


class TestEntityAugmentation:
    def test_by_attribute_and_examples(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        table = union_corpus.lake.table(qname)
        col = table.columns[0]
        entities = col.non_null_values()[:3]
        out = system.augment_entities(entities, attribute=col.name)
        assert out is not None
        # requesting neither attribute nor examples is an error
        with pytest.raises(ValueError):
            system.augment_entities(entities)

    def test_infogather_cached(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        entities = union_corpus.lake.table(qname).columns[0].non_null_values()[:2]
        system.augment_entities(entities, attribute="anything")
        first = system._infogather
        system.augment_entities(entities, attribute="anything")
        assert system._infogather is first


class TestMlAugmentation:
    def test_augment_for_ml_endtoend(self):
        from repro.datalake.generate import make_ml_corpus

        corpus = make_ml_corpus(n_rows=150, seed=31)
        system = DiscoverySystem(
            corpus.lake, DiscoveryConfig(enable_embeddings=False)
        ).build()
        report = system.augment_for_ml("ml_base", 0, 2)
        assert report.augmented_r2 > report.base_r2
