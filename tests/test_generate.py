"""Tests for the benchmark corpus generators: determinism and ground truth."""

import math

import pytest

from repro.datalake.generate import (
    DomainPool,
    generate_typed_values,
    make_composite_key_corpus,
    make_correlation_corpus,
    make_homograph_corpus,
    make_join_corpus,
    make_keyword_corpus,
    make_ml_corpus,
    make_relationship_corpus,
    make_stitch_corpus,
    make_typed_corpus,
    make_union_corpus,
    SEMANTIC_TYPES,
)
from repro.sketch.minhash import exact_containment


class TestDomainPool:
    def test_zipfian_sizes_decrease(self):
        pool = DomainPool(n_domains=10, base_size=1000, skew=1.0)
        sizes = [len(d.values) for d in pool.domains]
        assert sizes == sorted(sizes, reverse=True)

    def test_min_size_respected(self):
        pool = DomainPool(n_domains=50, base_size=100, min_size=30)
        assert all(len(d.values) >= 30 for d in pool.domains)

    def test_vocabularies_disjoint(self):
        pool = DomainPool(n_domains=5)
        v0 = set(pool.domain(0).values)
        v1 = set(pool.domain(1).values)
        assert v0.isdisjoint(v1)

    def test_sample_subset_distinct(self):
        pool = DomainPool(n_domains=3, base_size=50)
        sub = pool.sample_subset(0, 20)
        assert len(sub) == len(set(sub)) == 20

    def test_ontology_covers_pool(self):
        pool = DomainPool(n_domains=3, base_size=50)
        onto = pool.build_ontology()
        assert onto.class_of(pool.domain(1).values[0]) == pool.domain(1).concept


class TestJoinCorpus:
    def test_deterministic(self):
        a = make_join_corpus(n_tables=30, n_queries=2, seed=5)
        b = make_join_corpus(n_tables=30, n_queries=2, seed=5)
        assert a.lake.table_names() == b.lake.table_names()
        assert a.queries[0].containments == b.queries[0].containments

    def test_ground_truth_is_exact(self):
        corpus = make_join_corpus(n_tables=30, n_queries=2, seed=5)
        q = corpus.queries[0]
        qset = set(corpus.lake.column(q.column).value_set())
        for ref, containment in list(q.containments.items())[:20]:
            cand = set(corpus.lake.column(ref).value_set())
            assert containment == pytest.approx(exact_containment(qset, cand))

    def test_planted_levels_span_range(self):
        corpus = make_join_corpus(n_tables=40, n_queries=2, seed=5)
        values = list(corpus.queries[0].containments.values())
        assert max(values) >= 0.95
        assert any(v < 0.3 for v in values)

    def test_relevant_threshold_filtering(self):
        corpus = make_join_corpus(n_tables=30, n_queries=2, seed=5)
        q = corpus.queries[0]
        assert q.relevant(0.9) <= q.relevant(0.5) <= q.relevant(0.1)


class TestUnionCorpus:
    def test_groups_partition_tables(self):
        c = make_union_corpus(n_groups=3, tables_per_group=3, seed=2)
        all_members = [m for g in c.groups.values() for m in g]
        assert len(all_members) == len(set(all_members)) == 9

    def test_truth_is_symmetric(self):
        c = make_union_corpus(n_groups=3, tables_per_group=3, seed=2)
        for name, partners in c.truth.items():
            for p in partners:
                assert name in c.truth[p]

    def test_rows_match_request(self):
        c = make_union_corpus(
            n_groups=2, tables_per_group=2, rows_per_table=25, seed=2
        )
        assert all(t.num_rows == 25 for t in c.lake)

    def test_intra_group_overlap_is_partial(self):
        c = make_union_corpus(
            n_groups=2, tables_per_group=3, value_overlap=0.3, seed=2
        )
        a, b = c.groups[0][0], c.groups[0][1]
        ta, tb = c.lake.table(a), c.lake.table(b)
        # Some shared values by construction, but far from identical.
        sa = set().union(*(col.value_set() for col in ta.columns))
        sb = set().union(*(col.value_set() for col in tb.columns))
        jac = len(sa & sb) / len(sa | sb)
        assert 0.0 < jac < 0.8


class TestRelationshipCorpus:
    def test_confounders_share_domains_not_facts(self):
        c = make_relationship_corpus(n_queries=2, seed=4)
        q = "relq_00"
        pos = sorted(c.truth[q])[0]
        neg = sorted(c.confounders[q])[0]
        qt, nt = c.lake.table(q), c.lake.table(neg)
        # Confounder columns draw from the same domains as the query.
        q_dom = c.ontology.annotate_column(qt.columns[0].non_null_values())
        n_dom = c.ontology.annotate_column(nt.columns[0].non_null_values())
        assert q_dom == n_dom
        # But its row pairings are mostly not facts.
        fact_hits = sum(
            1
            for a, b in zip(nt.columns[0].values, nt.columns[1].values)
            if c.ontology._facts.get((a, b)) is not None
        )
        assert fact_hits < 0.2 * nt.num_rows
        # While positive tables pair via facts.
        pt = c.lake.table(pos)
        pos_hits = sum(
            1
            for a, b in zip(pt.columns[0].values, pt.columns[1].values)
            if c.ontology._facts.get((a, b)) is not None
        )
        assert pos_hits == pt.num_rows


class TestCorrelationCorpus:
    def test_truth_matches_exact_join(self):
        from repro.search.correlated import exact_join_correlation

        c = make_correlation_corpus(n_candidates=6, n_keys=200, seed=3)
        for name, r in c.truth.items():
            cand = c.lake.table(name)
            exact = abs(
                exact_join_correlation(
                    c.lake.table(c.query_table), 0, 1, cand, 0, 1
                )
            )
            # Cells are serialized at 6 decimals, so allow tiny drift.
            assert r == pytest.approx(exact, abs=1e-4)

    def test_levels_spread(self):
        c = make_correlation_corpus(n_candidates=12, seed=3)
        rs = sorted(c.truth.values())
        assert rs[0] < 0.3 and rs[-1] > 0.85


class TestTypedCorpus:
    def test_labels_cover_all_columns(self):
        c = make_typed_corpus(n_tables=10, cols_per_table=4, seed=6)
        assert len(c.labels) == 10 * 4

    def test_all_types_generable(self):
        import random

        rng = random.Random(0)
        for sem in SEMANTIC_TYPES:
            vals = generate_typed_values(sem, 5, rng)
            assert len(vals) == 5 and all(v for v in vals)

    def test_unknown_type_rejected(self):
        import random

        with pytest.raises(ValueError):
            generate_typed_values("nope", 3, random.Random(0))


class TestOtherCorpora:
    def test_keyword_truth_nonempty(self):
        c = make_keyword_corpus(n_topics=3, tables_per_topic=4, seed=7)
        assert all(len(v) == 4 for v in c.truth.values())

    def test_homograph_values_planted(self):
        c = make_homograph_corpus(n_tables=20, n_homographs=5, seed=7)
        planted = set()
        for _, col in c.lake.iter_text_columns():
            planted |= c.homographs & col.value_set()
        assert planted == c.homographs

    def test_ml_corpus_target_depends_on_hidden(self):
        c = make_ml_corpus(n_rows=100, seed=8)
        assert len(c.informative) == 4
        base = c.lake.table(c.base_table)
        y = base.columns[2].numeric_values()
        assert all(math.isfinite(v) for v in y)

    def test_stitch_facts_consistent(self):
        c = make_stitch_corpus(n_fragments=4, rows_per_fragment=5, seed=9)
        assert len(c.facts) == 4 * 5 * 3

    def test_composite_key_levels(self):
        c = make_composite_key_corpus(n_candidates=12, seed=10)
        assert min(c.truth.values()) == 0.0
        assert max(c.truth.values()) == 1.0
