"""Tests for Auctus-style faceted dataset search."""

import pytest

from repro.datalake.lake import DataLake
from repro.datalake.table import Table, TableMetadata
from repro.search.auctus import AuctusSearch, profile_table


@pytest.fixture(scope="module")
def lake():
    taxi = Table.from_dict(
        "taxi_trips",
        {
            "date": ["2019-01-01", "2019-03-15", "2019-06-30"],
            "zone": ["midtown", "harlem", "soho"],
            "fare": ["12.5", "30.0", "8.25"],
        },
        TableMetadata(title="taxi trips 2019", tags=["transport"]),
    )
    weather = Table.from_dict(
        "weather_daily",
        {
            "date": ["2019-05-01", "2019-07-04", "2020-01-01"],
            "temp": ["15.0", "28.5", "-2.0"],
        },
        TableMetadata(title="daily weather", tags=["climate"]),
    )
    zones = Table.from_dict(
        "zone_lookup",
        {
            "zone": ["midtown", "harlem", "soho", "tribeca"],
            "borough": ["manhattan", "manhattan", "manhattan", "manhattan"],
        },
        TableMetadata(title="taxi zone lookup", tags=["transport"]),
    )
    static = Table.from_dict(
        "constants", {"k": ["pi", "e"], "v": ["3.14", "2.72"]}
    )
    return DataLake([taxi, weather, zones, static])


@pytest.fixture(scope="module")
def auctus(lake):
    return AuctusSearch(lake).build()


class TestProfiling:
    def test_temporal_coverage(self, lake):
        p = profile_table(lake.table("taxi_trips"))
        assert p.temporal_coverage == ("2019-01-01", "2019-06-30")

    def test_numeric_ranges(self, lake):
        p = profile_table(lake.table("weather_daily"))
        assert p.numeric_ranges["temp"] == (-2.0, 28.5)

    def test_entity_columns(self, lake):
        p = profile_table(lake.table("zone_lookup"))
        assert "zone" in p.entity_columns
        assert "borough" not in p.entity_columns  # low distinct ratio

    def test_no_dates_no_coverage(self, lake):
        assert profile_table(lake.table("constants")).temporal_coverage is None

    def test_covers_dates_intersection(self, lake):
        p = profile_table(lake.table("taxi_trips"))
        assert p.covers_dates("2019-06-01", "2019-12-31")
        assert not p.covers_dates("2020-01-01", "2020-12-31")


class TestFacetedSearch:
    def test_build_required(self, lake):
        with pytest.raises(RuntimeError):
            AuctusSearch(lake).search(keywords="taxi")

    def test_keyword_facet(self, auctus):
        hits = auctus.search(keywords="taxi")
        names = [h.table for h in hits]
        assert "taxi_trips" in names and "zone_lookup" in names
        assert "weather_daily" not in names

    def test_date_facet(self, auctus):
        hits = auctus.search(date_range=("2020-01-01", "2020-06-01"))
        assert [h.table for h in hits] == ["weather_daily"]

    def test_numeric_column_facet(self, auctus):
        hits = auctus.search(numeric_column="fare")
        assert [h.table for h in hits] == ["taxi_trips"]

    def test_join_facet(self, auctus, lake):
        hits = auctus.search(joinable_with=lake.table("taxi_trips"),
                             join_key=1)
        assert [h.table for h in hits] == ["zone_lookup"]

    def test_conjunctive_facets(self, auctus):
        hits = auctus.search(keywords="taxi", date_range=("2019-01-01",
                                                          "2019-12-31"))
        assert [h.table for h in hits] == ["taxi_trips"]

    def test_no_facets_returns_everything(self, auctus, lake):
        hits = auctus.search(k=10)
        assert len(hits) == len(lake)

    def test_profile_lookup(self, auctus):
        assert auctus.profile("taxi_trips").num_rows == 3
