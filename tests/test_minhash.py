"""Unit + property tests for MinHash signatures."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.minhash import (
    MinHash,
    exact_containment,
    exact_jaccard,
)


class TestBasics:
    def test_empty_signature(self):
        assert MinHash().is_empty()

    def test_update_changes_signature(self):
        mh = MinHash()
        mh.update("x")
        assert not mh.is_empty()

    def test_batch_equals_sequential(self):
        a = MinHash()
        a.update_batch(["x", "y", "z"])
        b = MinHash()
        for t in ["x", "y", "z"]:
            b.update(t)
        assert a.jaccard(b) == 1.0

    def test_identical_sets_jaccard_one(self):
        a = MinHash.from_values(["a", "b", "c"])
        b = MinHash.from_values(["c", "b", "a"])
        assert a.jaccard(b) == 1.0

    def test_disjoint_sets_jaccard_near_zero(self):
        a = MinHash.from_values([f"a{i}" for i in range(100)])
        b = MinHash.from_values([f"b{i}" for i in range(100)])
        assert a.jaccard(b) < 0.05

    def test_incompatible_signatures_rejected(self):
        with pytest.raises(ValueError):
            MinHash(num_perm=64).jaccard(MinHash(num_perm=128))
        with pytest.raises(ValueError):
            MinHash(seed=1).jaccard(MinHash(seed=2))

    def test_copy_is_independent(self):
        a = MinHash.from_values(["x"])
        b = a.copy()
        b.update("y")
        assert a.jaccard(b) < 1.0


class TestEstimation:
    def test_jaccard_estimate_accuracy(self):
        rng = random.Random(0)
        a = {f"v{i}" for i in range(400)}
        b = set(rng.sample(sorted(a), 200)) | {f"w{i}" for i in range(200)}
        ma = MinHash.from_values(a, num_perm=256)
        mb = MinHash.from_values(b, num_perm=256)
        assert ma.jaccard(mb) == pytest.approx(exact_jaccard(a, b), abs=0.08)

    def test_containment_estimate_accuracy(self):
        rng = random.Random(1)
        a = {f"v{i}" for i in range(300)}
        b = set(rng.sample(sorted(a), 210)) | {f"w{i}" for i in range(100)}
        ma = MinHash.from_values(a, num_perm=256)
        mb = MinHash.from_values(b, num_perm=256)
        est = ma.containment(mb, len(a), len(b))
        assert est == pytest.approx(exact_containment(a, b), abs=0.12)

    def test_containment_empty_query(self):
        a = MinHash.from_values([])
        b = MinHash.from_values(["x"])
        assert a.containment(b, 0, 1) == 0.0

    def test_containment_clipped_to_unit(self):
        a = MinHash.from_values(["x", "y"])
        b = MinHash.from_values(["x", "y"])
        assert 0.0 <= a.containment(b, 2, 2) <= 1.0


class TestMerge:
    def test_merge_is_union(self):
        a_vals = {f"a{i}" for i in range(100)}
        b_vals = {f"b{i}" for i in range(100)}
        union = MinHash.from_values(a_vals | b_vals)
        merged = MinHash.from_values(a_vals).merge(MinHash.from_values(b_vals))
        assert merged.jaccard(union) == 1.0

    def test_merge_commutes(self):
        a = MinHash.from_values(["x", "y"])
        b = MinHash.from_values(["z"])
        assert a.merge(b).jaccard(b.merge(a)) == 1.0


class TestExactReferences:
    def test_exact_jaccard_empty_sets(self):
        assert exact_jaccard(set(), set()) == 1.0
        assert exact_jaccard({"a"}, set()) == 0.0

    def test_exact_containment(self):
        assert exact_containment({"a", "b"}, {"a"}) == 0.5
        assert exact_containment(set(), {"a"}) == 0.0


@given(
    st.sets(st.text(min_size=1, max_size=6), min_size=1, max_size=60),
    st.sets(st.text(min_size=1, max_size=6), min_size=1, max_size=60),
)
@settings(max_examples=25, deadline=None)
def test_jaccard_estimate_within_bound(a, b):
    """Property: with 128 perms, |estimate - truth| stays within 4 standard
    errors (~0.35) — a loose but meaningful statistical bound."""
    ma = MinHash.from_values(a)
    mb = MinHash.from_values(b)
    assert abs(ma.jaccard(mb) - exact_jaccard(a, b)) <= 0.36


@given(st.sets(st.text(min_size=1, max_size=6), min_size=1, max_size=40))
@settings(max_examples=25, deadline=None)
def test_self_jaccard_is_one(values):
    """Property: a signature always matches itself perfectly."""
    mh = MinHash.from_values(values)
    assert mh.jaccard(mh) == 1.0


@given(
    st.sets(st.text(min_size=1, max_size=6), min_size=1, max_size=40),
    st.sets(st.text(min_size=1, max_size=6), min_size=0, max_size=10),
)
@settings(max_examples=25, deadline=None)
def test_superset_signature_dominates(base, extra):
    """Property: each signature slot of a union is <= the subset's slot."""
    sub = MinHash.from_values(base)
    sup = MinHash.from_values(base | extra)
    assert (sup.hashvalues <= sub.hashvalues).all()
