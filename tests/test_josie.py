"""Unit + property tests for JOSIE exact top-k overlap search.

The load-bearing property: JOSIE's early-terminating algorithm returns
*exactly* the same overlaps as the full merge-list baseline.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.search.josie import JosieIndex


def _populated_index(seed=0, n=40):
    rng = random.Random(seed)
    universe = [f"u{i}" for i in range(300)]
    idx = JosieIndex()
    sets = {}
    for i in range(n):
        s = set(rng.sample(universe, rng.randint(5, 120)))
        sets[f"s{i:02d}"] = s
        idx.insert(f"s{i:02d}", s)
    return idx, sets, universe


class TestBasics:
    def test_insert_and_size(self):
        idx = JosieIndex()
        idx.insert("a", ["x", "y"])
        assert len(idx) == 1
        assert idx.set_of("a") == {"x", "y"}

    def test_duplicate_key_rejected(self):
        idx = JosieIndex()
        idx.insert("a", ["x"])
        with pytest.raises(IndexError_):
            idx.insert("a", ["y"])

    def test_empty_query(self):
        idx, _, _ = _populated_index()
        assert idx.topk([], k=5) == []

    def test_query_with_unseen_tokens(self):
        idx, _, _ = _populated_index()
        assert idx.topk(["never-indexed-token"], k=5) == []

    def test_zero_overlap_excluded(self):
        idx = JosieIndex()
        idx.insert("a", ["x"])
        idx.insert("b", ["y"])
        results = idx.topk(["x"], k=5)
        assert results == [("a", 1)]


class TestExactness:
    def test_matches_full_merge(self):
        idx, sets, universe = _populated_index(seed=1)
        rng = random.Random(2)
        for trial in range(10):
            query = set(rng.sample(universe, rng.randint(10, 150)))
            for k in (1, 5, 10):
                fast = idx.topk(query, k=k)
                slow = idx.full_merge_topk(query, k=k)
                assert fast == slow, (trial, k)

    def test_overlaps_are_true_overlaps(self):
        idx, sets, universe = _populated_index(seed=3)
        query = set(universe[:80])
        for key, overlap in idx.topk(query, k=10):
            assert overlap == len(query & sets[key])

    def test_k_larger_than_index(self):
        idx = JosieIndex()
        idx.insert("a", ["x", "y"])
        idx.insert("b", ["y"])
        results = idx.topk(["x", "y"], k=100)
        assert results == [("a", 2), ("b", 1)]

    def test_deterministic_tie_break(self):
        idx = JosieIndex()
        idx.insert("b", ["x"])
        idx.insert("a", ["x"])
        assert idx.topk(["x"], k=2) == [("a", 1), ("b", 1)]


class TestEfficiency:
    def test_early_termination_reads_less(self):
        """JOSIE's point: with small k it shouldn't verify every candidate."""
        idx, sets, universe = _populated_index(seed=4, n=120)
        query = set(universe[:150])
        _, stats = idx.topk_with_stats(query, k=1)
        assert stats["sets_verified"] < len(idx)

    def test_stats_fields(self):
        idx, _, universe = _populated_index(seed=5)
        _, stats = idx.topk_with_stats(set(universe[:30]), k=3)
        assert stats["query_tokens"] == 30
        assert stats["posting_entries_read"] > 0


@given(
    st.lists(
        st.sets(st.integers(0, 60), min_size=1, max_size=30),
        min_size=1,
        max_size=15,
    ),
    st.sets(st.integers(0, 60), min_size=1, max_size=30),
    st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_josie_equals_brute_force(indexed, query, k):
    """Property: for any sets and k, JOSIE == brute-force top-k overlap."""
    idx = JosieIndex()
    truth = {}
    for i, s in enumerate(indexed):
        key = f"k{i:02d}"
        tokens = {str(x) for x in s}
        idx.insert(key, tokens)
        truth[key] = tokens
    q = {str(x) for x in query}
    fast = idx.topk(q, k=k)
    brute = sorted(
        ((key, len(q & s)) for key, s in truth.items() if q & s),
        key=lambda kv: (-kv[1], kv[0]),
    )[:k]
    assert fast == brute
