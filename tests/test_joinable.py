"""Tests for the joinable search facade over a lake."""

import pytest

from repro.search.joinable import JoinableSearch, JoinSearchConfig


@pytest.fixture(scope="module")
def built_search(join_corpus):
    return JoinableSearch(
        join_corpus.lake, JoinSearchConfig(num_partitions=4)
    ).build()


class TestLifecycle:
    def test_query_before_build_rejected(self, join_corpus):
        js = JoinableSearch(join_corpus.lake)
        q = join_corpus.lake.column(join_corpus.queries[0].column)
        with pytest.raises(RuntimeError):
            js.exact_topk(q)


class TestExactTopk:
    def test_recovers_planted_candidates(self, join_corpus, built_search):
        q = join_corpus.queries[0]
        qcol = join_corpus.lake.column(q.column)
        results = built_search.exact_topk(qcol, k=5, exclude_table=q.column.table)
        # The top hit must be the containment-1.0 planted candidate.
        assert results[0].score == pytest.approx(1.0)
        truth_best = max(q.containments.items(), key=lambda kv: kv[1])
        assert results[0].ref == truth_best[0]

    def test_scores_monotone(self, join_corpus, built_search):
        q = join_corpus.queries[1]
        qcol = join_corpus.lake.column(q.column)
        res = built_search.exact_topk(qcol, k=10)
        scores = [r.score for r in res]
        assert scores == sorted(scores, reverse=True)

    def test_exclude_table_respected(self, join_corpus, built_search):
        q = join_corpus.queries[0]
        qcol = join_corpus.lake.column(q.column)
        res = built_search.exact_topk(qcol, k=10, exclude_table=q.column.table)
        assert all(r.ref.table != q.column.table for r in res)


class TestContainment:
    def test_high_recall_vs_truth(self, join_corpus, built_search):
        q = join_corpus.queries[0]
        qcol = join_corpus.lake.column(q.column)
        truth = q.relevant(0.6)
        got = {
            r.ref
            for r in built_search.containment(
                qcol, 0.6, exclude_table=q.column.table
            )
        }
        recall = len(got & truth) / max(len(truth), 1)
        assert recall >= 0.8

    def test_threshold_monotone(self, join_corpus, built_search):
        q = join_corpus.queries[2]
        qcol = join_corpus.lake.column(q.column)
        low = built_search.containment(qcol, 0.3)
        high = built_search.containment(qcol, 0.9)
        assert len(high) <= len(low)

    def test_candidates_superset_of_verified(self, join_corpus, built_search):
        q = join_corpus.queries[0]
        qcol = join_corpus.lake.column(q.column)
        cands = set(built_search.containment_candidates(qcol, 0.5))
        verified = {r.ref for r in built_search.containment(qcol, 0.5)}
        assert verified <= cands


class TestJaccardBaseline:
    def test_jaccard_misses_large_supersets(self, join_corpus, built_search):
        """The LSH Ensemble motivation: Jaccard-threshold search misses
        candidates that *contain* the query but are much larger."""
        q = join_corpus.queries[0]
        qcol = join_corpus.lake.column(q.column)
        truth = q.relevant(0.9)
        jac = {r.ref for r in built_search.jaccard_baseline(qcol)}
        cont = {r.ref for r in built_search.containment(qcol, 0.9)}
        assert len(cont & truth) >= len(jac & truth)


class TestSchemaComplement:
    def test_new_attributes_scored(self, join_corpus, built_search):
        q = join_corpus.queries[0]
        res = built_search.exact_topk(
            join_corpus.lake.column(q.column), k=3,
            exclude_table=q.column.table,
        )
        score = built_search.schema_complement_score(
            q.column.table, res[0].ref
        )
        assert 0.0 <= score <= 1.0
