"""Tests for TUS-style table union search."""

import pytest

from repro.datalake.ontology import subsample_ontology
from repro.search.union_tus import TableUnionSearch, TusConfig


@pytest.fixture(scope="module")
def tus(union_corpus, union_space):
    return TableUnionSearch(
        union_corpus.lake,
        ontology=union_corpus.ontology,
        space=union_space,
    ).build()


class TestLifecycle:
    def test_unknown_measure_rejected(self, union_corpus):
        with pytest.raises(ValueError):
            TableUnionSearch(
                union_corpus.lake, config=TusConfig(measure="bogus")
            )

    def test_search_before_build_rejected(self, union_corpus):
        t = TableUnionSearch(union_corpus.lake)
        with pytest.raises(RuntimeError):
            t.search(next(iter(union_corpus.lake)))


class TestRetrieval:
    @pytest.mark.parametrize("measure", ["set", "sem", "nl", "ensemble"])
    def test_group_members_rank_top(self, union_corpus, tus, measure):
        qname = union_corpus.groups[0][0]
        res = tus.search(union_corpus.lake.table(qname), k=3, measure=measure)
        got = {r.table for r in res}
        truth = union_corpus.truth[qname]
        assert len(got & truth) >= 2, measure

    def test_scores_in_unit_range(self, union_corpus, tus):
        qname = union_corpus.groups[1][0]
        for r in tus.search(union_corpus.lake.table(qname), k=10):
            assert 0.0 <= r.score <= 1.0 + 1e-9

    def test_alignment_reported(self, union_corpus, tus):
        qname = union_corpus.groups[0][0]
        res = tus.search(union_corpus.lake.table(qname), k=1)
        assert res[0].alignment
        # Alignment pairs reference valid column indices.
        cand = union_corpus.lake.table(res[0].table)
        for qi, cj, s in res[0].alignment:
            assert 0 <= cj < cand.num_cols
            assert s > 0

    def test_prefilter_matches_full_scan(self, union_corpus, tus):
        qname = union_corpus.groups[2][0]
        query = union_corpus.lake.table(qname)
        fast = [r.table for r in tus.search(query, k=3, prefilter=True)]
        slow = [r.table for r in tus.search(query, k=3, prefilter=False)]
        assert set(fast) & set(slow)


class TestMeasures:
    def test_sem_requires_ontology(self, union_corpus, union_space):
        t = TableUnionSearch(union_corpus.lake, space=union_space).build()
        qname = union_corpus.groups[0][0]
        qcol = union_corpus.lake.table(qname).columns[0]
        from repro.datalake.table import ColumnRef

        other = ColumnRef(union_corpus.groups[0][1], 0)
        assert t.sem_unionability(qcol, other) == 0.0

    def test_nl_requires_space(self, union_corpus):
        t = TableUnionSearch(
            union_corpus.lake, ontology=union_corpus.ontology
        ).build()
        qname = union_corpus.groups[0][0]
        qcol = union_corpus.lake.table(qname).columns[0]
        from repro.datalake.table import ColumnRef

        other = ColumnRef(union_corpus.groups[0][1], 0)
        assert t.nl_unionability(qcol, other) == 0.0

    def test_semantic_survives_low_value_overlap(self, union_corpus, tus):
        """The TUS claim: when value overlap is partial, semantic measures
        still match same-domain columns strongly."""
        from repro.datalake.table import ColumnRef

        qname, cname = union_corpus.groups[0][0], union_corpus.groups[0][1]
        query = union_corpus.lake.table(qname)
        cand = union_corpus.lake.table(cname)
        # Align columns via ontology concepts.
        onto = union_corpus.ontology
        for qi, qcol in query.text_columns():
            q_cls = onto.annotate_column(qcol.non_null_values())
            for ci, ccol in cand.text_columns():
                if onto.annotate_column(ccol.non_null_values()) == q_cls:
                    sem = tus.sem_unionability(qcol, ColumnRef(cname, ci))
                    assert sem > 0.9
                    return
        pytest.fail("no aligned column pair found")

    def test_ensemble_at_least_max_component(self, union_corpus, tus):
        from repro.datalake.table import ColumnRef

        qcol = union_corpus.lake.table(union_corpus.groups[0][0]).columns[0]
        ref = ColumnRef(union_corpus.groups[0][1], 0)
        ens = tus.attribute_unionability(qcol, ref, "ensemble")
        parts = [
            tus.attribute_unionability(qcol, ref, m)
            for m in ("set", "sem", "nl")
        ]
        assert ens == pytest.approx(max(parts))

    def test_partial_ontology_weakens_sem(self, union_corpus, union_space):
        weak_onto = subsample_ontology(union_corpus.ontology, 0.3, seed=2)
        weak = TableUnionSearch(
            union_corpus.lake, ontology=weak_onto, space=union_space
        ).build()
        full = TableUnionSearch(
            union_corpus.lake,
            ontology=union_corpus.ontology,
            space=union_space,
        ).build()
        qname = union_corpus.groups[0][0]
        query = union_corpus.lake.table(qname)
        res_weak = weak.search(query, k=3, measure="sem")
        res_full = full.search(query, k=3, measure="sem")
        top_weak = sum(r.score for r in res_weak)
        top_full = sum(r.score for r in res_full)
        assert top_full >= top_weak
