"""Tests for the SLO engine: objectives, burn-rate windows, CLI exit codes."""

import json

import pytest

from repro.core.config import ConfigError, DiscoveryConfig
from repro.obs import health
from repro.obs.health import SloObjective, evaluate, percentile
from repro.obs.querylog import QueryRecord

NOW = 1_700_000_000.0


def record(engine="join", latency_ms=10.0, status="ok", age_s=1.0):
    return QueryRecord(
        engine=engine,
        query="q",
        latency_ms=latency_ms,
        status=status,
        ts=NOW - age_s,
    )


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 95) == 0.0

    def test_nearest_rank(self):
        vals = list(range(1, 101))
        assert percentile(vals, 50) == 50
        assert percentile(vals, 95) == 95
        assert percentile(vals, 100) == 100

    def test_single_value(self):
        assert percentile([42.0], 95) == 42.0


class TestSloObjective:
    def test_parse_full_spec(self):
        obj = SloObjective.parse("join:250:0.01:600")
        assert obj == SloObjective("join", 250.0, 0.01, 600.0)

    def test_parse_defaults(self):
        obj = SloObjective.parse(":100:")
        assert obj.engine == "*"
        assert obj.p95_ms == 100.0
        assert obj.error_rate is None
        assert obj.window_s == 3600.0

    def test_parse_skipped_latency(self):
        obj = SloObjective.parse("keyword::0.05")
        assert obj.p95_ms is None
        assert obj.error_rate == 0.05

    @pytest.mark.parametrize(
        "spec", ["join", "join:-5:0.1", "join:100:2", "join:100:0.1:0:extra"]
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            SloObjective.parse(spec)

    def test_validate_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SloObjective(window_s=0).validate()


class TestEvaluate:
    def test_healthy_log_is_ok(self):
        records = [record(latency_ms=5.0) for _ in range(50)]
        report = evaluate(records, now=NOW)
        assert report.ok
        assert not report.breaches()
        assert {s.signal for s in report.statuses} == {"latency", "errors"}

    def test_no_data_is_ok(self):
        report = evaluate([], now=NOW)
        assert report.ok
        for status in report.statuses:
            assert status.long_window.events == 0
            assert status.long_window.burn == 0.0

    def test_latency_breach(self):
        objectives = (SloObjective("*", p95_ms=100.0, error_rate=None),)
        records = [record(latency_ms=900.0) for _ in range(20)]
        report = evaluate(records, objectives, now=NOW)
        (status,) = report.statuses
        assert status.breached
        assert status.signal == "latency"
        # All 20 requests are slow against a 5% budget: burn = 1/0.05 = 20.
        assert status.long_window.burn == pytest.approx(20.0)
        assert status.observed_p95_ms == pytest.approx(900.0)

    def test_error_breach(self):
        objectives = (SloObjective("*", p95_ms=None, error_rate=0.05),)
        records = [
            record(status="error" if i % 2 else "ok") for i in range(40)
        ]
        report = evaluate(records, objectives, now=NOW)
        (status,) = report.statuses
        assert status.breached
        assert status.long_window.bad == 20
        assert status.long_window.burn == pytest.approx(0.5 / 0.05)

    def test_old_incident_does_not_page(self):
        """Multi-window: bad events outside the short window stay quiet."""
        objectives = (
            SloObjective("*", p95_ms=100.0, error_rate=None, window_s=3600.0),
        )
        # Short window is 3600/12 = 300s; the incident ended 1000s ago.
        records = [record(latency_ms=900.0, age_s=1000.0) for _ in range(20)]
        report = evaluate(records, objectives, now=NOW)
        (status,) = report.statuses
        assert status.long_window.burn >= 1.0
        assert status.short_window.events == 0
        assert not status.breached

    def test_engine_scoped_objective_ignores_other_engines(self):
        objectives = (SloObjective("join", p95_ms=100.0, error_rate=None),)
        records = [record(engine="keyword", latency_ms=900.0)] * 10 + [
            record(engine="join", latency_ms=5.0)
        ] * 10
        report = evaluate(records, objectives, now=NOW)
        (status,) = report.statuses
        assert not status.breached
        assert status.long_window.events == 10

    def test_burn_threshold_raises_the_bar(self):
        objectives = (SloObjective("*", p95_ms=100.0, error_rate=None),)
        # 10% slow -> burn 2.0: breaches at threshold 1, not at 3.
        records = [
            record(latency_ms=900.0 if i < 2 else 5.0) for i in range(20)
        ]
        assert evaluate(records, objectives, now=NOW, burn_threshold=3.0).ok
        assert not evaluate(records, objectives, now=NOW, burn_threshold=1.0).ok

    def test_report_to_dict_and_render(self):
        records = [record(latency_ms=900.0, status="error")] * 5
        report = evaluate(records, now=NOW)
        payload = report.to_dict()
        json.dumps(payload)  # must be serializable
        assert payload["ok"] is False
        assert payload["statuses"][0]["long"]["events"] == 5
        text = report.render()
        assert "BREACH" in text
        assert "latency" in text and "errors" in text


class TestConfigIntegration:
    def test_default_config_carries_objectives(self):
        config = DiscoveryConfig()
        assert config.slos == health.DEFAULT_OBJECTIVES
        assert config.trace_sample_rate == 1.0
        assert config.slow_query_ms > 0

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ConfigError):
            DiscoveryConfig(trace_sample_rate=2.0).validate()

    def test_bad_objective_rejected(self):
        with pytest.raises(ConfigError):
            DiscoveryConfig(
                slos=(SloObjective(p95_ms=-1.0),)
            ).validate()
