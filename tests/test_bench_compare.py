"""Tests for benchmark trajectories and the bench-compare regression gate."""

import copy
import json

from repro.bench.harness import (
    BenchTrajectory,
    compare_trajectories,
    time_call,
)
from repro.core.cli import main
from repro.datalake.generate import make_union_corpus


def make_traj(scale: float = 1.0) -> dict:
    t = BenchTrajectory("queries", meta={"tables": 4})
    t.add("query.keyword", 2.0 * scale)
    t.add("query.join.exact", 5.0 * scale)
    t.add("pipeline.build", 100.0 * scale)
    return t.to_dict()


class TestTrajectory:
    def test_time_call_stats(self):
        stats = time_call(lambda: sum(range(100)), repeat=2)
        assert stats["runs"] == 2
        assert stats["best_ms"] <= stats["latency_ms"]

    def test_write_to_directory_uses_convention(self, tmp_path):
        t = BenchTrajectory("queries")
        t.add("a", 1.0)
        path = t.write(str(tmp_path))
        assert path.endswith("BENCH_queries.json")
        loaded = BenchTrajectory.load(path)
        assert loaded["experiment"] == "queries"
        assert loaded["records"][0]["latency_ms"] == 1.0

    def test_add_timed_records_and_returns(self):
        t = BenchTrajectory("x")
        stats = t.add_timed("case", lambda: None, repeat=1, tag="v")
        assert stats["runs"] == 1
        assert t.records[0]["tag"] == "v"


class TestCompare:
    def test_identical_is_ok(self):
        cmp = compare_trajectories(make_traj(), make_traj())
        assert cmp.ok
        assert all(r["status"] == "ok" for r in cmp.rows)
        assert "OK: no latency regressions" in cmp.render()

    def test_2x_regression_fails(self):
        cmp = compare_trajectories(make_traj(), make_traj(2.0))
        assert not cmp.ok
        assert len(cmp.regressions) == 3
        assert "FAIL: 3 record(s) regressed" in cmp.render()

    def test_within_threshold_is_ok(self):
        cmp = compare_trajectories(make_traj(), make_traj(1.15), threshold=0.2)
        assert cmp.ok

    def test_improvement_reported_not_failed(self):
        cmp = compare_trajectories(make_traj(), make_traj(0.5))
        assert cmp.ok
        assert {r["status"] for r in cmp.rows} == {"improved"}

    def test_added_and_removed_never_fail(self):
        old, new = make_traj(), make_traj()
        old["records"].append({"name": "gone", "latency_ms": 9.0})
        new["records"].append({"name": "fresh", "latency_ms": 9.0})
        cmp = compare_trajectories(old, new)
        assert cmp.ok
        by_name = {r["name"]: r["status"] for r in cmp.rows}
        assert by_name["gone"] == "removed"
        assert by_name["fresh"] == "added"

    def test_zero_baseline_counts_as_regression(self):
        old, new = make_traj(), make_traj()
        old["records"][0]["latency_ms"] = 0.0
        cmp = compare_trajectories(old, new)
        assert not cmp.ok


class TestCli:
    def write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_baseline_vs_itself_exits_zero(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", make_traj())
        assert main(["bench-compare", old, old]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", make_traj())
        slow = copy.deepcopy(make_traj())
        for r in slow["records"]:
            r["latency_ms"] *= 2
        new = self.write(tmp_path, "new.json", slow)
        assert main(["bench-compare", old, new, "--threshold", "0.2"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_report_only_exits_zero_on_regression(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", make_traj())
        new = self.write(tmp_path, "new.json", make_traj(3.0))
        assert main(["bench-compare", old, new, "--report-only"]) == 0
        assert "FAIL" in capsys.readouterr().out


class TestBenchCommand:
    def test_bench_writes_trajectory(self, tmp_path, capsys):
        lake_dir = tmp_path / "lake"
        corpus = make_union_corpus(
            n_groups=2, tables_per_group=2, rows_per_table=20, seed=3
        )
        corpus.lake.save_to_directory(lake_dir)
        rc = main(
            [
                "bench",
                str(lake_dir),
                "-o",
                str(tmp_path),
                "--experiment",
                "smoke",
                "--repeat",
                "1",
            ]
        )
        assert rc == 0
        path = tmp_path / "BENCH_smoke.json"
        assert path.exists()
        data = json.loads(path.read_text())
        names = {r["name"] for r in data["records"]}
        assert "pipeline.build" in names
        assert "query.keyword" in names
