"""Tests for BM25 metadata keyword search."""

import pytest

from repro.datalake.generate import make_keyword_corpus
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.search.keyword import KeywordSearchEngine


@pytest.fixture(scope="module")
def kw_corpus():
    return make_keyword_corpus(n_topics=4, tables_per_topic=6, seed=3)


@pytest.fixture(scope="module")
def engine(kw_corpus):
    e = KeywordSearchEngine()
    e.index_lake(kw_corpus.lake)
    return e


class TestSearch:
    def test_topic_query_finds_topic_tables(self, kw_corpus, engine):
        hits = engine.search("topic1", k=10)
        names = {h.table for h in hits}
        assert names & kw_corpus.truth["topic1"]
        # Topic-1 tables should dominate the top ranks.
        top3 = [h.table for h in hits[:3]]
        assert all(t in kw_corpus.truth["topic1"] for t in top3)

    def test_scores_descending(self, engine):
        hits = engine.search("topic2 annual report", k=10)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_no_match_empty(self, engine):
        assert engine.search("zzz qqq xxx") == []

    def test_multi_term_beats_single(self, engine):
        multi = engine.search("topic0 agency", k=1)
        single = engine.search("topic0", k=1)
        assert multi and single
        assert multi[0].score >= single[0].score

    def test_k_respected(self, engine):
        assert len(engine.search("report", k=3)) <= 3

    def test_idf_downweights_common_terms(self, engine):
        # "open" appears in every table's tags (open-data), so it should
        # score lower than a discriminative topic term.
        common = engine.search("open", k=1)
        rare = engine.search("topic3", k=1)
        assert rare[0].score > (common[0].score if common else 0.0)


class TestClustering:
    def test_clusters_group_same_schema(self, engine):
        clusters = engine.search_clustered("topic1", k=10)
        assert clusters
        total = sum(len(c) for c in clusters)
        assert total == len(engine.search("topic1", k=10))

    def test_header_indexing_optional(self, kw_corpus):
        bare = KeywordSearchEngine(include_headers=False)
        bare.index_lake(kw_corpus.lake)
        # Header tokens ("attr"-style) shouldn't be findable now.
        assert bare.search("attr") == []


class TestValueIndexing:
    def test_octopus_mode_reaches_cell_data(self, kw_corpus):
        """include_values=True finds tables whose metadata never mentions
        the query term but whose cells do."""
        meta_only = KeywordSearchEngine(include_values=False)
        meta_only.index_lake(kw_corpus.lake)
        with_values = KeywordSearchEngine(include_values=True)
        with_values.index_lake(kw_corpus.lake)
        # Cell values look like d003_v00017 -> token "d003".
        some_table = next(iter(kw_corpus.lake))
        cell = some_table.columns[1].non_null_values()[0]
        token = cell.split("_")[0]
        assert meta_only.search(token) == []
        assert with_values.search(token)

    def test_value_token_budget_respected(self, kw_corpus):
        tiny = KeywordSearchEngine(include_values=True, max_value_tokens=5)
        tiny.index_lake(kw_corpus.lake)
        big = KeywordSearchEngine(include_values=True, max_value_tokens=500)
        big.index_lake(kw_corpus.lake)
        assert sum(tiny._doc_len.values()) < sum(big._doc_len.values())


class TestEdgeCases:
    def test_empty_lake(self):
        e = KeywordSearchEngine()
        e.index_lake(DataLake())
        assert e.search("anything") == []

    def test_table_without_metadata_still_indexed(self):
        lake = DataLake(
            [Table.from_dict("plain", {"alpha": ["1"], "beta": ["2"]})]
        )
        e = KeywordSearchEngine()
        e.index_lake(lake)
        assert [h.table for h in e.search("alpha")] == ["plain"]

    def test_metadata_description_searchable(self):
        lake = DataLake(
            [
                Table.from_dict(
                    "doc",
                    {"c": ["1"]},
                )
            ]
        )
        lake.table("doc").metadata.description = "quarterly finance summary"
        e = KeywordSearchEngine()
        e.index_lake(lake)
        assert [h.table for h in e.search("finance")] == ["doc"]
