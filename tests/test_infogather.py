"""Tests for InfoGather-style entity augmentation."""

import pytest

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.search.infogather import InfoGather


@pytest.fixture(scope="module")
def lake():
    t1 = Table.from_dict(
        "geo_one",
        {
            "city": ["oslo", "rome", "lima"],
            "country": ["norway", "italy", "peru"],
        },
    )
    t2 = Table.from_dict(
        "geo_two",
        {
            "city name": ["oslo", "cairo", "rome"],
            "country": ["norway", "egypt", "italy"],
        },
    )
    noisy = Table.from_dict(
        "geo_noisy",
        {
            "city": ["oslo", "rome"],
            "country": ["sweden", "italy"],  # one wrong value
        },
    )
    unrelated = Table.from_dict(
        "prices", {"item": ["apple", "pear"], "price": ["1", "2"]}
    )
    return DataLake([t1, t2, noisy, unrelated])


@pytest.fixture(scope="module")
def gatherer(lake):
    return InfoGather(lake).build()


class TestLifecycle:
    def test_build_required(self, lake):
        with pytest.raises(RuntimeError):
            InfoGather(lake).augment_by_attribute(["oslo"], "country")


class TestByAttribute:
    def test_fills_known_entities(self, gatherer):
        out = gatherer.augment_by_attribute(
            ["oslo", "rome", "cairo"], "country"
        )
        assert out.values["oslo"] == "norway"
        assert out.values["rome"] == "italy"
        assert out.values["cairo"] == "egypt"

    def test_majority_vote_beats_noise(self, gatherer):
        # geo_noisy says oslo -> sweden; two tables say norway.
        out = gatherer.augment_by_attribute(["oslo"], "country")
        assert out.values["oslo"] == "norway"
        assert out.support["oslo"] == 3

    def test_unknown_entity_uncovered(self, gatherer):
        out = gatherer.augment_by_attribute(["atlantis"], "country")
        assert "atlantis" not in out.values
        assert out.coverage(["atlantis"]) == 0.0

    def test_attribute_name_must_match(self, gatherer):
        out = gatherer.augment_by_attribute(["oslo"], "elevation")
        assert out.values == {}

    def test_sources_reported(self, gatherer):
        out = gatherer.augment_by_attribute(["oslo"], "country")
        assert "geo_one" in out.sources

    def test_coverage_fraction(self, gatherer):
        out = gatherer.augment_by_attribute(["oslo", "atlantis"], "country")
        assert out.coverage(["oslo", "atlantis"]) == 0.5


class TestByExample:
    def test_extends_mapping(self, gatherer):
        out = gatherer.augment_by_example(
            entities=["lima", "cairo"],
            examples={"oslo": "norway", "rome": "italy"},
        )
        assert out.values.get("lima") == "peru"
        assert out.values.get("cairo") == "egypt"

    def test_examples_not_echoed(self, gatherer):
        out = gatherer.augment_by_example(
            entities=["oslo", "lima"],
            examples={"oslo": "norway", "rome": "italy"},
        )
        assert "oslo" not in out.values

    def test_min_hits_filters_coincidences(self, gatherer):
        # A single example matches the noisy table too; with the default
        # min_example_hits=2, the pair (city -> wrong country) is rejected.
        out = gatherer.augment_by_example(
            entities=["lima"],
            examples={"rome": "italy"},
            min_example_hits=2,
        )
        assert out.values == {}

    def test_header_names_irrelevant(self, gatherer):
        # geo_two's entity column is "city name" — by-example matching
        # never looks at headers.
        out = gatherer.augment_by_example(
            entities=["cairo"],
            examples={"oslo": "norway", "rome": "italy"},
        )
        assert out.values.get("cairo") == "egypt"
