"""Unit tests for the DataLake catalog."""

import pytest

from repro.core.errors import LakeError
from repro.datalake.csvio import write_table_csv
from repro.datalake.lake import DataLake
from repro.datalake.table import ColumnRef, Table


class TestCatalog:
    def test_add_and_lookup(self, tiny_table):
        lake = DataLake([tiny_table])
        assert lake.table("cities") is tiny_table
        assert "cities" in lake
        assert len(lake) == 1

    def test_duplicate_rejected(self, tiny_table):
        lake = DataLake([tiny_table])
        with pytest.raises(LakeError):
            lake.add(tiny_table)

    def test_missing_table_raises(self):
        with pytest.raises(LakeError):
            DataLake().table("nope")

    def test_remove(self, tiny_table):
        lake = DataLake([tiny_table])
        lake.remove("cities")
        assert len(lake) == 0
        with pytest.raises(LakeError):
            lake.remove("cities")

    def test_iteration_yields_tables(self, tiny_lake):
        names = {t.name for t in tiny_lake}
        assert names == {"cities", "capitals", "metrics"}

    def test_table_names(self, tiny_lake):
        assert set(tiny_lake.table_names()) == {"cities", "capitals", "metrics"}


class TestColumnAddressing:
    def test_column_resolution(self, tiny_lake):
        col = tiny_lake.column(ColumnRef("cities", 0))
        assert col.name == "city"

    def test_out_of_range_ref(self, tiny_lake):
        with pytest.raises(LakeError):
            tiny_lake.column(ColumnRef("cities", 99))

    def test_iter_columns_counts(self, tiny_lake):
        refs = list(tiny_lake.iter_columns())
        assert len(refs) == 3 + 2 + 2

    def test_text_numeric_partition(self, tiny_lake):
        text = {str(r) for r, _ in tiny_lake.iter_text_columns()}
        nums = {str(r) for r, _ in tiny_lake.iter_numeric_columns()}
        assert text.isdisjoint(nums)
        assert len(text) + len(nums) == 7
        assert "metrics[1]" in nums


class TestStats:
    def test_stats_totals(self, tiny_lake):
        s = tiny_lake.stats()
        assert s["tables"] == 3
        assert s["columns"] == 7
        assert s["cells"] == 4 * 3 + 3 * 2 + 3 * 2


class TestIngestion:
    def test_from_directory(self, tmp_path, tiny_table):
        write_table_csv(tiny_table, tmp_path / "one.csv")
        write_table_csv(
            Table.from_dict("x", {"a": ["1"]}), tmp_path / "sub_two.csv"
        )
        lake = DataLake.from_directory(tmp_path)
        assert len(lake) == 2
        assert "one" in lake and "sub_two" in lake

    def test_from_directory_recursive(self, tmp_path, tiny_table):
        sub = tmp_path / "nested"
        sub.mkdir()
        write_table_csv(tiny_table, sub / "deep.csv")
        assert "deep" in DataLake.from_directory(tmp_path)
