"""Unit + property tests for the KMV distinct-count sketch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.kmv import KMV


class TestExactRegime:
    def test_small_streams_exact(self):
        sk = KMV(k=64)
        for i in range(30):
            sk.update(f"v{i}")
        assert sk.estimate() == 30

    def test_duplicates_ignored(self):
        sk = KMV(k=64)
        for _ in range(5):
            for i in range(10):
                sk.update(f"v{i}")
        assert sk.estimate() == 10

    def test_empty_estimate_zero(self):
        assert KMV().estimate() == 0.0

    def test_k_too_small_rejected(self):
        with pytest.raises(ValueError):
            KMV(k=1)


class TestEstimateRegime:
    @pytest.mark.parametrize("n", [2000, 10000])
    def test_relative_error_bounded(self, n):
        sk = KMV(k=512)
        for i in range(n):
            sk.update(f"item{i}")
        # stderr ~ 1/sqrt(k) ~ 4.4%; allow 4 sigma.
        assert sk.estimate() == pytest.approx(n, rel=0.2)

    def test_larger_k_not_worse_on_average(self):
        n = 5000
        errs = []
        for k in (64, 1024):
            sk = KMV(k=k)
            for i in range(n):
                sk.update(f"item{i}")
            errs.append(abs(sk.estimate() - n) / n)
        assert errs[1] <= errs[0] + 0.02


class TestMerge:
    def test_merge_estimates_union(self):
        a, b = KMV(k=256), KMV(k=256)
        for i in range(1500):
            a.update(f"a{i}")
        for i in range(1500):
            b.update(f"b{i}")
        merged = a.merge(b)
        assert merged.estimate() == pytest.approx(3000, rel=0.25)

    def test_merge_overlapping_streams(self):
        a, b = KMV(k=256), KMV(k=256)
        for i in range(1000):
            a.update(f"x{i}")
            b.update(f"x{i}")
        assert a.merge(b).estimate() == pytest.approx(1000, rel=0.25)

    def test_incompatible_merge_rejected(self):
        with pytest.raises(ValueError):
            KMV(k=64).merge(KMV(k=128))


@given(st.sets(st.text(min_size=1, max_size=8), max_size=200))
@settings(max_examples=30, deadline=None)
def test_never_overestimates_below_k(values):
    """Property: under k distinct values the sketch is exactly |values|."""
    sk = KMV(k=256)
    for v in values:
        sk.update(v)
    assert sk.estimate() == len(values)


@given(st.lists(st.text(min_size=1, max_size=8), max_size=300))
@settings(max_examples=30, deadline=None)
def test_order_invariance(stream):
    """Property: the estimate is independent of stream order."""
    a, b = KMV(k=64), KMV(k=64)
    for v in stream:
        a.update(v)
    for v in reversed(stream):
        b.update(v)
    assert a.estimate() == b.estimate()
