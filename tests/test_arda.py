"""Tests for ARDA-style feature augmentation."""

import pytest

from repro.apps.arda import ArdaAugmenter
from repro.datalake.generate import make_ml_corpus


@pytest.fixture(scope="module")
def ml_corpus():
    return make_ml_corpus(n_rows=250, n_informative=3, n_noise=6, seed=21)


@pytest.fixture(scope="module")
def augmenter(ml_corpus):
    return ArdaAugmenter(ml_corpus.lake, seed=21).build()


class TestJoinDiscovery:
    def test_build_required(self, ml_corpus):
        a = ArdaAugmenter(ml_corpus.lake)
        with pytest.raises(RuntimeError):
            a.discover_joins(ml_corpus.lake.table("ml_base"), 0)

    def test_finds_candidate_tables(self, ml_corpus, augmenter):
        base = ml_corpus.lake.table("ml_base")
        joins = augmenter.discover_joins(base, key_column=0)
        names = {t for t, _, _ in joins}
        assert ml_corpus.informative <= names

    def test_containment_reported(self, ml_corpus, augmenter):
        base = ml_corpus.lake.table("ml_base")
        for _, _, containment in augmenter.discover_joins(base, 0):
            assert 0.5 <= containment <= 1.0


class TestAugmentation:
    def test_augmentation_lifts_r2(self, ml_corpus, augmenter):
        """The ARDA headline (E12 shape): augmented features massively beat
        the weak base feature."""
        base = ml_corpus.lake.table("ml_base")
        report = augmenter.augment(base, key_column=0, target_column=2)
        assert report.base_r2 < 0.4
        assert report.augmented_r2 > report.base_r2 + 0.3
        assert report.selected_r2 > report.base_r2 + 0.3

    def test_selection_keeps_informative_drops_most_noise(
        self, ml_corpus, augmenter
    ):
        base = ml_corpus.lake.table("ml_base")
        report = augmenter.augment(base, key_column=0, target_column=2)
        selected_tables = {
            name.split(":")[0] for name in report.selected_features
        }
        kept_info = len(selected_tables & ml_corpus.informative)
        kept_noise = len(selected_tables & ml_corpus.noise)
        assert kept_info == len(ml_corpus.informative)
        assert kept_noise < len(ml_corpus.noise)

    def test_report_candidates_recorded(self, ml_corpus, augmenter):
        base = ml_corpus.lake.table("ml_base")
        report = augmenter.augment(base, key_column=0, target_column=2)
        assert set(report.candidate_tables) & ml_corpus.informative


class TestRandomInjection:
    def test_empty_features(self, augmenter):
        import numpy as np

        assert (
            augmenter.random_injection_select(
                [], [], np.zeros(3), np.ones(3, dtype=bool)
            )
            == []
        )

    def test_pure_noise_rejected(self, ml_corpus, augmenter):
        import numpy as np

        rng = np.random.default_rng(0)
        y = rng.normal(size=200)
        feats = [rng.normal(size=200) for _ in range(5)]
        names = [f"junk{i}" for i in range(5)]
        mask = np.ones(200, dtype=bool)
        kept = augmenter.random_injection_select(feats, names, y, mask)
        assert len(kept) <= 2
