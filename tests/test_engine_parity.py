"""Registry parity suite: the facade shims must return bit-identical
results to direct engine-protocol queries, and snapshots must round-trip
on the v2 per-engine payload format.

The refactor promise is "same results, new seam": every pre-refactor
query path (all explain-capable engines, navigation, related_columns)
goes through ``Engine.query`` now, and these tests pin the equivalence.
"""

import json

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.engine import QueryRequest
from repro.core.errors import SnapshotError
from repro.core.snapshot import FORMAT_VERSION, read_manifest
from repro.core.system import DiscoverySystem
from repro.datalake.table import ColumnRef


@pytest.fixture(scope="module")
def system(union_corpus):
    config = DiscoveryConfig(
        embedding_dim=32, enable_domains=True, num_partitions=4
    )
    return DiscoverySystem(
        union_corpus.lake, config, ontology=union_corpus.ontology
    ).build()


def assert_same_report(a, b):
    """ExplainReports are equal when their funnel and summary agree."""
    if a is None and b is None:
        return
    assert a.counts() == b.counts()
    assert a.results == b.results
    assert a.engine == b.engine


class TestFacadeParity:
    """Each facade shim vs a direct Engine.query with the same request."""

    def test_keyword(self, system, union_corpus):
        header = union_corpus.lake.table(
            union_corpus.groups[0][0]
        ).columns[0].name
        token = header.split("_")[0]
        facade, facade_report = system.keyword_search(
            token, k=5, explain=True
        )
        direct, direct_report = system.engines["keyword"].query(
            QueryRequest(text=token, k=5, explain=True)
        )
        assert facade == direct
        assert_same_report(facade_report, direct_report)

    def test_josie_exact(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        ref = ColumnRef(qname, 0)
        facade, facade_report = system.joinable_search(
            ref, k=5, method="exact", explain=True
        )
        direct, direct_report = system.engines["josie"].query(
            QueryRequest(
                column=system.lake.column(ref),
                k=5,
                exclude_table=qname,
                explain=True,
            )
        )
        assert facade == direct
        assert_same_report(facade_report, direct_report)

    def test_lshensemble_containment(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        ref = ColumnRef(qname, 0)
        facade, facade_report = system.joinable_search(
            ref, k=5, method="containment", explain=True
        )
        direct, direct_report = system.engines["lshensemble"].query(
            QueryRequest(
                column=system.lake.column(ref),
                k=5,
                exclude_table=qname,
                explain=True,
            )
        )
        assert facade == direct
        assert_same_report(facade_report, direct_report)

    def test_jaccard_lsh_new_path(self, system, union_corpus):
        """The jaccard baseline is newly addressable through the registry;
        its results must match the underlying JoinableSearch call."""
        qname = union_corpus.groups[0][0]
        column = system.lake.column(ColumnRef(qname, 0))
        direct, report = system.engines["jaccard_lsh"].query(
            QueryRequest(column=column, k=5, exclude_table=qname)
        )
        assert report is None
        expected = sorted(
            system._joinable.jaccard_baseline(column, exclude_table=qname)
        )[:5]
        assert direct == expected

    def test_pexeso_fuzzy(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        ref = ColumnRef(qname, 0)
        facade, facade_report = system.fuzzy_joinable_search(
            ref, k=5, explain=True
        )
        direct, direct_report = system.engines["pexeso"].query(
            QueryRequest(
                column=system.lake.column(ref),
                k=5,
                exclude_table=qname,
                explain=True,
            )
        )
        assert facade == direct
        assert_same_report(facade_report, direct_report)

    def test_mate(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        table = system.lake.table(qname)
        facade, facade_report = system.multi_attribute_search(
            table, [0, 1], k=3, explain=True
        )
        direct, direct_report = system.engines["mate"].query(
            QueryRequest(table=table, key_columns=(0, 1), k=3, explain=True)
        )
        assert facade == direct
        assert_same_report(facade_report, direct_report)

    @pytest.mark.parametrize("method", ["tus", "starmie", "santos"])
    def test_union_methods(self, system, union_corpus, method):
        qname = union_corpus.groups[0][0]
        table = system.lake.table(qname)
        facade, facade_report = system.unionable_search(
            qname, k=5, method=method, explain=True
        )
        direct, direct_report = system.engines[method].query(
            QueryRequest(table=table, k=5, explain=True)
        )
        assert facade == direct
        assert_same_report(facade_report, direct_report)

    def test_qcr_correlated(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        table = system.lake.table(qname)
        facade, facade_report = system.correlated_search(
            qname, 0, 1, k=5, explain=True
        )
        direct, direct_report = system.engines["qcr"].query(
            QueryRequest(
                table=table, key_column=0, value_column=1, k=5, explain=True
            )
        )
        assert facade == direct
        assert_same_report(facade_report, direct_report)

    def test_navigate(self, system):
        facade = system.navigate("concept_000")
        direct, report = system.engines["organization"].query(
            QueryRequest(text="concept_000")
        )
        assert facade == direct
        assert report is None

    def test_related_columns_unaffected(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        res = system.related_columns(ColumnRef(qname, 0), k=5)
        assert res == system.knowledge_graph().neighbors(
            ColumnRef(qname, 0)
        )[:5]

    def test_legacy_private_views_alias_adapters(self, system):
        """The read-only back-compat properties see the adapters' state."""
        assert system._keyword is system.engines["keyword"].raw
        assert system._joinable is system.engines["josie"].raw
        # The three join engines share one JoinableSearch instance.
        assert (
            system.engines["josie"].raw
            is system.engines["lshensemble"].raw
            is system.engines["jaccard_lsh"].raw
        )
        assert system._org is system.engines["organization"].organization


class TestSnapshotRoundTrip:
    def test_v2_manifest_and_identical_queries(
        self, system, union_corpus, tmp_path
    ):
        snapdir = tmp_path / "snap"
        manifest = system.save(snapdir)
        assert manifest.format_version == FORMAT_VERSION == 2
        assert set(manifest.engines) == set(system.engines)
        on_disk = read_manifest(snapdir)
        assert on_disk.engines == manifest.engines

        loaded = DiscoverySystem.load(snapdir)
        qname = union_corpus.groups[0][0]
        ref = ColumnRef(qname, 0)
        assert loaded.joinable_search(ref, k=5) == system.joinable_search(
            ref, k=5
        )
        assert loaded.unionable_search(
            qname, k=5, method="tus"
        ) == system.unionable_search(qname, k=5, method="tus")
        assert loaded.navigate("concept_000") == system.navigate(
            "concept_000"
        )

    def test_join_engines_share_payload_after_reload(
        self, system, tmp_path
    ):
        """Pickle's memo must keep the three join views on one object."""
        snapdir = tmp_path / "snap_shared"
        system.save(snapdir)
        loaded = DiscoverySystem.load(snapdir)
        assert (
            loaded.engines["josie"].raw
            is loaded.engines["lshensemble"].raw
            is loaded.engines["jaccard_lsh"].raw
        )

    def test_old_format_version_refused(self, system, tmp_path):
        snapdir = tmp_path / "snap_old"
        system.save(snapdir)
        manifest_path = snapdir / "manifest.json"
        doc = json.loads(manifest_path.read_text(encoding="utf-8"))
        doc["format_version"] = 1
        manifest_path.write_text(json.dumps(doc), encoding="utf-8")
        with pytest.raises(SnapshotError, match="format version"):
            DiscoverySystem.load(snapdir)
