"""Tests for Starmie-style contextual-embedding union search."""

import pytest

from repro.search.union_starmie import StarmieConfig, StarmieUnionSearch
from repro.understanding.contextual import ContextualColumnEncoder


@pytest.fixture(scope="module")
def encoder(union_space):
    return ContextualColumnEncoder(union_space, context_weight=0.3)


@pytest.fixture(scope="module")
def starmie_hnsw(union_corpus, encoder):
    return StarmieUnionSearch(
        union_corpus.lake, encoder, StarmieConfig(index="hnsw")
    ).build()


class TestLifecycle:
    def test_unknown_index_rejected(self, union_corpus, encoder):
        with pytest.raises(ValueError):
            StarmieUnionSearch(
                union_corpus.lake, encoder, StarmieConfig(index="btree")
            )

    def test_search_before_build_rejected(self, union_corpus, encoder):
        s = StarmieUnionSearch(union_corpus.lake, encoder)
        with pytest.raises(RuntimeError):
            s.search(next(iter(union_corpus.lake)))


class TestRetrieval:
    def test_group_members_rank_top(self, union_corpus, starmie_hnsw):
        for g in range(2):
            qname = union_corpus.groups[g][0]
            res = starmie_hnsw.search(union_corpus.lake.table(qname), k=3)
            got = {r.table for r in res}
            assert len(got & union_corpus.truth[qname]) >= 2

    def test_no_self_match(self, union_corpus, starmie_hnsw):
        qname = union_corpus.groups[0][0]
        res = starmie_hnsw.search(union_corpus.lake.table(qname), k=10)
        assert all(r.table != qname for r in res)

    def test_scores_sorted_and_bounded(self, union_corpus, starmie_hnsw):
        qname = union_corpus.groups[1][0]
        res = starmie_hnsw.search(union_corpus.lake.table(qname), k=8)
        scores = [r.score for r in res]
        assert scores == sorted(scores, reverse=True)
        assert all(0 <= s <= 1.0 + 1e-9 for s in scores)

    @pytest.mark.parametrize("index", ["linear", "lsh", "hnsw"])
    def test_all_index_kinds_agree_on_top1(self, union_corpus, encoder, index):
        s = StarmieUnionSearch(
            union_corpus.lake, encoder, StarmieConfig(index=index)
        ).build()
        qname = union_corpus.groups[0][0]
        res = s.search(union_corpus.lake.table(qname), k=3)
        assert {r.table for r in res} & union_corpus.truth[qname], index

    def test_alignment_indices_valid(self, union_corpus, starmie_hnsw):
        qname = union_corpus.groups[0][0]
        res = starmie_hnsw.search(union_corpus.lake.table(qname), k=1)
        cand = union_corpus.lake.table(res[0].table)
        for qi, cj, s in res[0].alignment:
            assert 0 <= cj < cand.num_cols
            assert s > 0


class TestContextEffect:
    def test_contextual_no_worse_than_plain(self, union_corpus, union_space):
        """E6 ablation shape: context-aware encoding should not lose to the
        plain value-bag encoding on context-dependent corpora."""
        from repro.bench.metrics import precision_at_k

        plain = StarmieUnionSearch(
            union_corpus.lake,
            ContextualColumnEncoder(union_space, context_weight=0.0),
            StarmieConfig(index="linear"),
        ).build()
        ctx = StarmieUnionSearch(
            union_corpus.lake,
            ContextualColumnEncoder(union_space, context_weight=0.4),
            StarmieConfig(index="linear"),
        ).build()

        def quality(engine):
            total = 0.0
            for g, members in union_corpus.groups.items():
                q = members[0]
                res = engine.search(union_corpus.lake.table(q), k=3)
                total += precision_at_k(
                    [r.table for r in res], union_corpus.truth[q], 3
                )
            return total

        assert quality(ctx) >= quality(plain) - 0.34
