"""Unit tests for the offline pipeline's stage-DAG executor."""

import threading

import pytest

from repro.core.dag import Stage, StageCycleError, StageGraph


def names_in_order(log):
    return [entry for entry in log]


class TestGraphConstruction:
    def test_topological_order_is_stable(self):
        g = StageGraph(
            [
                Stage("a", lambda: None),
                Stage("b", lambda: None, deps=("a",)),
                Stage("c", lambda: None),
                Stage("d", lambda: None, deps=("b", "c")),
            ]
        )
        assert g.order() == ["a", "c", "b", "d"]

    def test_missing_dep_is_satisfied(self):
        # A dependency on a stage absent from the graph (disabled or
        # skipped) must not block its dependent.
        g = StageGraph([Stage("b", lambda: None, deps=("a",))])
        assert g.order() == ["b"]
        assert g.deps("b") == ()

    def test_cycle_detected(self):
        with pytest.raises(StageCycleError):
            StageGraph(
                [
                    Stage("a", lambda: None, deps=("b",)),
                    Stage("b", lambda: None, deps=("a",)),
                ]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            StageGraph([Stage("a", lambda: None), Stage("a", lambda: None)])

    def test_empty_graph(self):
        g = StageGraph([])
        assert g.order() == []
        assert g.run(jobs=4) == 0


class TestSequentialRun:
    def test_runs_in_order(self):
        log = []
        g = StageGraph(
            [
                Stage("a", lambda: log.append("a")),
                Stage("b", lambda: log.append("b"), deps=("a",)),
                Stage("c", lambda: log.append("c")),
            ]
        )
        assert g.run(jobs=1) == 1
        assert log == ["a", "c", "b"]

    def test_run_stage_wrapper_used(self):
        wrapped = []
        g = StageGraph([Stage("a", lambda: None)])
        g.run(jobs=1, run_stage=lambda s: wrapped.append(s.name))
        assert wrapped == ["a"]


class TestParallelRun:
    def test_all_stages_run_and_deps_respected(self):
        lock = threading.Lock()
        log = []

        def record(name):
            def fn():
                with lock:
                    log.append(name)

            return fn

        g = StageGraph(
            [
                Stage("a", record("a")),
                Stage("b", record("b"), deps=("a",)),
                Stage("c", record("c")),
                Stage("d", record("d"), deps=("b", "c")),
            ]
        )
        g.run(jobs=4)
        assert sorted(log) == ["a", "b", "c", "d"]
        assert log.index("a") < log.index("b")
        assert log.index("b") < log.index("d")
        assert log.index("c") < log.index("d")

    def test_independent_stages_overlap(self):
        # Two independent stages meeting at a barrier proves they truly
        # ran concurrently (a sequential executor would deadlock; the
        # timeout turns that into a failure instead).
        barrier = threading.Barrier(2, timeout=10)

        def meet():
            barrier.wait()

        g = StageGraph([Stage("x", meet), Stage("y", meet)])
        assert g.run(jobs=2) == 2

    def test_exception_propagates_and_blocks_dependents(self):
        ran = []

        def boom():
            raise RuntimeError("stage failed")

        g = StageGraph(
            [
                Stage("a", boom),
                Stage("b", lambda: ran.append("b"), deps=("a",)),
            ]
        )
        with pytest.raises(RuntimeError, match="stage failed"):
            g.run(jobs=2)
        assert ran == []

    def test_exception_propagates_sequentially(self):
        def boom():
            raise ValueError("nope")

        g = StageGraph([Stage("a", boom)])
        with pytest.raises(ValueError):
            g.run(jobs=1)
