"""Tests for SANTOS relationship-aware union search."""

import pytest

from repro.bench.metrics import precision_at_k
from repro.datalake.generate import make_relationship_corpus
from repro.search.union_santos import (
    ColumnOnlySantosBaseline,
    SantosUnionSearch,
)


@pytest.fixture(scope="module")
def rel_corpus():
    return make_relationship_corpus(
        n_queries=3, positives_per_query=5, confounders_per_query=5, seed=13
    )


@pytest.fixture(scope="module")
def santos(rel_corpus):
    return SantosUnionSearch(rel_corpus.lake, rel_corpus.ontology).build()


class TestLifecycle:
    def test_search_before_build_rejected(self, rel_corpus):
        s = SantosUnionSearch(rel_corpus.lake, rel_corpus.ontology)
        with pytest.raises(RuntimeError):
            s.search(rel_corpus.lake.table("relq_00"))


class TestRelationshipMatching:
    def test_positives_beat_confounders(self, rel_corpus, santos):
        """The SANTOS headline (E5 shape): relationship-aware matching ranks
        fact-respecting tables above domain-sharing confounders."""
        for q in rel_corpus.truth:
            res = santos.search(rel_corpus.lake.table(q), k=5)
            p5 = precision_at_k([r.table for r in res], rel_corpus.truth[q], 5)
            assert p5 >= 0.8, q

    def test_column_only_baseline_confused(self, rel_corpus, santos):
        baseline = ColumnOnlySantosBaseline(
            rel_corpus.lake, rel_corpus.ontology
        ).build()
        q = sorted(rel_corpus.truth)[0]
        res_base = baseline.search(rel_corpus.lake.table(q), k=10)
        # Baseline gives confounders the same score as positives.
        scores = {r.table: r.score for r in res_base}
        pos = sorted(rel_corpus.truth[q])[0]
        neg = sorted(rel_corpus.confounders[q])[0]
        assert scores.get(pos) == pytest.approx(scores.get(neg))
        # SANTOS separates them.
        res = {r.table: r.score for r in santos.search(rel_corpus.lake.table(q), k=20)}
        assert res.get(pos, 0.0) > res.get(neg, 0.0)

    def test_scores_sorted(self, rel_corpus, santos):
        res = santos.search(rel_corpus.lake.table("relq_00"), k=10)
        scores = [r.score for r in res]
        assert scores == sorted(scores, reverse=True)

    def test_unindexed_query_table_handled(self, rel_corpus, santos):
        # A fresh table not in the lake: semantics computed on the fly.
        from repro.datalake.table import Column, Table

        src = rel_corpus.lake.table("relq_01")
        fresh = Table(
            "fresh_query",
            [Column(c.name, list(c.values)) for c in src.columns],
        )
        res = santos.search(fresh, k=5)
        got = {r.table for r in res}
        assert got & (rel_corpus.truth["relq_01"] | {"relq_01"})


class TestSynthesizedKB:
    def test_synth_kb_helps_without_full_ontology(self, rel_corpus):
        """With facts stripped from the KB, the synthesized lake KB should
        still let SANTOS find relationship support."""
        from repro.datalake.ontology import Ontology

        bare = Ontology()
        bare.add_class("thing")
        for cls in rel_corpus.ontology.classes():
            if cls != "thing":
                bare.add_class(cls, parent="thing")
        for v, c in rel_corpus.ontology._value_to_class.items():
            bare.add_value(v, c)
        # No facts, no relations in `bare`.
        with_synth = SantosUnionSearch(
            rel_corpus.lake, bare, use_synthesized_kb=True
        ).build()
        without = SantosUnionSearch(
            rel_corpus.lake, bare, use_synthesized_kb=False
        ).build()
        q = "relq_00"
        res_with = with_synth.search(rel_corpus.lake.table(q), k=5)
        res_without = without.search(rel_corpus.lake.table(q), k=5)
        p_with = precision_at_k(
            [r.table for r in res_with], rel_corpus.truth[q], 5
        )
        p_without = precision_at_k(
            [r.table for r in res_without], rel_corpus.truth[q], 5
        )
        assert p_with >= p_without
