"""Regression tests for the pipeline skip/config/sampler bugfixes.

Each of these fails on the pre-fix code: ``run_pipeline`` used to mutate
the caller's config, index-stage skips were validated but silently
ignored, and every ``DiscoverySystem.__init__`` clobbered the
process-wide trace sampler.
"""

import logging

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.errors import LakeError
from repro.core.pipeline import run_pipeline
from repro.core.system import DiscoverySystem
from repro.obs import SAMPLER


@pytest.fixture
def restore_sampler():
    rate, slow_ms = SAMPLER.rate, SAMPLER.slow_ms
    yield
    SAMPLER.configure(rate=rate, slow_ms=slow_ms)


class TestConfigNotMutated:
    def test_skip_leaves_caller_config_unchanged(self, tiny_lake):
        config = DiscoveryConfig(embedding_dim=16, embedding_min_count=1)
        run_pipeline(
            tiny_lake, config, skip={"embeddings", "domains", "annotation"}
        )
        assert config.enable_embeddings is True
        assert config.enable_annotation is True
        assert config.enable_domains is False  # the dataclass default

    def test_skip_still_takes_effect(self, tiny_lake):
        system = run_pipeline(
            tiny_lake,
            DiscoveryConfig(embedding_dim=16),
            skip={"embeddings"},
        )
        assert "embeddings" not in system.stats.stage_seconds
        assert system.space is None


class TestIndexStageSkips:
    def test_skipped_index_stages_not_built(self, tiny_lake):
        system = run_pipeline(
            tiny_lake,
            DiscoveryConfig(enable_embeddings=False),
            skip={"keyword_index", "mate_index", "correlation_index"},
        )
        assert system._keyword is None
        assert system._mate is None
        assert system._correlated is None
        assert "keyword_index" not in system.stats.stage_seconds
        # Non-skipped stages still ran.
        assert system._joinable is not None

    def test_skipped_engines_raise_lake_error(self, tiny_lake):
        system = run_pipeline(
            tiny_lake,
            DiscoveryConfig(enable_embeddings=False),
            skip={
                "keyword_index",
                "join_index",
                "union_index",
                "correlation_index",
                "mate_index",
                "navigation",
            },
        )
        table = tiny_lake.table_names()[0]
        with pytest.raises(LakeError, match="keyword_index.*skipped"):
            system.keyword_search("anything")
        with pytest.raises(LakeError, match="join_index.*skipped"):
            from repro.datalake.table import ColumnRef

            system.joinable_search(ColumnRef(table, 0))
        with pytest.raises(LakeError, match="union_index.*skipped"):
            system.unionable_search(table, method="tus")
        with pytest.raises(LakeError, match="union_index.*skipped"):
            system.unionable_search(table, method="starmie")
        with pytest.raises(LakeError, match="union_index.*skipped"):
            system.unionable_search(table, method="santos")
        with pytest.raises(LakeError, match="correlation_index.*skipped"):
            system.correlated_search(table, 0, 1)
        with pytest.raises(LakeError, match="mate_index.*skipped"):
            system.multi_attribute_search(tiny_lake.table(table), [0])
        with pytest.raises(LakeError, match="navigation.*skipped"):
            system.organization()
        with pytest.raises(LakeError, match="navigation.*skipped"):
            system.navigate("anything")

    def test_unknown_skip_still_rejected(self, tiny_lake):
        with pytest.raises(ValueError):
            run_pipeline(tiny_lake, skip={"warp-drive"})
        with pytest.raises(ValueError):
            DiscoverySystem(tiny_lake).build(skip={"warp-drive"})


class TestSamplerNotClobbered:
    def test_default_config_preserves_existing_sampler(
        self, tiny_lake, restore_sampler
    ):
        DiscoverySystem(
            tiny_lake,
            DiscoveryConfig(trace_sample_rate=0.5, slow_query_ms=100.0),
        )
        assert SAMPLER.rate == 0.5
        assert SAMPLER.slow_ms == 100.0
        # A second system with a *default* config must not clobber it.
        DiscoverySystem(tiny_lake)
        assert SAMPLER.rate == 0.5
        assert SAMPLER.slow_ms == 100.0

    def test_non_default_config_still_applies(self, tiny_lake, restore_sampler):
        SAMPLER.configure(rate=1.0, slow_ms=None)
        DiscoverySystem(
            tiny_lake,
            DiscoveryConfig(trace_sample_rate=0.25, slow_query_ms=50.0),
        )
        assert SAMPLER.rate == 0.25
        assert SAMPLER.slow_ms == 50.0

    def test_overwrite_warns(self, tiny_lake, restore_sampler, caplog):
        DiscoverySystem(
            tiny_lake,
            DiscoveryConfig(trace_sample_rate=0.5, slow_query_ms=100.0),
        )
        with caplog.at_level(logging.WARNING, logger="repro.core.system"):
            DiscoverySystem(
                tiny_lake,
                DiscoveryConfig(trace_sample_rate=0.25, slow_query_ms=75.0),
            )
        assert any("sampler" in r.message for r in caplog.records)
        assert SAMPLER.rate == 0.25

    def test_reapplying_same_config_does_not_warn(
        self, tiny_lake, restore_sampler, caplog
    ):
        cfg = DiscoveryConfig(trace_sample_rate=0.5, slow_query_ms=100.0)
        DiscoverySystem(tiny_lake, cfg)
        with caplog.at_level(logging.WARNING, logger="repro.core.system"):
            DiscoverySystem(tiny_lake, cfg)
        assert not any("sampler" in r.message for r in caplog.records)
