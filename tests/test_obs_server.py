"""Tests for the stdlib HTTP observability endpoint."""

import json
import re
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, ObservabilityServer


@pytest.fixture()
def server():
    obs.reset()
    obs.METRICS.inc("server.test.requests", 5)
    obs.METRICS.set_gauge("server.test.tables", 7)
    obs.QUERY_LOG.append(
        obs.QueryRecord(engine="keyword", query="demo", k=3, latency_ms=0.8)
    )
    srv = ObservabilityServer(port=0)
    srv.start()
    yield srv
    srv.stop()
    obs.reset()


def get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()


class TestObservabilityServer:
    def test_ephemeral_port_resolved(self, server):
        assert server.port > 0
        assert server.running
        assert server.url.startswith("http://127.0.0.1:")

    def test_metrics_endpoint_serves_prometheus(self, server):
        status, ctype, body = get(server.url + "/metrics")
        assert status == 200
        assert ctype == PROMETHEUS_CONTENT_TYPE
        assert "repro_server_test_requests_total 5" in body
        assert "repro_server_test_tables 7" in body
        for line in body.strip().splitlines():
            assert line.startswith("#") or re.match(
                r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ", line
            ), line

    def test_health_endpoint(self, server):
        status, ctype, body = get(server.url + "/health")
        assert status == 200
        assert ctype.startswith("application/json")
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0
        assert payload["queries_logged"] == 1

    def test_querylog_endpoint(self, server):
        status, _, body = get(server.url + "/querylog")
        assert status == 200
        payload = json.loads(body)
        assert payload["total"] == 1
        assert payload["records"][0]["engine"] == "keyword"
        assert payload["records"][0]["query"] == "demo"

    def test_querylog_n_param(self, server):
        for i in range(5):
            obs.QUERY_LOG.append(
                obs.QueryRecord(engine="keyword", query=f"q{i}", latency_ms=0.1)
            )
        _, _, body = get(server.url + "/querylog?n=2")
        payload = json.loads(body)
        assert len(payload["records"]) == 2
        assert payload["records"][-1]["query"] == "q4"

    def test_querylog_bad_n_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            get(server.url + "/querylog?n=bogus")
        assert exc.value.code == 400

    def test_trace_endpoint_valid_json(self, server):
        status, _, body = get(server.url + "/trace")
        assert status == 200
        assert "traceEvents" in json.loads(body)

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            get(server.url + "/nope")
        assert exc.value.code == 404

    def test_querylog_engine_filter(self, server):
        obs.QUERY_LOG.append(
            obs.QueryRecord(engine="join", query="j1", latency_ms=0.2)
        )
        _, _, body = get(server.url + "/querylog?engine=join")
        payload = json.loads(body)
        assert payload["engine"] == "join"
        assert payload["returned"] == 1
        assert [r["engine"] for r in payload["records"]] == ["join"]
        # Unknown engine filters to nothing rather than erroring.
        _, _, body = get(server.url + "/querylog?engine=nope")
        assert json.loads(body)["records"] == []

    def test_querylog_n_capped_at_capacity(self, server):
        _, _, body = get(
            server.url + f"/querylog?n={obs.QUERY_LOG.capacity * 100}"
        )
        payload = json.loads(body)
        assert payload["returned"] <= obs.QUERY_LOG.capacity

    def test_slo_endpoint_healthy(self, server):
        status, ctype, body = get(server.url + "/slo")
        assert status == 200
        assert ctype.startswith("application/json")
        payload = json.loads(body)
        assert payload["ok"] is True
        assert payload["statuses"]
        assert {s["signal"] for s in payload["statuses"]} == {
            "latency",
            "errors",
        }

    def test_slo_endpoint_reports_breach(self, server):
        for _ in range(20):
            obs.QUERY_LOG.append(
                obs.QueryRecord(
                    engine="join",
                    query="slow",
                    latency_ms=5000.0,
                    status="error",
                    error="TimeoutError",
                )
            )
        payload = json.loads(get(server.url + "/slo")[2])
        assert payload["ok"] is False
        assert any(s["breached"] for s in payload["statuses"])

    def test_slo_endpoint_honors_custom_objectives(self):
        from repro.obs.health import SloObjective

        obs.reset()
        obs.QUERY_LOG.append(
            obs.QueryRecord(engine="join", query="q", latency_ms=50.0)
        )
        slos = (SloObjective("join", p95_ms=1.0, error_rate=None),)
        with ObservabilityServer(port=0, slos=slos) as srv:
            payload = json.loads(get(srv.url + "/slo")[2])
        assert payload["ok"] is False
        obs.reset()

    def test_indexstats_endpoint(self, server):
        from repro.obs.introspect import (
            IndexStatsReport,
            clear_published,
            publish,
        )

        clear_published()
        _, _, body = get(server.url + "/indexstats")
        assert json.loads(body) == {"reports": []}
        publish(
            [
                IndexStatsReport(
                    name="demo",
                    kind="test",
                    items=4,
                    memory_bytes=512,
                    detail={"keys": 4},
                )
            ]
        )
        payload = json.loads(get(server.url + "/indexstats")[2])
        assert payload["reports"][0]["name"] == "demo"
        assert payload["reports"][0]["memory_bytes"] == 512
        clear_published()

    def test_context_manager_stops_server(self):
        with ObservabilityServer(port=0) as srv:
            url = srv.url
            status, _, _ = get(url + "/health")
            assert status == 200
        assert not srv.running
        with pytest.raises(urllib.error.URLError):
            get(url + "/health")
