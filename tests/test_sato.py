"""Tests for Sato-style context-aware type detection."""

import numpy as np

from repro.datalake.generate import make_typed_corpus
from repro.understanding.sato import ColumnOnlyBaseline, SatoTypeDetector


def _split_corpus(seed=0, n_tables=80):
    corpus = make_typed_corpus(
        n_tables=n_tables, cols_per_table=5, ambiguity=0.8, seed=seed
    )
    tables = sorted(corpus.lake, key=lambda t: t.name)
    cut = int(0.7 * len(tables))
    train, test = tables[:cut], tables[cut:]
    labels = {(r.table, r.index): t for r, t in corpus.labels.items()}
    return train, test, labels


def _accuracy(preds, labels, tables):
    keys = [
        (t.name, i) for t in tables for i in range(t.num_cols)
        if (t.name, i) in labels
    ]
    return np.mean([preds[k] == labels[k] for k in keys])


class TestSato:
    def test_predicts_every_column(self):
        train, test, labels = _split_corpus(seed=1, n_tables=30)
        det = SatoTypeDetector(n_epochs=100).fit(train, labels)
        preds = det.predict(test)
        assert len(preds) == sum(t.num_cols for t in test)

    def test_reasonable_accuracy(self):
        train, test, labels = _split_corpus(seed=2)
        det = SatoTypeDetector(n_epochs=150).fit(train, labels)
        acc = _accuracy(det.predict(test), labels, test)
        assert acc >= 0.7

    def test_context_beats_column_only(self):
        """The Sato claim (E7 shape): on ambiguous columns whose values alone
        cannot identify the type, table context lifts accuracy."""
        train, test, labels = _split_corpus(seed=3)
        sato = SatoTypeDetector(n_epochs=300).fit(train, labels)
        base = ColumnOnlyBaseline(n_epochs=300).fit(train, labels)
        acc_sato = _accuracy(sato.predict(test), labels, test)
        acc_base = _accuracy(base.predict(test), labels, test)
        assert acc_sato > acc_base

    def test_single_stage_variant(self):
        train, test, labels = _split_corpus(seed=4, n_tables=24)
        det = SatoTypeDetector(two_stage=False, n_epochs=80).fit(train, labels)
        preds = det.predict(test)
        assert len(preds) > 0

    def test_classes_property(self):
        train, _, labels = _split_corpus(seed=5, n_tables=16)
        det = SatoTypeDetector(n_epochs=30).fit(train, labels)
        assert len(det.classes_) > 1
