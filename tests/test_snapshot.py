"""Snapshot layer: save/load round-trips, and rejection of stale,
mismatched, or corrupt snapshots."""

import json

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.errors import SnapshotError
from repro.core.snapshot import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    PAYLOAD_NAME,
    config_hash,
    lake_fingerprint,
    read_manifest,
)
from repro.core.system import DiscoverySystem
from repro.datalake.lake import DataLake
from repro.datalake.table import ColumnRef, Table
from repro.obs import METRICS


def _config():
    return DiscoveryConfig(embedding_dim=32, num_partitions=4)


@pytest.fixture(scope="module")
def built(union_corpus):
    return DiscoverySystem(
        union_corpus.lake, _config(), ontology=union_corpus.ontology
    ).build()


@pytest.fixture(scope="module")
def snapdir(built, tmp_path_factory):
    directory = tmp_path_factory.mktemp("snapshot")
    built.save(directory)
    return directory


def _queries(corpus, system):
    qname = corpus.groups[0][0]
    ref = ColumnRef(qname, 0)
    table = corpus.lake.table(qname)
    return {
        "keyword": system.keyword_search("group 0", k=5),
        "join": system.joinable_search(ref, k=5),
        "fuzzy": system.fuzzy_joinable_search(ref, k=5),
        "mate": system.multi_attribute_search(table, [0], k=5),
        "tus": system.unionable_search(qname, k=5, method="tus"),
        "santos": system.unionable_search(qname, k=5, method="santos"),
        "starmie": system.unionable_search(qname, k=5, method="starmie"),
    }


class TestRoundTrip:
    def test_identical_results_without_rebuilding(
        self, built, snapdir, union_corpus
    ):
        from repro.search.explain import summarize_results

        loaded = DiscoverySystem.load(snapdir)
        # No pipeline stage ran: the timings are the restored originals.
        assert loaded.stats.stage_seconds == built.stats.stage_seconds
        assert loaded.provenance["source"] == "snapshot"
        want = _queries(union_corpus, built)
        got = _queries(union_corpus, loaded)
        for engine in want:
            assert summarize_results(want[engine]) == summarize_results(
                got[engine]
            ), engine
        assert loaded.navigate("concept_000") == built.navigate("concept_000")

    def test_load_with_matching_lake_and_config(self, snapdir, union_corpus):
        loaded = DiscoverySystem.load(
            snapdir, lake=union_corpus.lake, config=_config()
        )
        assert loaded.lake is union_corpus.lake

    def test_runtime_only_config_fields_do_not_invalidate(
        self, snapdir, union_corpus
    ):
        cfg = _config()
        cfg.build_jobs = 8
        cfg.trace_sample_rate = 0.5
        loaded = DiscoverySystem.load(snapdir, config=cfg)
        assert loaded.provenance["source"] == "snapshot"

    def test_manifest_fields(self, snapdir, built):
        manifest = read_manifest(snapdir)
        assert manifest.format_version == FORMAT_VERSION
        assert manifest.config_hash == config_hash(built.config)
        assert manifest.lake_fingerprint == lake_fingerprint(built.lake)
        assert manifest.tables == built.stats.tables
        assert "union_index" in manifest.stages

    def test_hit_metric_recorded(self, snapdir):
        before = METRICS.snapshot()["counters"].get("snapshot.load.hit", 0)
        DiscoverySystem.load(snapdir)
        after = METRICS.snapshot()["counters"]["snapshot.load.hit"]
        assert after == before + 1

    def test_index_stats_report_snapshot_provenance(self, snapdir):
        loaded = DiscoverySystem.load(snapdir)
        reports = loaded.index_stats()
        assert reports
        for report in reports:
            assert report.provenance["source"] == "snapshot"
            assert "snapshot" in report.render()


class TestRejection:
    def _assert_miss(self, snapdir, **kwargs):
        before = METRICS.snapshot()["counters"].get("snapshot.load.miss", 0)
        with pytest.raises(SnapshotError) as err:
            DiscoverySystem.load(snapdir, **kwargs)
        after = METRICS.snapshot()["counters"]["snapshot.load.miss"]
        assert after == before + 1
        return err.value

    def test_missing_directory(self, tmp_path):
        with pytest.raises(SnapshotError, match="missing"):
            DiscoverySystem.load(tmp_path / "nope")

    def test_stale_lake_refused(self, snapdir, union_corpus):
        changed = DataLake(list(union_corpus.lake))
        changed.add(Table.from_dict("extra", {"x": ["1", "2"]}))
        err = self._assert_miss(snapdir, lake=changed)
        assert "stale" in str(err)

    def test_config_mismatch_refused(self, snapdir):
        err = self._assert_miss(snapdir, config=DiscoveryConfig(num_perm=256))
        assert "config" in str(err)

    def test_future_format_version_refused(self, built, tmp_path):
        d = tmp_path / "snap"
        built.save(d)
        manifest = json.loads((d / MANIFEST_NAME).read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (d / MANIFEST_NAME).write_text(json.dumps(manifest))
        err = self._assert_miss(d)
        assert "format version" in str(err)

    def test_corrupt_payload_refused(self, built, tmp_path):
        d = tmp_path / "snap"
        built.save(d)
        blob = bytearray((d / PAYLOAD_NAME).read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (d / PAYLOAD_NAME).write_bytes(bytes(blob))
        err = self._assert_miss(d)
        assert "corrupt" in str(err)

    def test_truncated_payload_refused(self, built, tmp_path):
        d = tmp_path / "snap"
        built.save(d)
        blob = (d / PAYLOAD_NAME).read_bytes()
        (d / PAYLOAD_NAME).write_bytes(blob[: len(blob) // 2])
        self._assert_miss(d)

    def test_corrupt_manifest_refused(self, built, tmp_path):
        d = tmp_path / "snap"
        built.save(d)
        (d / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotError, match="corrupt"):
            DiscoverySystem.load(d)

    def test_unbuilt_system_cannot_save(self, union_corpus, tmp_path):
        from repro.core.errors import LakeError

        fresh = DiscoverySystem(union_corpus.lake)
        with pytest.raises(LakeError):
            fresh.save(tmp_path / "snap")


class TestFingerprints:
    def test_fingerprint_sensitive_to_values(self):
        a = DataLake([Table.from_dict("t", {"x": ["1", "2"]})])
        b = DataLake([Table.from_dict("t", {"x": ["1", "3"]})])
        assert lake_fingerprint(a) != lake_fingerprint(b)

    def test_fingerprint_stable(self):
        a = DataLake([Table.from_dict("t", {"x": ["1", "2"]})])
        b = DataLake([Table.from_dict("t", {"x": ["1", "2"]})])
        assert lake_fingerprint(a) == lake_fingerprint(b)

    def test_config_hash_ignores_runtime_fields(self):
        a = DiscoveryConfig()
        b = DiscoveryConfig(build_jobs=16, trace_sample_rate=0.1)
        c = DiscoveryConfig(num_perm=256)
        assert config_hash(a) == config_hash(b)
        assert config_hash(a) != config_hash(c)
