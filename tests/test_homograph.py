"""Tests for DomainNet homograph detection."""

import pytest

from repro.bench.metrics import precision_at_k
from repro.datalake.generate import make_homograph_corpus
from repro.graph.homograph import HomographDetector


@pytest.fixture(scope="module")
def corpus():
    return make_homograph_corpus(
        n_tables=40, n_homographs=10, rows_per_table=30, seed=17
    )


class TestDetection:
    def test_homographs_rank_high(self, corpus):
        """The DomainNet claim (E13 shape): injected homographs dominate the
        top of the centrality ranking."""
        detector = HomographDetector(approx_samples=120)
        top = detector.top_homographs(corpus.lake, k=10)
        p10 = precision_at_k([h.value for h in top], corpus.homographs, 10)
        assert p10 >= 0.6

    def test_scores_sorted(self, corpus):
        detector = HomographDetector(approx_samples=60)
        scores = [h.score for h in detector.score_values(corpus.lake)[:50]]
        assert scores == sorted(scores, reverse=True)

    def test_unambiguous_values_rank_low(self, corpus):
        detector = HomographDetector(approx_samples=120)
        ranking = detector.score_values(corpus.lake)
        position = {h.value: i for i, h in enumerate(ranking)}
        homo_ranks = [
            position[v] for v in corpus.homographs if v in position
        ]
        plain_ranks = [
            position[v]
            for v in list(corpus.unambiguous)[:50]
            if v in position
        ]
        if homo_ranks and plain_ranks:
            assert sorted(homo_ranks)[len(homo_ranks) // 2] < sorted(
                plain_ranks
            )[len(plain_ranks) // 2]

    def test_empty_lake(self):
        from repro.datalake.lake import DataLake

        assert HomographDetector().score_values(DataLake()) == []

    def test_graph_bipartite_structure(self, corpus):
        g = HomographDetector().build_graph(corpus.lake)
        kinds = {node[0] for node in g.nodes}
        assert kinds == {"val", "col"}
        for a, b in g.edges:
            assert {a[0], b[0]} == {"val", "col"}
