"""Unit tests for the core table model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import SchemaError
from repro.datalake.table import (
    Column,
    ColumnRef,
    Table,
    TableMetadata,
    is_null,
    normalize_cell,
    tokenize,
)
from repro.datalake.types import DataType


class TestNormalization:
    def test_normalize_strips_and_lowers(self):
        assert normalize_cell("  Hello  World ") == "hello world"

    def test_normalize_collapses_inner_whitespace(self):
        assert normalize_cell("a\t b\n c") == "a b c"

    def test_is_null_variants(self):
        for v in ["", "  ", "NA", "n/a", "NaN", "NULL", "None", "-", "?"]:
            assert is_null(v), v

    def test_non_null_value(self):
        assert not is_null("0")
        assert not is_null("false")

    def test_tokenize_splits_words(self):
        assert tokenize("Hello, World_2!") == ["hello", "world", "2"]

    def test_tokenize_empty(self):
        assert tokenize("...") == []


class TestColumn:
    def test_len_and_repr(self):
        c = Column("x", ["a", "b"])
        assert len(c) == 2
        assert "x" in repr(c)

    def test_value_set_normalizes_and_dedupes(self):
        c = Column("x", ["A", "a ", "b", ""])
        assert c.value_set() == frozenset({"a", "b"})

    def test_non_null_preserves_order(self):
        c = Column("x", ["b", "", "a", "b"])
        assert c.non_null_values() == ["b", "a", "b"]

    def test_null_fraction(self):
        c = Column("x", ["a", "", "NA", "b"])
        assert c.null_fraction() == pytest.approx(0.5)

    def test_null_fraction_empty_column(self):
        assert Column("x", []).null_fraction() == 0.0

    def test_numeric_values_parses_and_nans(self):
        c = Column("x", ["1.5", "oops", ""])
        vals = c.numeric_values()
        assert vals[0] == 1.5
        assert np.isnan(vals[1]) and np.isnan(vals[2])

    def test_dtype_numeric(self):
        assert Column("x", ["1", "2", "3"]).dtype is DataType.INTEGER

    def test_is_numeric_flag(self):
        assert Column("x", ["1.5", "2.5"]).is_numeric
        assert not Column("x", ["a", "b"]).is_numeric

    def test_tokens_flatten_cells(self):
        c = Column("x", ["red car", "blue car"])
        assert c.tokens() == ["red", "car", "blue", "car"]

    def test_distinct_count(self):
        assert Column("x", ["a", "a", "b"]).distinct_count() == 2


class TestTable:
    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", ["1"]), Column("b", ["1", "2"])])

    def test_from_rows_round_trip(self):
        t = Table.from_rows("t", ["a", "b"], [["1", "x"], ["2", "y"]])
        assert t.num_rows == 2
        assert t.rows() == [["1", "x"], ["2", "y"]]

    def test_from_rows_width_mismatch(self):
        with pytest.raises(SchemaError):
            Table.from_rows("t", ["a", "b"], [["only-one"]])

    def test_from_dict(self, tiny_table):
        assert tiny_table.header == ["city", "country", "population"]
        assert tiny_table.num_rows == 4

    def test_column_by_name_and_index(self, tiny_table):
        assert tiny_table.column("city") is tiny_table.column(0)

    def test_column_missing_raises(self, tiny_table):
        with pytest.raises(KeyError):
            tiny_table.column("nope")

    def test_column_index(self, tiny_table):
        assert tiny_table.column_index("country") == 1
        with pytest.raises(KeyError):
            tiny_table.column_index("nope")

    def test_row_access(self, tiny_table):
        assert tiny_table.row(0) == ["Oslo", "Norway", "700000"]

    def test_project(self, tiny_table):
        p = tiny_table.project(["city"], name="proj")
        assert p.name == "proj"
        assert p.num_cols == 1

    def test_text_and_numeric_split(self, tiny_table):
        text = [i for i, _ in tiny_table.text_columns()]
        nums = [i for i, _ in tiny_table.numeric_columns()]
        assert text == [0, 1]
        assert nums == [2]

    def test_empty_table(self):
        t = Table("empty", [])
        assert t.num_rows == 0 and t.num_cols == 0

    def test_metadata_text(self):
        m = TableMetadata(title="a", description="b", tags=["c", "d"])
        for part in ("a", "b", "c", "d"):
            assert part in m.text()


class TestColumnRef:
    def test_str(self):
        assert str(ColumnRef("t", 3)) == "t[3]"

    def test_hashable_and_eq(self):
        assert ColumnRef("t", 1) == ColumnRef("t", 1)
        assert len({ColumnRef("t", 1), ColumnRef("t", 1)}) == 1


@given(
    st.lists(
        st.lists(st.text(alphabet=st.characters(codec="utf-8"), max_size=8),
                 min_size=2, max_size=2),
        min_size=1,
        max_size=20,
    )
)
def test_from_rows_any_cells_round_trips(rows):
    """Property: building from row-major cells preserves every cell."""
    t = Table.from_rows("t", ["a", "b"], rows)
    assert t.rows() == [[str(c) for c in r] for r in rows]
