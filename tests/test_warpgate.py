"""Tests for WarpGate semantic join discovery."""

import pytest

from repro.datalake.table import Column
from repro.search.warpgate import WarpGateConfig, WarpGateJoinDiscovery


@pytest.fixture(scope="module")
def warpgate(union_corpus, union_space):
    return WarpGateJoinDiscovery(union_corpus.lake, union_space).build()


class TestWarpGate:
    def test_build_required(self, union_corpus, union_space):
        wg = WarpGateJoinDiscovery(union_corpus.lake, union_space)
        with pytest.raises(RuntimeError):
            wg.search(Column("q", ["x"]))

    def test_finds_same_domain_columns(self, union_corpus, warpgate):
        qname = union_corpus.groups[0][0]
        qcol = union_corpus.lake.table(qname).columns[0]
        res = warpgate.search(qcol, k=5, exclude_table=qname)
        assert res
        onto = union_corpus.ontology
        q_cls = onto.annotate_column(qcol.non_null_values())
        top_col = union_corpus.lake.column(res[0].ref)
        assert onto.annotate_column(top_col.non_null_values()) == q_cls

    def test_semantic_beats_zero_overlap(self, union_corpus, warpgate):
        """Columns from the same domain with no shared values still rank."""
        qname = union_corpus.groups[1][0]
        qcol = union_corpus.lake.table(qname).columns[0]
        res = warpgate.search(qcol, k=8, exclude_table=qname)
        qset = qcol.value_set()
        semantic_only = [
            r for r in res
            if not (qset & union_corpus.lake.column(r.ref).value_set())
        ]
        # At least the scores are meaningful for overlap-free hits if any.
        for r in semantic_only:
            assert r.score > 0

    def test_oov_query_empty(self, warpgate):
        res = warpgate.search(Column("q", ["totally-unknown-value"]))
        assert res == []

    def test_exclude_table(self, union_corpus, warpgate):
        qname = union_corpus.groups[0][0]
        qcol = union_corpus.lake.table(qname).columns[0]
        res = warpgate.search(qcol, k=10, exclude_table=qname)
        assert all(r.ref.table != qname for r in res)

    def test_overlap_weight_blends(self, union_corpus, union_space):
        pure = WarpGateJoinDiscovery(
            union_corpus.lake,
            union_space,
            WarpGateConfig(overlap_weight=0.0),
        ).build()
        blended = WarpGateJoinDiscovery(
            union_corpus.lake,
            union_space,
            WarpGateConfig(overlap_weight=0.9),
        ).build()
        qname = union_corpus.groups[0][0]
        qcol = union_corpus.lake.table(qname).columns[0]
        r_pure = pure.search(qcol, k=5, exclude_table=qname)
        r_blend = blended.search(qcol, k=5, exclude_table=qname)
        assert r_pure and r_blend
