"""Tests for Juneau-style data profiles."""

import pytest

from repro.datalake.table import Column, Table
from repro.datalake.types import DataType
from repro.understanding.profiles import ColumnProfile, TableProfile


class TestColumnProfile:
    def test_text_profile_fields(self):
        p = ColumnProfile.from_column(Column("c", ["abc", "de", "abc", ""]))
        assert p.dtype is DataType.TEXT
        assert p.row_count == 4
        assert p.distinct_count == 2
        assert p.null_fraction == pytest.approx(0.25)
        assert p.minhash is not None

    def test_numeric_profile_fields(self):
        p = ColumnProfile.from_column(Column("n", ["1", "2", "3"]))
        assert p.dtype is DataType.INTEGER
        assert p.minhash is None
        assert p.numeric_mean == pytest.approx(2.0)

    def test_same_content_similarity_one(self):
        a = ColumnProfile.from_column(Column("a", ["x", "y", "z"] * 5))
        b = ColumnProfile.from_column(Column("b", ["z", "x", "y"] * 3))
        assert a.similarity(b) > 0.9

    def test_disjoint_text_low_similarity(self):
        a = ColumnProfile.from_column(Column("a", [f"a{i}" for i in range(20)]))
        b = ColumnProfile.from_column(Column("b", [f"b{i}" for i in range(20)]))
        assert a.similarity(b) < 0.5

    def test_numeric_similarity_by_distribution(self):
        a = ColumnProfile.from_column(Column("a", ["10", "11", "12", "13"]))
        near = ColumnProfile.from_column(Column("b", ["11", "12", "13", "14"]))
        far = ColumnProfile.from_column(Column("c", ["1000", "1100", "1200", "900"]))
        assert a.similarity(near) > a.similarity(far)

    def test_mixed_types_zero(self):
        text = ColumnProfile.from_column(Column("t", ["abc", "def"]))
        num = ColumnProfile.from_column(Column("n", ["1", "2"]))
        assert text.similarity(num) == 0.0


class TestTableProfile:
    def test_self_relatedness_high(self):
        t = Table.from_dict(
            "t", {"a": ["x", "y", "z"], "n": ["1", "2", "3"]}
        )
        p = TableProfile.from_table(t)
        assert p.relatedness(p) > 0.9

    def test_related_tables_score_higher(self):
        base = Table.from_dict(
            "base", {"city": ["oslo", "rome", "lima"], "v": ["1", "2", "3"]}
        )
        related = Table.from_dict(
            "rel", {"place": ["rome", "lima", "cairo"], "w": ["2", "3", "4"]}
        )
        unrelated = Table.from_dict(
            "far", {"gene": ["brca1", "tp53"], "score": ["900", "800"]}
        )
        pb = TableProfile.from_table(base)
        assert pb.relatedness(TableProfile.from_table(related)) > pb.relatedness(
            TableProfile.from_table(unrelated)
        )

    def test_empty_table_zero(self):
        empty = TableProfile.from_table(Table("e", []))
        other = TableProfile.from_table(
            Table.from_dict("o", {"a": ["x"]})
        )
        assert empty.relatedness(other) == 0.0

    def test_normalization_by_smaller_width(self):
        narrow = Table.from_dict("n", {"a": ["x", "y"]})
        wide = Table.from_dict(
            "w", {"a": ["x", "y"], "b": ["p", "q"], "c": ["1", "2"]}
        )
        pn = TableProfile.from_table(narrow)
        pw = TableProfile.from_table(wide)
        assert 0.0 <= pn.relatedness(pw) <= 1.0
