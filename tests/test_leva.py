"""Tests for Leva-style lake graph embeddings."""

import numpy as np
import pytest

from repro.apps.leva import LakeGraphEmbedding
from repro.apps.ml import RidgeRegression, train_test_split
from repro.datalake.lake import DataLake
from repro.datalake.table import Column, Table


@pytest.fixture(scope="module")
def lake():
    """Entities of two latent groups appearing across several tables; group
    membership is only visible through relational co-occurrence."""
    import random

    rng = random.Random(3)
    group_a = [f"a{i:02d}" for i in range(20)]
    group_b = [f"b{i:02d}" for i in range(20)]
    tables = []
    for t in range(8):
        members = group_a if t % 2 == 0 else group_b
        rows = [rng.choice(members) for _ in range(25)]
        partners = [rng.choice(members) for _ in range(25)]
        tables.append(
            Table.from_dict(
                f"t{t}", {"entity": rows, "partner": partners}
            )
        )
    return DataLake(tables), group_a, group_b


@pytest.fixture(scope="module")
def embedding(lake):
    lake_obj, _, _ = lake
    return LakeGraphEmbedding(dim=16, seed=3).fit(lake_obj)


class TestEmbedding:
    def test_vectors_unit_norm(self, embedding, lake):
        _, group_a, _ = lake
        v = embedding.entity_vector(group_a[0])
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-6)

    def test_unseen_entity_zero(self, embedding):
        assert np.allclose(embedding.entity_vector("never-seen"), 0.0)

    def test_group_structure_recovered(self, embedding, lake):
        """Entities co-occurring in the same tables embed closer than
        entities from the other group — the Leva signal."""
        _, group_a, group_b = lake
        a0 = embedding.entity_vector(group_a[0])
        intra = np.mean(
            [float(a0 @ embedding.entity_vector(a)) for a in group_a[1:6]]
        )
        inter = np.mean(
            [float(a0 @ embedding.entity_vector(b)) for b in group_b[:5]]
        )
        assert intra > inter

    def test_column_vectors_exist(self, embedding):
        v = embedding.column_vector("t0", 0)
        assert v.shape == (16,)
        assert np.linalg.norm(v) > 0

    def test_featurize_shape(self, embedding, lake):
        _, group_a, _ = lake
        x = embedding.featurize_entities(group_a[:7])
        assert x.shape == (7, 16)

    def test_tiny_lake_graceful(self):
        tiny = DataLake([Table("t", [Column("c", ["x"])])])
        emb = LakeGraphEmbedding(dim=8).fit(tiny)
        assert np.allclose(emb.entity_vector("x"), 0.0)


class TestDownstreamGain:
    def test_embeddings_beat_no_features(self, embedding, lake):
        """A regression target defined by latent group membership is
        learnable from Leva embeddings alone."""
        _, group_a, group_b = lake
        entities = group_a + group_b
        y = np.array([1.0] * len(group_a) + [-1.0] * len(group_b))
        x = embedding.featurize_entities(entities)
        xtr, xte, ytr, yte = train_test_split(x, y, seed=3)
        r2 = RidgeRegression(alpha=0.1).fit(xtr, ytr).score(xte, yte)
        assert r2 > 0.5
