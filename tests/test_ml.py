"""Tests for the numpy learners."""

import numpy as np
import pytest

from repro.apps.ml import LogisticRegression, RidgeRegression, train_test_split


class TestRidge:
    def test_recovers_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + 3.0
        model = RidgeRegression(alpha=1e-6).fit(x, y)
        assert model.coef_ == pytest.approx([1.0, -2.0, 0.5], abs=1e-3)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-3)

    def test_r2_perfect_fit(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 2))
        y = x @ np.array([2.0, 1.0])
        model = RidgeRegression(alpha=1e-8).fit(x, y)
        assert model.score(x, y) == pytest.approx(1.0, abs=1e-6)

    def test_r2_noise_low(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        model = RidgeRegression().fit(x, y)
        assert model.score(x, y) < 0.3

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((1, 2)))

    def test_regularization_shrinks_coefficients(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(50, 2))
        y = x @ np.array([5.0, -5.0])
        small = RidgeRegression(alpha=1e-6).fit(x, y)
        large = RidgeRegression(alpha=1e3).fit(x, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)


class TestLogistic:
    def test_separable_data(self):
        rng = np.random.default_rng(4)
        x = np.vstack([rng.normal(-2, 1, (50, 2)), rng.normal(2, 1, (50, 2))])
        y = np.array([0] * 50 + [1] * 50)
        model = LogisticRegression(n_epochs=400).fit(x, y)
        assert model.accuracy(x, y) >= 0.95

    def test_proba_in_unit_interval(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(30, 2))
        y = (x[:, 0] > 0).astype(int)
        model = LogisticRegression(n_epochs=50).fit(x, y)
        p = model.predict_proba(x)
        assert np.all((p >= 0) & (p <= 1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))


class TestSplit:
    def test_sizes(self):
        x = np.arange(100).reshape(-1, 1)
        y = np.arange(100)
        xtr, xte, ytr, yte = train_test_split(x, y, test_fraction=0.3)
        assert len(xtr) == 70 and len(xte) == 30

    def test_deterministic(self):
        x = np.arange(50).reshape(-1, 1)
        y = np.arange(50)
        a = train_test_split(x, y, seed=7)
        b = train_test_split(x, y, seed=7)
        assert np.array_equal(a[0], b[0])

    def test_partition_is_complete(self):
        x = np.arange(20).reshape(-1, 1)
        y = np.arange(20)
        xtr, xte, _, _ = train_test_split(x, y)
        seen = sorted(np.concatenate([xtr, xte]).ravel().tolist())
        assert seen == list(range(20))
