"""Shared fixtures: small deterministic corpora reused across test modules.

Corpus fixtures are session-scoped (generation and index builds dominate
test time); tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.datalake.generate import (
    make_join_corpus,
    make_union_corpus,
)
from repro.datalake.lake import DataLake
from repro.datalake.table import Column, Table, TableMetadata
from repro.understanding.embedding import train_embeddings


@pytest.fixture
def tiny_table() -> Table:
    return Table.from_dict(
        "cities",
        {
            "city": ["Oslo", "Rome", "Lima", "Oslo"],
            "country": ["Norway", "Italy", "Peru", "Norway"],
            "population": ["700000", "2800000", "9700000", "700000"],
        },
        TableMetadata(title="world cities", tags=["geo"]),
    )


@pytest.fixture
def tiny_lake(tiny_table) -> DataLake:
    other = Table.from_dict(
        "capitals",
        {
            "capital": ["Oslo", "Rome", "Madrid"],
            "continent": ["Europe", "Europe", "Europe"],
        },
    )
    numbers = Table.from_dict(
        "metrics",
        {"id": ["a", "b", "c"], "value": ["1.5", "2.5", "3.5"]},
    )
    return DataLake([tiny_table, other, numbers])


@pytest.fixture(scope="session")
def join_corpus():
    return make_join_corpus(n_tables=60, n_queries=4, base_size=800, seed=11)


@pytest.fixture(scope="session")
def union_corpus():
    return make_union_corpus(
        n_groups=4, tables_per_group=4, rows_per_table=40, seed=11
    )


@pytest.fixture(scope="session")
def union_space(union_corpus):
    return train_embeddings(union_corpus.lake, dim=32, seed=11)


def make_column(name: str, values: list[str]) -> Column:
    return Column(name, values)
