"""Unit tests for LSH Ensemble containment search."""

import random

import pytest

from repro.core.errors import IndexError_
from repro.sketch.lshensemble import LSHEnsemble, containment_to_jaccard
from repro.sketch.minhash import MinHash, exact_containment


def _build_population(seed=0, n=60):
    """Indexed sets with skewed sizes plus a fixed query set."""
    rng = random.Random(seed)
    query = {f"q{i}" for i in range(100)}
    sets = {}
    for i in range(n):
        size = int(20 * (1.35 ** (i % 20)))  # skewed cardinalities
        own = {f"s{i}_{j}" for j in range(size)}
        overlap = set(rng.sample(sorted(query), rng.randint(0, 100)))
        sets[f"set{i:03d}"] = own | overlap
    return query, sets


class TestConversion:
    def test_bounds(self):
        assert containment_to_jaccard(0.0, 100, 100) == 0.0
        assert containment_to_jaccard(1.0, 100, 100) == pytest.approx(1.0)

    def test_monotone_in_threshold(self):
        js = [containment_to_jaccard(t / 10, 100, 500) for t in range(11)]
        assert js == sorted(js)

    def test_larger_candidates_need_smaller_jaccard(self):
        j_small = containment_to_jaccard(0.5, 100, 100)
        j_large = containment_to_jaccard(0.5, 100, 10000)
        assert j_large < j_small

    def test_zero_query(self):
        assert containment_to_jaccard(0.5, 0, 100) == 0.0


class TestIndexLifecycle:
    def test_query_before_index_rejected(self):
        ens = LSHEnsemble()
        with pytest.raises(IndexError_):
            ens.query(MinHash(), 10, 0.5)

    def test_double_index_rejected(self):
        ens = LSHEnsemble(num_partitions=2)
        entries = [("a", MinHash.from_values(["x"]), 1)]
        ens.index(entries)
        with pytest.raises(IndexError_):
            ens.index(entries)

    def test_empty_index_rejected(self):
        with pytest.raises(IndexError_):
            LSHEnsemble().index([])

    def test_bad_partitions_rejected(self):
        with pytest.raises(IndexError_):
            LSHEnsemble(num_partitions=0)


class TestRecallPrecision:
    def test_high_recall_at_threshold(self):
        query, sets = _build_population()
        ens = LSHEnsemble(num_partitions=8)
        ens.index(
            [
                (k, MinHash.from_values(s), len(s))
                for k, s in sorted(sets.items())
            ]
        )
        qmh = MinHash.from_values(query)
        threshold = 0.5
        truth = {
            k for k, s in sets.items() if exact_containment(query, s) >= threshold
        }
        found = set(ens.query(qmh, len(query), threshold))
        recall = len(found & truth) / max(len(truth), 1)
        assert recall >= 0.9

    def test_verified_results_sorted_and_thresholded(self):
        query, sets = _build_population(seed=1)
        ens = LSHEnsemble(num_partitions=4)
        ens.index(
            [(k, MinHash.from_values(s), len(s)) for k, s in sorted(sets.items())]
        )
        qmh = MinHash.from_values(query)
        hits = ens.query_verified(qmh, len(query), 0.5)
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)
        assert all(s >= 0.5 for s in scores)

    def test_more_partitions_fewer_candidates(self):
        """The LSH Ensemble headline: partitioning by cardinality prunes
        false positives relative to a single-partition index."""
        query, sets = _build_population(seed=2, n=80)
        entries = [
            (k, MinHash.from_values(s), len(s)) for k, s in sorted(sets.items())
        ]
        qmh = MinHash.from_values(query)
        sizes = []
        for parts in (1, 16):
            ens = LSHEnsemble(num_partitions=parts)
            ens.index(list(entries))
            sizes.append(len(ens.query(qmh, len(query), 0.7)))
        assert sizes[1] <= sizes[0]

    def test_superset_always_candidate(self):
        query = {f"q{i}" for i in range(50)}
        superset = query | {f"extra{i}" for i in range(200)}
        ens = LSHEnsemble(num_partitions=2)
        ens.index(
            [
                ("sup", MinHash.from_values(superset), len(superset)),
                ("junk", MinHash.from_values({f"z{i}" for i in range(30)}), 30),
            ]
        )
        found = ens.query(MinHash.from_values(query), len(query), 0.8)
        assert "sup" in found
