"""Tests for index introspection: deep_sizeof, distributions, system stats."""

import numpy as np
import pytest

from repro import obs
from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.obs.introspect import (
    IndexStatsReport,
    clear_published,
    deep_sizeof,
    publish,
    published,
    summarize_distribution,
)


class TestDeepSizeof:
    def test_container_larger_than_empty(self):
        assert deep_sizeof({"a": [1, 2, 3]}) > deep_sizeof({})
        assert deep_sizeof(["x" * 100]) > deep_sizeof([])

    def test_numpy_counts_buffer(self):
        arr = np.zeros(10_000, dtype=np.float64)
        assert deep_sizeof(arr) >= arr.nbytes

    def test_shared_object_counted_once(self):
        shared = ["payload" * 50]
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared])

    def test_object_with_dict_and_slots(self):
        class Slotted:
            __slots__ = ("a", "b")

            def __init__(self):
                self.a = list(range(100))
                self.b = "y" * 200

        class Plain:
            def __init__(self):
                self.payload = list(range(100))

        assert deep_sizeof(Slotted()) > deep_sizeof(list(range(100)))
        assert deep_sizeof(Plain()) > deep_sizeof(list(range(100)))

    def test_self_referencing_terminates(self):
        loop = []
        loop.append(loop)
        assert deep_sizeof(loop) > 0


class TestSummarizeDistribution:
    def test_empty(self):
        out = summarize_distribution([])
        assert out["count"] == 0

    def test_summary_fields(self):
        out = summarize_distribution([1, 2, 3, 4, 100])
        assert out["count"] == 5
        assert out["total"] == 110
        assert out["min"] == 1
        assert out["max"] == 100
        assert out["p50"] == 3
        assert out["mean"] == pytest.approx(22.0)


class TestPublishRegistry:
    def test_publish_and_read_back(self):
        clear_published()
        report = IndexStatsReport(
            name="demo", kind="test", items=3, memory_bytes=128, detail={"k": 1}
        )
        publish([report])
        assert [r.name for r in published()] == ["demo"]
        clear_published()
        assert published() == []

    def test_report_to_dict_and_render(self):
        report = IndexStatsReport(
            name="demo",
            kind="test",
            items=3,
            memory_bytes=2048,
            detail={"posting_list_len": {"count": 3, "p95": 7}},
        )
        d = report.to_dict()
        assert d["name"] == "demo"
        assert d["memory_bytes"] == 2048
        text = report.render()
        assert "demo" in text and "test" in text


class TestSystemIndexStats:
    @pytest.fixture(scope="class")
    def system(self, union_corpus):
        obs.reset()
        config = DiscoveryConfig(embedding_dim=16, num_partitions=4)
        return DiscoverySystem(union_corpus.lake, config).build()

    def test_every_built_index_reports(self, system):
        reports = system.index_stats()
        names = {r.name for r in reports}
        # Every index built by the default pipeline shows up.
        assert {
            "keyword",
            "josie",
            "lshensemble",
            "jaccard_lsh",
            "tus",
            "starmie",
            "pexeso",
            "mate",
            "qcr",
            "organization",
        } <= names
        for r in reports:
            assert r.memory_bytes > 0, r.name
            assert r.items >= 0, r.name
            assert r.detail, r.name

    def test_distribution_stats_present(self, system):
        by_name = {r.name: r for r in system.index_stats()}
        josie = by_name["josie"]
        assert josie.detail["posting_list_len"]["count"] > 0
        keyword = by_name["keyword"]
        assert keyword.detail["vocabulary"] > 0

    def test_gauges_and_publication(self, system):
        clear_published()
        reports = system.index_stats()
        assert [r.name for r in published()] == [r.name for r in reports]
        snapshot = obs.METRICS.snapshot()
        gauges = snapshot["gauges"]
        assert gauges["index.keyword.items"] > 0
        assert gauges["index.josie.memory_bytes"] > 0
