"""Tests for the structured query log: ring buffer, JSONL sink, integration."""

import json

import pytest

from repro import obs
from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.lake import ColumnRef
from repro.obs.querylog import QueryLog, QueryRecord


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.QUERY_LOG.configure(capacity=1024, sink="")
    obs.reset()


class TestRing:
    def test_capacity_bounds_records(self):
        log = QueryLog(capacity=3)
        for i in range(10):
            log.append(QueryRecord(engine="e", query=f"q{i}", latency_ms=0.1))
        assert len(log.records()) == 3
        assert [r.query for r in log.records()] == ["q7", "q8", "q9"]
        assert log.total == 10

    def test_tail(self):
        log = QueryLog()
        for i in range(5):
            log.append(QueryRecord(engine="e", query=f"q{i}", latency_ms=0.1))
        assert [r.query for r in log.tail(2)] == ["q3", "q4"]

    def test_append_stamps_timestamp(self):
        log = QueryLog()
        log.append(QueryRecord(engine="e", query="q", latency_ms=0.1))
        assert log.records()[0].ts > 0

    def test_to_dicts_and_jsonl(self):
        log = QueryLog()
        log.append(
            QueryRecord(
                engine="josie",
                query="t[0]",
                k=5,
                latency_ms=1.25,
                results=[("other", 0.5)],
                funnel={"candidates": 10, "returned": 1},
            )
        )
        (d,) = log.to_dicts()
        assert d["engine"] == "josie"
        assert d["funnel"]["candidates"] == 10
        line = log.to_jsonl().strip()
        assert json.loads(line)["results"] == [["other", 0.5]]

    def test_configure_reshapes_capacity(self):
        log = QueryLog(capacity=8)
        for i in range(8):
            log.append(QueryRecord(engine="e", query=f"q{i}", latency_ms=0.1))
        log.configure(capacity=2)
        assert len(log.records()) == 2
        assert log.capacity == 2

    def test_jsonl_sink(self, tmp_path):
        sink = tmp_path / "queries.jsonl"
        log = QueryLog()
        log.configure(sink=str(sink))
        log.append(QueryRecord(engine="e", query="a", latency_ms=0.1))
        log.append(QueryRecord(engine="e", query="b", latency_ms=0.2))
        lines = sink.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["query"] == "b"
        log.configure(sink="")
        log.append(QueryRecord(engine="e", query="c", latency_ms=0.3))
        assert len(sink.read_text().strip().splitlines()) == 2


class TestSystemIntegration:
    @pytest.fixture(scope="class")
    def system(self, union_corpus):
        config = DiscoveryConfig(embedding_dim=16, num_partitions=4)
        return DiscoverySystem(union_corpus.lake, config).build()

    def test_queries_are_logged_with_funnel(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        system.keyword_search("concept", k=3)
        system.joinable_search(ColumnRef(qname, 0), k=3)
        records = obs.QUERY_LOG.records()
        engines = [r.engine for r in records]
        assert engines == ["keyword", "join"]
        for r in records:
            assert r.status == "ok"
            assert r.latency_ms >= 0
            assert r.query
        # explain=True enriches the log with the funnel
        system.joinable_search(ColumnRef(qname, 0), k=3, explain=True)
        last = obs.QUERY_LOG.records()[-1]
        assert last.funnel and "returned" in last.funnel

    def test_failed_query_logged_as_error(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        with pytest.raises(ValueError):
            system.joinable_search(ColumnRef(qname, 0), method="bogus")
        last = obs.QUERY_LOG.records()[-1]
        assert last.status == "error"
        assert last.error == "ValueError"

    def test_report_includes_querylog(self, system):
        system.keyword_search("concept")
        out = obs.report()
        assert out["querylog"]
        assert out["querylog"][-1]["engine"] == "keyword"
