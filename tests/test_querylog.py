"""Tests for the structured query log: ring buffer, JSONL sink, integration."""

import json

import pytest

from repro import obs
from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.lake import ColumnRef
from repro.obs.querylog import QueryLog, QueryRecord


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.QUERY_LOG.configure(capacity=1024, sink="")
    obs.reset()


class TestRing:
    def test_capacity_bounds_records(self):
        log = QueryLog(capacity=3)
        for i in range(10):
            log.append(QueryRecord(engine="e", query=f"q{i}", latency_ms=0.1))
        assert len(log.records()) == 3
        assert [r.query for r in log.records()] == ["q7", "q8", "q9"]
        assert log.total == 10

    def test_tail(self):
        log = QueryLog()
        for i in range(5):
            log.append(QueryRecord(engine="e", query=f"q{i}", latency_ms=0.1))
        assert [r.query for r in log.tail(2)] == ["q3", "q4"]

    def test_append_stamps_timestamp(self):
        log = QueryLog()
        log.append(QueryRecord(engine="e", query="q", latency_ms=0.1))
        assert log.records()[0].ts > 0

    def test_to_dicts_and_jsonl(self):
        log = QueryLog()
        log.append(
            QueryRecord(
                engine="josie",
                query="t[0]",
                k=5,
                latency_ms=1.25,
                results=[("other", 0.5)],
                funnel={"candidates": 10, "returned": 1},
            )
        )
        (d,) = log.to_dicts()
        assert d["engine"] == "josie"
        assert d["funnel"]["candidates"] == 10
        line = log.to_jsonl().strip()
        assert json.loads(line)["results"] == [["other", 0.5]]

    def test_configure_reshapes_capacity(self):
        log = QueryLog(capacity=8)
        for i in range(8):
            log.append(QueryRecord(engine="e", query=f"q{i}", latency_ms=0.1))
        log.configure(capacity=2)
        assert len(log.records()) == 2
        assert log.capacity == 2

    def test_jsonl_sink(self, tmp_path):
        sink = tmp_path / "queries.jsonl"
        log = QueryLog()
        log.configure(sink=str(sink))
        log.append(QueryRecord(engine="e", query="a", latency_ms=0.1))
        log.append(QueryRecord(engine="e", query="b", latency_ms=0.2))
        lines = sink.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["query"] == "b"
        log.configure(sink="")
        log.append(QueryRecord(engine="e", query="c", latency_ms=0.3))
        assert len(sink.read_text().strip().splitlines()) == 2


class TestResourceFields:
    def test_to_dict_includes_cpu_and_memory(self):
        rec = QueryRecord(
            engine="join",
            query="q",
            latency_ms=1.0,
            cpu_ms=0.75,
            mem_peak_kb=128.5,
            funnel={"candidates": 10, "returned": 3},
        )
        d = rec.to_dict()
        assert d["cpu_ms"] == 0.75
        assert d["mem_peak_kb"] == 128.5
        assert d["funnel_total"] == 13
        # Memory accounting is opt-in: no key when it was off.
        assert "mem_peak_kb" not in QueryRecord(
            engine="e", query="q", latency_ms=0.1
        ).to_dict()

    def test_from_dict_round_trip(self):
        rec = QueryRecord(
            engine="join",
            query="q",
            k=5,
            latency_ms=2.5,
            cpu_ms=1.25,
            mem_peak_kb=64.0,
            status="error",
            error="ValueError",
        )
        back = QueryRecord.from_dict(rec.to_dict())
        assert back.engine == rec.engine
        assert back.cpu_ms == rec.cpu_ms
        assert back.mem_peak_kb == rec.mem_peak_kb
        assert back.error == "ValueError"

    def test_from_dict_tolerates_old_records(self):
        # Records serialized before cpu/mem fields existed still load.
        back = QueryRecord.from_dict(
            {"engine": "keyword", "query": "q", "latency_ms": 3.0}
        )
        assert back.cpu_ms == 0.0
        assert back.mem_peak_kb is None

    def test_load_jsonl(self, tmp_path):
        from repro.obs.querylog import load_jsonl

        sink = tmp_path / "q.jsonl"
        log = QueryLog()
        log.configure(sink=str(sink))
        log.append(QueryRecord(engine="join", query="a", latency_ms=0.1))
        log.append(QueryRecord(engine="keyword", query="b", latency_ms=0.2))
        records = load_jsonl(str(sink))
        assert [r.engine for r in records] == ["join", "keyword"]


class TestEngineFilter:
    def make_log(self):
        log = QueryLog()
        for i in range(4):
            log.append(QueryRecord(engine="join", query=f"j{i}", latency_ms=0.1))
        for i in range(2):
            log.append(
                QueryRecord(engine="keyword", query=f"k{i}", latency_ms=0.1)
            )
        return log

    def test_records_and_tail_filter(self):
        log = self.make_log()
        assert len(log.records(engine="join")) == 4
        assert [r.query for r in log.tail(1, engine="keyword")] == ["k1"]
        assert log.records(engine="nope") == []

    def test_engines_enumeration(self):
        assert self.make_log().engines() == ["join", "keyword"]

    def test_to_dicts_filter(self):
        dicts = self.make_log().to_dicts(engine="keyword")
        assert [d["query"] for d in dicts] == ["k0", "k1"]


class TestReset:
    def test_obs_reset_clears_query_log(self):
        """Satellite regression: reset() must clear the ring, not just
        metrics and traces."""
        obs.QUERY_LOG.append(
            QueryRecord(engine="e", query="stale", latency_ms=0.1)
        )
        assert obs.QUERY_LOG.total == 1
        obs.reset()
        assert obs.QUERY_LOG.total == 0
        assert obs.QUERY_LOG.records() == []


class TestSystemIntegration:
    @pytest.fixture(scope="class")
    def system(self, union_corpus):
        config = DiscoveryConfig(embedding_dim=16, num_partitions=4)
        return DiscoverySystem(union_corpus.lake, config).build()

    def test_queries_are_logged_with_funnel(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        system.keyword_search("concept", k=3)
        system.joinable_search(ColumnRef(qname, 0), k=3)
        records = obs.QUERY_LOG.records()
        engines = [r.engine for r in records]
        assert engines == ["keyword", "join"]
        for r in records:
            assert r.status == "ok"
            assert r.latency_ms >= 0
            assert r.query
        # explain=True enriches the log with the funnel
        system.joinable_search(ColumnRef(qname, 0), k=3, explain=True)
        last = obs.QUERY_LOG.records()[-1]
        assert last.funnel and "returned" in last.funnel

    def test_failed_query_logged_as_error(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        with pytest.raises(ValueError):
            system.joinable_search(ColumnRef(qname, 0), method="bogus")
        last = obs.QUERY_LOG.records()[-1]
        assert last.status == "error"
        assert last.error == "ValueError"

    def test_cpu_time_recorded(self, system):
        system.keyword_search("concept", k=3)
        last = obs.QUERY_LOG.records()[-1]
        assert last.cpu_ms >= 0
        assert last.cpu_ms <= last.latency_ms * 10  # sanity: same magnitude
        assert "cpu_ms" in last.to_dict()

    def test_memory_accounting_opt_in(self, system):
        try:
            assert not obs.memory_accounting_enabled()
            system.keyword_search("concept", k=3)
            assert obs.QUERY_LOG.records()[-1].mem_peak_kb is None
            obs.enable_memory_accounting()
            assert obs.memory_accounting_enabled()
            system.keyword_search("concept", k=3)
            peak = obs.QUERY_LOG.records()[-1].mem_peak_kb
            assert peak is not None and peak >= 0
        finally:
            obs.disable_memory_accounting()
        assert not obs.memory_accounting_enabled()

    def test_report_includes_querylog(self, system):
        system.keyword_search("concept")
        out = obs.report()
        assert out["querylog"]
        assert out["querylog"][-1]["engine"] == "keyword"
