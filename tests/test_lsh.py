"""Unit + property tests for the banded MinHash LSH index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.sketch.lsh import MinHashLSH, collision_probability, optimal_bands
from repro.sketch.minhash import MinHash


class TestCollisionProbability:
    def test_monotone_in_similarity(self):
        ps = [collision_probability(j / 10, 16, 8) for j in range(11)]
        assert ps == sorted(ps)

    def test_extremes(self):
        assert collision_probability(0.0, 16, 8) == 0.0
        assert collision_probability(1.0, 16, 8) == 1.0

    def test_more_bands_more_collisions(self):
        assert collision_probability(0.5, 32, 4) > collision_probability(
            0.5, 8, 4
        )


class TestOptimalBands:
    def test_fits_budget(self):
        b, r = optimal_bands(128, 0.5)
        assert b * r <= 128

    def test_high_threshold_wants_long_bands(self):
        _, r_low = optimal_bands(128, 0.2)
        _, r_high = optimal_bands(128, 0.9)
        assert r_high > r_low

    def test_fp_weight_shifts_curve(self):
        b_fp, r_fp = optimal_bands(128, 0.5, fp_weight=0.9)
        b_fn, r_fn = optimal_bands(128, 0.5, fp_weight=0.1)
        # Penalizing false positives favors longer rows (stricter bands).
        assert r_fp >= r_fn


class TestIndex:
    def test_insert_query_roundtrip(self):
        lsh = MinHashLSH(threshold=0.5)
        mh = MinHash.from_values(["a", "b", "c"])
        lsh.insert("k", mh)
        assert "k" in lsh
        assert lsh.query(mh) == ["k"]

    def test_identical_always_found(self):
        lsh = MinHashLSH(threshold=0.9)
        for i in range(20):
            lsh.insert(i, MinHash.from_values([f"set{i}_{j}" for j in range(30)]))
        probe = MinHash.from_values([f"set7_{j}" for j in range(30)])
        assert 7 in lsh.query(probe)

    def test_duplicate_key_rejected(self):
        lsh = MinHashLSH()
        lsh.insert("k", MinHash.from_values(["a"]))
        with pytest.raises(IndexError_):
            lsh.insert("k", MinHash.from_values(["b"]))

    def test_wrong_num_perm_rejected(self):
        lsh = MinHashLSH(num_perm=128)
        with pytest.raises(IndexError_):
            lsh.insert("k", MinHash(num_perm=64))

    def test_bad_threshold_rejected(self):
        with pytest.raises(IndexError_):
            MinHashLSH(threshold=0.0)
        with pytest.raises(IndexError_):
            MinHashLSH(threshold=1.5)

    def test_query_verified_filters_and_sorts(self):
        lsh = MinHashLSH(threshold=0.4)
        base = [f"v{i}" for i in range(60)]
        lsh.insert("near", MinHash.from_values(base[:55] + ["x1", "x2"]))
        lsh.insert("far", MinHash.from_values([f"w{i}" for i in range(60)]))
        hits = lsh.query_verified(MinHash.from_values(base))
        keys = [k for k, _ in hits]
        assert keys == ["near"]
        assert all(s >= 0.4 for _, s in hits)

    def test_recall_on_similar_population(self):
        rng = random.Random(3)
        universe = [f"u{i}" for i in range(200)]
        lsh = MinHashLSH(threshold=0.5)
        truth = []
        query_set = set(universe[:100])
        qmh = MinHash.from_values(query_set)
        for i in range(50):
            size = rng.randint(50, 150)
            s = set(rng.sample(universe, size))
            inter = len(s & query_set)
            jac = inter / len(s | query_set)
            lsh.insert(i, MinHash.from_values(s))
            if jac >= 0.7:
                truth.append(i)
        found = set(lsh.query(qmh))
        assert all(t in found for t in truth)


@given(st.sets(st.text(min_size=1, max_size=5), min_size=5, max_size=50))
@settings(max_examples=25, deadline=None)
def test_no_false_negative_on_identity(values):
    """Property: querying with an indexed signature always returns its key."""
    lsh = MinHashLSH(threshold=0.8)
    mh = MinHash.from_values(values)
    lsh.insert("self", mh)
    assert "self" in lsh.query(mh)
