"""Tests for Valentine-style schema matching."""

import pytest

from repro.datalake.table import Column, Table
from repro.search.valentine import (
    CompositeMatcher,
    DistributionMatcher,
    EmbeddingMatcher,
    HeaderMatcher,
    ValueOverlapMatcher,
    evaluate_matcher,
    precision_at_size,
    recall_at_ground_truth,
)


@pytest.fixture(scope="module")
def pair():
    source = Table.from_dict(
        "src",
        {
            "city name": ["oslo", "rome", "lima"],
            "population": ["700000", "2800000", "9700000"],
            "notes": ["cold", "warm", "dry"],
        },
    )
    target = Table.from_dict(
        "tgt",
        {
            "population count": ["710000", "2900000", "9600000"],
            "city": ["oslo", "rome", "cairo"],
            "founded": ["1048", "-753", "1535"],
        },
    )
    truth = {(0, 1), (1, 0)}  # city<->city, population<->population
    return source, target, truth


class TestHeaderMatcher:
    def test_token_overlap(self, pair):
        source, target, _ = pair
        m = HeaderMatcher()
        assert m.score(source.column(0), target.column(1)) > 0  # city
        assert m.score(source.column(2), target.column(2)) == 0.0

    def test_match_ranked(self, pair):
        source, target, truth = pair
        ranked = HeaderMatcher().match(source, target)
        assert ranked[0].score >= ranked[-1].score
        assert (ranked[0].source, ranked[0].target) in truth


class TestValueOverlapMatcher:
    def test_shared_values(self, pair):
        source, target, _ = pair
        m = ValueOverlapMatcher()
        assert m.score(source.column(0), target.column(1)) == pytest.approx(
            2 / 4
        )

    def test_disjoint_zero(self, pair):
        source, target, _ = pair
        assert ValueOverlapMatcher().score(
            source.column(2), target.column(1)
        ) == 0.0


class TestDistributionMatcher:
    def test_similar_numeric_distributions(self, pair):
        source, target, _ = pair
        m = DistributionMatcher()
        s = m.score(source.column(1), target.column(0))
        assert s > 0.5

    def test_non_numeric_zero(self, pair):
        source, target, _ = pair
        assert DistributionMatcher().score(
            source.column(0), target.column(1)
        ) == 0.0

    def test_distant_distributions_lower(self):
        a = Column("x", ["1", "2", "3", "4"])
        b = Column("y", ["1000000", "2000000", "1500000", "1700000"])
        c = Column("z", ["2", "3", "4", "5"])
        m = DistributionMatcher()
        assert m.score(a, c) > m.score(a, b)


class TestEmbeddingMatcher:
    def test_same_domain_columns_match(self, union_corpus, union_space):
        m = EmbeddingMatcher(union_space)
        qname, cname = union_corpus.groups[0][0], union_corpus.groups[0][1]
        src = union_corpus.lake.table(qname)
        tgt = union_corpus.lake.table(cname)
        ranked = m.match(src, tgt)
        assert ranked
        # Top correspondence must pair same-concept columns.
        top = ranked[0]
        onto = union_corpus.ontology
        cls_a = onto.annotate_column(
            src.columns[top.source].non_null_values()
        )
        cls_b = onto.annotate_column(
            tgt.columns[top.target].non_null_values()
        )
        assert cls_a == cls_b


class TestComposite:
    def test_requires_components(self):
        with pytest.raises(ValueError):
            CompositeMatcher([])

    def test_dominates_weakest_component(self, pair):
        source, target, truth = pair
        composite = CompositeMatcher(
            [(HeaderMatcher(), 1.0), (ValueOverlapMatcher(), 1.0),
             (DistributionMatcher(), 1.0)]
        )
        rec = recall_at_ground_truth(composite.match(source, target), truth)
        header_rec = recall_at_ground_truth(
            HeaderMatcher().match(source, target), truth
        )
        assert rec >= header_rec


class TestMetrics:
    def test_precision_at_size(self, pair):
        source, target, truth = pair
        ranked = ValueOverlapMatcher().match(source, target)
        assert 0.0 <= precision_at_size(ranked, truth, 2) <= 1.0
        assert precision_at_size([], truth, 2) == 0.0
        assert precision_at_size(ranked, truth, 0) == 0.0

    def test_recall_empty_truth(self):
        assert recall_at_ground_truth([], set()) == 1.0

    def test_evaluate_matcher(self, pair):
        report = evaluate_matcher(HeaderMatcher(), [pair])
        assert set(report) == {"precision", "recall_at_gt"}
        assert 0.0 <= report["recall_at_gt"] <= 1.0
