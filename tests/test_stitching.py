"""Tests for table stitching and KB completion."""

import pytest

from repro.apps.stitching import (
    TableStitcher,
    extract_facts,
    kb_completion_rate,
)
from repro.datalake.generate import make_stitch_corpus
from repro.datalake.lake import DataLake
from repro.datalake.table import Table


@pytest.fixture(scope="module")
def stitch_corpus():
    return make_stitch_corpus(
        n_fragments=12, rows_per_fragment=8, n_predicates=3, seed=23
    )


class TestGrouping:
    def test_fragments_grouped_together(self, stitch_corpus):
        groups = TableStitcher().group_fragments(stitch_corpus.lake)
        assert len(groups) >= 1
        largest = max(groups, key=len)
        assert len(largest) >= 10

    def test_different_schemas_not_grouped(self, stitch_corpus):
        other = Table.from_dict(
            "odd_one",
            {"x": ["9.5", "3.5", "1.0"], "y": ["foo bar", "baz qux", "word"]},
        )
        lake = DataLake(list(stitch_corpus.lake) + [other])
        groups = TableStitcher().group_fragments(lake)
        for g in groups:
            assert "odd_one" not in g or len(g) == 1

    def test_min_group_respected(self, stitch_corpus):
        groups = TableStitcher(min_group=3).group_fragments(stitch_corpus.lake)
        assert all(len(g) >= 3 for g in groups)


class TestStitching:
    def test_union_concatenates_rows(self, stitch_corpus):
        stitcher = TableStitcher()
        groups = stitcher.group_fragments(stitch_corpus.lake)
        rel = stitcher.stitch_group(stitch_corpus.lake, groups[0])
        total_rows = sum(
            stitch_corpus.lake.table(n).num_rows for n in groups[0]
        )
        assert rel.union.num_rows == total_rows

    def test_header_map_collects_synonyms(self, stitch_corpus):
        stitcher = TableStitcher()
        groups = stitcher.group_fragments(stitch_corpus.lake)
        rel = stitcher.stitch_group(stitch_corpus.lake, groups[0])
        synonym_counts = [len(v) for v in rel.header_map.values()]
        assert max(synonym_counts) >= 2  # headers were inconsistent


class TestKbCompletion:
    def test_stitching_recovers_most_facts(self, stitch_corpus):
        """The E18 headline shape: stitched fragments recover nearly all
        facts once predicates are canonicalized."""
        stitcher = TableStitcher()
        relations = stitcher.stitch_lake(stitch_corpus.lake)
        facts = set()
        for rel in relations:
            facts |= extract_facts(rel)
        aliases = {
            h: p
            for p, hs in stitch_corpus.header_synonyms.items()
            for h in hs
        }
        rate = kb_completion_rate(facts, stitch_corpus.facts, aliases)
        assert rate >= 0.9

    def test_single_fragment_recovers_fraction(self, stitch_corpus):
        name = sorted(stitch_corpus.lake.table_names())[0]
        frag = stitch_corpus.lake.table(name)
        from repro.apps.stitching import StitchedRelation

        rel = StitchedRelation([name], {}, frag)
        facts = extract_facts(rel)
        aliases = {
            h: p
            for p, hs in stitch_corpus.header_synonyms.items()
            for h in hs
        }
        rate = kb_completion_rate(facts, stitch_corpus.facts, aliases)
        assert rate < 0.2

    def test_empty_truth(self):
        assert kb_completion_rate(set(), set()) == 0.0

    def test_no_union_no_facts(self):
        from repro.apps.stitching import StitchedRelation

        assert extract_facts(StitchedRelation([], {}, None)) == set()
