"""Unit tests for data type inference."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalake.types import (
    DataType,
    classify_value,
    infer_type,
    parse_float,
)


class TestClassifyValue:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("42", DataType.INTEGER),
            ("-7", DataType.INTEGER),
            ("+3", DataType.INTEGER),
            ("3.14", DataType.FLOAT),
            ("-0.5", DataType.FLOAT),
            ("1e-4", DataType.FLOAT),
            (".5", DataType.FLOAT),
            ("2021-03-04", DataType.DATE),
            ("3/14/2021", DataType.DATE),
            ("2021/3/4", DataType.DATE),
            ("hello", DataType.TEXT),
            ("12abc", DataType.TEXT),
            ("", DataType.EMPTY),
            ("NA", DataType.EMPTY),
            ("null", DataType.EMPTY),
        ],
    )
    def test_cases(self, value, expected):
        assert classify_value(value) is expected

    def test_comma_separated_number(self):
        assert classify_value("1,234.5") is DataType.FLOAT


class TestParseFloat:
    def test_plain(self):
        assert parse_float("2.5") == 2.5

    def test_with_commas(self):
        assert parse_float("1,234") == 1234.0

    def test_null_is_nan(self):
        assert math.isnan(parse_float("NA"))

    def test_garbage_is_nan(self):
        assert math.isnan(parse_float("abc"))


class TestInferType:
    def test_all_ints(self):
        assert infer_type(["1", "2", "3"]) is DataType.INTEGER

    def test_ints_with_floats_degrade(self):
        assert infer_type(["1", "2.5", "3", "4.5"]) is DataType.FLOAT

    def test_mostly_text(self):
        assert infer_type(["a", "b", "1"]) is DataType.TEXT

    def test_dates(self):
        assert infer_type(["2020-01-01", "2020-01-02"]) is DataType.DATE

    def test_all_null_is_empty(self):
        assert infer_type(["", "NA", "null"]) is DataType.EMPTY

    def test_empty_list(self):
        assert infer_type([]) is DataType.EMPTY

    def test_threshold_respected(self):
        # 80% ints with threshold 0.9 -> TEXT (below threshold), not INTEGER.
        values = ["1"] * 8 + ["x"] * 2
        assert infer_type(values, threshold=0.9) is DataType.TEXT
        assert infer_type(values, threshold=0.7) is DataType.INTEGER

    def test_nulls_ignored_in_denominator(self):
        assert infer_type(["1", "2", "", "NA"]) is DataType.INTEGER


@given(st.lists(st.integers(-10**12, 10**12), min_size=1, max_size=50))
def test_integer_lists_always_integer(xs):
    """Property: columns of stringified ints infer INTEGER."""
    assert infer_type([str(x) for x in xs]) is DataType.INTEGER


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          width=32), min_size=1, max_size=50))
def test_float_lists_parse_back(xs):
    """Property: parse_float inverts str() for finite floats."""
    for x in xs:
        assert parse_float(str(x)) == pytest.approx(float(str(x)))
