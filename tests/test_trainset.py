"""Tests for training set discovery/construction."""

import numpy as np
import pytest

from repro.apps.trainset import TrainingSetBuilder
from repro.search.union_tus import TableUnionSearch


@pytest.fixture(scope="module")
def builder(union_corpus, union_space):
    search = TableUnionSearch(
        union_corpus.lake,
        ontology=union_corpus.ontology,
        space=union_space,
    ).build()
    return TrainingSetBuilder(search)


class TestDiscovery:
    def test_discovers_group_members(self, union_corpus, builder):
        seed_name = union_corpus.groups[0][0]
        found = builder.discover(union_corpus.lake.table(seed_name), k=5)
        assert set(found) & union_corpus.truth[seed_name]


class TestUnionRows:
    def test_rows_aligned_to_seed_width(self, union_corpus, builder):
        seed_name = union_corpus.groups[0][0]
        seed = union_corpus.lake.table(seed_name)
        names = builder.discover(seed, k=3)
        rows, used = builder.union_rows(seed, names)
        assert used
        assert all(len(r) == seed.num_cols for r in rows)

    def test_no_tables_no_rows(self, union_corpus, builder):
        seed = union_corpus.lake.table(union_corpus.groups[0][0])
        rows, used = builder.union_rows(seed, [])
        assert rows == [] and used == []


class TestEvaluateGain:
    def test_gain_report_complete(self, union_corpus, builder):
        seed_name = union_corpus.groups[0][0]
        seed = union_corpus.lake.table(seed_name)
        # Task: classify rows by a deterministic hash of the first text cell
        # — learnable from character features, shared across the group.
        feature_dim = 8

        def featurize(row):
            h = sum(ord(c) for c in row[0])
            rng = np.random.default_rng(h % 1000)
            return rng.normal(size=feature_dim)

        def label(row):
            return int(sum(ord(c) for c in row[0]) % 2 == 0)

        report = builder.evaluate_gain(seed, label, featurize, k=4)
        assert 0.0 <= report.seed_accuracy <= 1.0
        assert 0.0 <= report.augmented_accuracy <= 1.0
        assert report.rows_added > 0
        assert report.tables_used
