"""Tests for QCR-based correlated dataset search."""

import pytest

from repro.datalake.generate import make_correlation_corpus
from repro.search.correlated import CorrelatedSearch, exact_join_correlation


@pytest.fixture(scope="module")
def corr_corpus():
    return make_correlation_corpus(n_candidates=24, n_keys=300, seed=9)


@pytest.fixture(scope="module")
def search(corr_corpus):
    return CorrelatedSearch(sketch_size=256).build(corr_corpus.lake)


class TestSearch:
    def test_top_hits_are_truly_correlated(self, corr_corpus, search):
        res = search.search(
            corr_corpus.lake.table(corr_corpus.query_table), 0, 1, k=5
        )
        assert res
        for hit in res[:3]:
            assert corr_corpus.truth[hit.table] >= 0.6

    def test_estimates_track_truth(self, corr_corpus, search):
        res = search.search(
            corr_corpus.lake.table(corr_corpus.query_table), 0, 1, k=15
        )
        for hit in res:
            assert abs(hit.correlation) == pytest.approx(
                corr_corpus.truth[hit.table], abs=0.25
            )

    def test_ranking_by_abs_correlation(self, corr_corpus, search):
        res = search.search(
            corr_corpus.lake.table(corr_corpus.query_table), 0, 1, k=10
        )
        vals = [abs(h.correlation) for h in res]
        assert vals == sorted(vals, reverse=True)

    def test_min_containment_filters(self, corr_corpus, search):
        res = search.search(
            corr_corpus.lake.table(corr_corpus.query_table),
            0,
            1,
            k=40,
            min_containment=0.99,
        )
        loose = search.search(
            corr_corpus.lake.table(corr_corpus.query_table),
            0,
            1,
            k=40,
            min_containment=0.1,
        )
        assert len(res) <= len(loose)

    def test_query_table_excluded(self, corr_corpus, search):
        res = search.search(
            corr_corpus.lake.table(corr_corpus.query_table), 0, 1, k=40
        )
        assert all(h.table != corr_corpus.query_table for h in res)


class TestExactReference:
    def test_self_join_perfect_correlation(self, corr_corpus):
        q = corr_corpus.lake.table(corr_corpus.query_table)
        assert exact_join_correlation(q, 0, 1, q, 0, 1) == pytest.approx(1.0)

    def test_no_shared_keys_zero(self, corr_corpus):
        from repro.datalake.table import Column, Table

        q = corr_corpus.lake.table(corr_corpus.query_table)
        other = Table(
            "zz",
            [Column("key", ["nope1", "nope2", "nope3"]),
             Column("x", ["1", "2", "3"])],
        )
        assert exact_join_correlation(q, 0, 1, other, 0, 1) == 0.0


class TestSketchSizeEffect:
    def test_bigger_sketch_tighter_estimates(self, corr_corpus):
        """E9 ablation shape: error shrinks as sketch size grows."""
        from repro.bench.metrics import mean_absolute_error

        errors = []
        for n in (16, 512):
            cs = CorrelatedSearch(sketch_size=n).build(corr_corpus.lake)
            res = cs.search(
                corr_corpus.lake.table(corr_corpus.query_table),
                0,
                1,
                k=24,
                min_containment=0.05,
            )
            ests = [abs(h.correlation) for h in res]
            truths = [corr_corpus.truth[h.table] for h in res]
            errors.append(mean_absolute_error(ests, truths))
        assert errors[1] <= errors[0]
