"""Unit + property tests for the QCR correlation sketch."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.qcr import CorrelationSketch, pearson


class TestPearson:
    def test_perfect_positive(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert pearson(xs, xs) == pytest.approx(1.0)

    def test_perfect_negative(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert pearson(xs, [-x for x in xs]) == pytest.approx(-1.0)

    def test_undefined_cases(self):
        assert pearson([1.0], [1.0]) == 0.0
        assert pearson([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0
        assert pearson([1.0, 2.0], [1.0]) == 0.0


class TestSketch:
    def test_size_bounded(self):
        sk = CorrelationSketch(n=16)
        for i in range(200):
            sk.update(f"k{i}", float(i))
        assert len(sk) == 16

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            CorrelationSketch(n=2)

    def test_duplicate_keys_keep_first(self):
        sk = CorrelationSketch(n=16)
        sk.update("k", 1.0)
        sk.update("k", 99.0)
        assert len(sk) == 1

    def test_non_finite_skipped(self):
        sk = CorrelationSketch(n=16)
        sk.update("a", math.nan)
        sk.update("b", math.inf)
        assert len(sk) == 0

    def test_same_keys_sampled(self):
        """The keyed-minima property: two sketches over the same key universe
        sample the same keys, so their samples align."""
        a = CorrelationSketch(n=32)
        b = CorrelationSketch(n=32)
        for i in range(500):
            a.update(f"k{i}", float(i))
            b.update(f"k{i}", float(i) * 2)
        xs, ys = a.aligned_values(b)
        assert len(xs) == 32

    def test_correlation_estimate(self):
        rng = random.Random(0)
        a = CorrelationSketch(n=128)
        b = CorrelationSketch(n=128)
        for i in range(2000):
            y = rng.gauss(0, 1)
            x = 0.8 * y + 0.6 * rng.gauss(0, 1)
            a.update(f"k{i}", y)
            b.update(f"k{i}", x)
        assert a.correlation(b) == pytest.approx(0.8, abs=0.15)

    def test_uncorrelated_near_zero(self):
        rng = random.Random(1)
        a = CorrelationSketch(n=128)
        b = CorrelationSketch(n=128)
        for i in range(2000):
            a.update(f"k{i}", rng.gauss(0, 1))
            b.update(f"k{i}", rng.gauss(0, 1))
        assert abs(a.correlation(b)) < 0.3

    def test_containment_full_overlap(self):
        a = CorrelationSketch(n=64)
        b = CorrelationSketch(n=64)
        for i in range(300):
            a.update(f"k{i}", 1.0)
            b.update(f"k{i}", 2.0)
        assert a.containment(b) == pytest.approx(1.0)

    def test_containment_disjoint(self):
        a = CorrelationSketch(n=64)
        b = CorrelationSketch(n=64)
        for i in range(300):
            a.update(f"a{i}", 1.0)
            b.update(f"b{i}", 1.0)
        assert a.containment(b) == 0.0

    def test_containment_empty(self):
        assert CorrelationSketch().containment(CorrelationSketch()) == 0.0


@given(
    st.lists(
        st.tuples(
            st.text(min_size=1, max_size=6),
            st.floats(-1e6, 1e6, allow_nan=False),
        ),
        min_size=4,
        max_size=100,
        unique_by=lambda kv: kv[0],
    )
)
@settings(max_examples=30, deadline=None)
def test_perfectly_correlated_streams(pairs):
    """Property: sketches of (key, v) and (key, 2v + 1) estimate r = 1
    whenever the sampled values have variance."""
    a = CorrelationSketch.from_pairs(pairs, n=64)
    b = CorrelationSketch.from_pairs([(k, 2 * v + 1) for k, v in pairs], n=64)
    xs, ys = a.aligned_values(b)
    n = len(xs)
    if n >= 3:
        mx = sum(xs) / n
        variance = sum((x - mx) ** 2 for x in xs)
        # Skip subnormal-variance inputs where float underflow makes the
        # estimator legitimately return 0.
        if variance > 1e-12:
            assert a.correlation(b) == pytest.approx(1.0, abs=1e-6)
