"""Tests for unsupervised domain discovery."""

from repro.datalake.generate import make_union_corpus
from repro.understanding.domains import (
    DiscoveredDomain,
    DomainDiscovery,
    domain_recovery_score,
)


class TestDiscovery:
    def test_recovers_planted_domains(self, union_corpus):
        # min_support=1 recovers full lake domains; the default robust
        # signature (support >= 2) intentionally keeps only multi-column
        # values, so evaluate each setting against its own target.
        discovered = DomainDiscovery(min_support=1).discover(union_corpus.lake)
        assert discovered
        pool = union_corpus.pool
        lake_values_by_domain = []
        for d in range(16):
            vocab = set(pool.domain(d).values)
            present = set()
            for _, col in union_corpus.lake.iter_text_columns():
                present |= vocab & col.value_set()
            if present:
                lake_values_by_domain.append(present)
        score = domain_recovery_score(discovered, lake_values_by_domain)
        assert score >= 0.8

    def test_robust_signature_recovers_shared_values(self, union_corpus):
        discovered = DomainDiscovery(min_support=2).discover(union_corpus.lake)
        pool = union_corpus.pool
        # Target: values appearing in at least two columns of the lake.
        from collections import Counter

        support = Counter()
        for _, col in union_corpus.lake.iter_text_columns():
            support.update(col.value_set())
        truth = []
        for d in range(16):
            vocab = set(pool.domain(d).values)
            shared = {v for v in vocab if support[v] >= 2}
            if len(shared) >= 5:
                truth.append(shared)
        score = domain_recovery_score(discovered, truth)
        assert score >= 0.8

    def test_domains_sorted_by_size(self, union_corpus):
        discovered = DomainDiscovery().discover(union_corpus.lake)
        sizes = [len(d) for d in discovered]
        assert sizes == sorted(sizes, reverse=True)

    def test_representative_in_domain(self, union_corpus):
        for d in DomainDiscovery().discover(union_corpus.lake):
            assert d.representative in d.values

    def test_min_domain_size_respected(self, union_corpus):
        discovered = DomainDiscovery(min_domain_size=10).discover(
            union_corpus.lake
        )
        assert all(len(d) >= 10 for d in discovered)

    def test_columns_recorded(self, union_corpus):
        for d in DomainDiscovery().discover(union_corpus.lake):
            assert len(d.columns) >= 2

    def test_higher_support_shrinks_domains(self):
        corpus = make_union_corpus(
            n_groups=3, tables_per_group=4, value_overlap=0.5, seed=7
        )
        loose = DomainDiscovery(min_support=1).discover(corpus.lake)
        strict = DomainDiscovery(min_support=3).discover(corpus.lake)
        if loose and strict:
            assert sum(len(d) for d in strict) <= sum(len(d) for d in loose)


class TestRecoveryScore:
    def test_empty_truth(self):
        assert domain_recovery_score([], []) == 0.0

    def test_perfect_recovery(self):
        dom = DiscoveredDomain(values={"a", "b"}, representative="a")
        assert domain_recovery_score([dom], [{"a", "b"}]) == 1.0

    def test_partial_recovery(self):
        dom = DiscoveredDomain(values={"a"}, representative="a")
        score = domain_recovery_score([dom], [{"a", "b"}])
        assert 0.0 < score < 1.0

    def test_disjoint_recovery_zero(self):
        dom = DiscoveredDomain(values={"x"}, representative="x")
        assert domain_recovery_score([dom], [{"a"}]) == 0.0
