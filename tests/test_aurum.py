"""Tests for the Aurum-style enterprise knowledge graph."""

import pytest

from repro.datalake.lake import DataLake
from repro.datalake.table import ColumnRef, Table
from repro.graph.aurum import (
    EDGE_CONTENT,
    EDGE_SCHEMA,
    AurumConfig,
    EnterpriseKnowledgeGraph,
)


@pytest.fixture(scope="module")
def ekg():
    orders = Table.from_dict(
        "orders",
        {
            "customer_id": [f"c{i:03d}" for i in range(20)] * 3,
            "item": [f"item{i}" for i in range(60)],
        },
    )
    customers = Table.from_dict(
        "customers",
        {
            "customer_id": [f"c{i:03d}" for i in range(20)],
            "city": [f"city{i % 5}" for i in range(20)],
        },
    )
    unrelated = Table.from_dict(
        "weather", {"station": [f"st{i}" for i in range(10)]}
    )
    lake = DataLake([orders, customers, unrelated])
    return EnterpriseKnowledgeGraph(lake).build()


class TestGraphConstruction:
    def test_nodes_are_text_columns(self, ekg):
        assert ColumnRef("orders", 0) in ekg.graph
        assert ColumnRef("weather", 0) in ekg.graph

    def test_content_edge_between_shared_columns(self, ekg):
        nbrs = [r for r, _ in ekg.neighbors(ColumnRef("orders", 0))]
        assert ColumnRef("customers", 0) in nbrs

    def test_schema_edge_from_headers(self, ekg):
        data = ekg.graph.get_edge_data(
            ColumnRef("orders", 0), ColumnRef("customers", 0)
        )
        assert data["kind"] in (EDGE_CONTENT, EDGE_SCHEMA)

    def test_unrelated_column_isolated(self, ekg):
        assert ekg.neighbors(ColumnRef("weather", 0)) == []

    def test_neighbors_of_unknown_ref(self, ekg):
        assert ekg.neighbors(ColumnRef("ghost", 0)) == []


class TestQueries:
    def test_related_tables(self, ekg):
        related = ekg.related_tables("orders")
        assert related and related[0][0] == "customers"

    def test_table_path_exists(self, ekg):
        path = ekg.table_path("orders", "customers")
        assert path
        assert path[0].table == "orders"
        assert path[-1].table == "customers"

    def test_table_path_missing(self, ekg):
        assert ekg.table_path("orders", "weather") == []

    def test_neighbors_sorted_by_weight(self, ekg):
        nbrs = ekg.neighbors(ColumnRef("orders", 0))
        weights = [w for _, w in nbrs]
        assert weights == sorted(weights, reverse=True)


class TestSeepingSemantics:
    def test_semantic_edges_link_disjoint_same_domain(
        self, union_corpus, union_space
    ):
        """With an embedding space, columns from the same domain connect
        even when their value sets barely overlap."""
        from repro.graph.aurum import EDGE_SEMANTIC

        g = EnterpriseKnowledgeGraph(
            union_corpus.lake,
            AurumConfig(content_threshold=0.95),  # content edges ~disabled
            space=union_space,
            semantic_threshold=0.6,
        ).build()
        semantic_edges = [
            (a, b)
            for a, b, d in g.graph.edges(data=True)
            if d.get("kind") == EDGE_SEMANTIC
        ]
        assert semantic_edges
        # Semantic edges should connect intra-group tables.
        intra = sum(
            1
            for a, b in semantic_edges
            if a.table.split("_t")[0] == b.table.split("_t")[0]
        )
        assert intra / len(semantic_edges) >= 0.8

    def test_no_space_no_semantic_edges(self, ekg):
        from repro.graph.aurum import EDGE_SEMANTIC

        kinds = {d.get("kind") for _, _, d in ekg.graph.edges(data=True)}
        assert EDGE_SEMANTIC not in kinds


class TestPkFk:
    def test_pkfk_candidate_found(self):
        # "pk" has 60 distinct ids; "fk" references 20 of them repeatedly
        # with full containment — a classic inclusion dependency.
        pk = Table.from_dict("dim", {"id": [f"i{i:03d}" for i in range(60)]})
        fk = Table.from_dict(
            "fact", {"dim_id": [f"i{i:03d}" for i in range(20)] * 3}
        )
        lake = DataLake([pk, fk])
        g = EnterpriseKnowledgeGraph(
            lake, AurumConfig(content_threshold=0.2)
        ).build()
        pairs = g.pkfk_candidates()
        assert any(
            {a.table, b.table} == {"dim", "fact"} for a, b in pairs
        )

    def test_min_column_size_filters(self):
        lake = DataLake([Table.from_dict("tiny", {"a": ["only"]})])
        g = EnterpriseKnowledgeGraph(lake).build()
        assert g.graph.number_of_nodes() == 0
