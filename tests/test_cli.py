"""Tests for the command-line interface."""

import json
import time

import pytest

from repro.core.cli import build_parser, main
from repro.datalake.generate import make_union_corpus
from repro.datalake.lake import DataLake
from repro.datalake.table import Table


def all_subcommands() -> list[str]:
    parser = build_parser()
    for action in parser._actions:
        if getattr(action, "choices", None):
            return sorted(action.choices)
    raise AssertionError("parser has no subcommands")


@pytest.fixture(scope="module")
def lake_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("lake")
    corpus = make_union_corpus(
        n_groups=2, tables_per_group=3, rows_per_table=25, seed=19
    )
    corpus.lake.save_to_directory(directory)
    return directory, corpus


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_stats(self, lake_dir, capsys):
        directory, corpus = lake_dir
        assert main(["stats", str(directory)]) == 0
        out = capsys.readouterr().out
        assert f"tables: {len(corpus.lake)}" in out

    def test_keyword_over_headers(self, lake_dir, capsys):
        directory, corpus = lake_dir
        # CSV round-trips drop metadata, so keyword search works on headers.
        header = corpus.lake.table(corpus.groups[0][0]).columns[0].name
        token = header.split("_")[0]  # "concept"
        assert main(["keyword", str(directory), "--query", token]) == 0
        assert capsys.readouterr().out.strip()

    def test_join(self, lake_dir, capsys):
        directory, corpus = lake_dir
        qname = corpus.groups[0][0]
        assert main(
            ["join", str(directory), "--table", qname, "--column", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert out.strip(), "join search should print hits"
        assert qname not in out.split()[0]

    def test_union_tus(self, lake_dir, capsys):
        directory, corpus = lake_dir
        qname = corpus.groups[0][0]
        assert main(
            ["union", str(directory), "--table", qname, "--method", "tus"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        top = lines[0].split("\t")[0]
        assert top in corpus.truth[qname]

    def test_union_starmie(self, lake_dir, capsys):
        directory, corpus = lake_dir
        qname = corpus.groups[1][0]
        assert main(["union", str(directory), "--table", qname]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        top = lines[0].split("\t")[0]
        assert top in corpus.truth[qname]

    def test_navigate(self, lake_dir, capsys):
        directory, _ = lake_dir
        assert main(
            ["navigate", str(directory), "--intent", "concept_000"]
        ) == 0
        assert capsys.readouterr().out.strip()

    def test_domains(self, lake_dir, capsys):
        directory, _ = lake_dir
        assert main(["domains", str(directory), "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "domain 0:" in out


class TestHelpSmoke:
    """Satellite: every subcommand must at least render its --help."""

    def test_subcommand_inventory(self):
        commands = all_subcommands()
        assert {"slo", "inspect", "top", "bench-compare"} <= set(commands)

    @pytest.mark.parametrize("command", all_subcommands())
    def test_help_exits_zero(self, command, capsys):
        with pytest.raises(SystemExit) as exc:
            main([command, "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "usage:" in out
        assert command in out


def write_log(path, latency_ms, status="ok", n=20):
    now = time.time()
    lines = []
    for i in range(n):
        lines.append(
            json.dumps(
                {
                    "ts": now - i,
                    "engine": "join",
                    "query": f"q{i}",
                    "latency_ms": latency_ms,
                    "status": status,
                    "error": None if status == "ok" else "TimeoutError",
                }
            )
        )
    path.write_text("\n".join(lines) + "\n")
    return path


class TestSloCommand:
    def test_healthy_log_exits_zero(self, tmp_path, capsys):
        log = write_log(tmp_path / "ok.jsonl", latency_ms=5.0)
        assert main(["slo", "--log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "SLO report (OK" in out

    def test_breached_log_exits_one(self, tmp_path, capsys):
        log = write_log(
            tmp_path / "bad.jsonl", latency_ms=900.0, status="error"
        )
        assert main(["slo", "--log", str(log)]) == 1
        out = capsys.readouterr().out
        assert "BREACH" in out

    def test_custom_objective_and_json(self, tmp_path, capsys):
        log = write_log(tmp_path / "ok.jsonl", latency_ms=50.0)
        rc = main(
            [
                "slo",
                "--log",
                str(log),
                "--objective",
                "join:10:0.5",
                "--json",
            ]
        )
        assert rc == 1  # 50ms against a 10ms target
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["statuses"][0]["engine"] == "join"

    def test_log_and_url_are_mutually_exclusive(self, tmp_path):
        log = write_log(tmp_path / "ok.jsonl", latency_ms=5.0)
        with pytest.raises(SystemExit):
            main(["slo", "--log", str(log), "--url", "http://localhost:1"])

    def test_bad_objective_spec_rejected(self, tmp_path):
        log = write_log(tmp_path / "ok.jsonl", latency_ms=5.0)
        with pytest.raises(ValueError):
            main(["slo", "--log", str(log), "--objective", "join"])

    def test_url_source(self, capsys):
        from repro import obs
        from repro.obs.server import ObservabilityServer

        obs.reset()
        obs.QUERY_LOG.append(
            obs.QueryRecord(engine="join", query="q", latency_ms=2.0)
        )
        with ObservabilityServer(port=0) as srv:
            assert main(["slo", "--url", srv.url]) == 0
        assert "SLO report (OK" in capsys.readouterr().out
        obs.reset()


class TestInspectCommand:
    def test_inspect_reports_every_index(self, lake_dir, capsys):
        directory, _ = lake_dir
        assert main(["inspect", str(directory), "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        names = {r["name"] for r in reports}
        # Acceptance: non-empty stats for every default-pipeline index.
        assert {
            "keyword",
            "josie",
            "lshensemble",
            "jaccard_lsh",
            "tus",
            "starmie",
            "pexeso",
            "mate",
            "qcr",
            "organization",
        } <= names
        for r in reports:
            assert r["memory_bytes"] > 0, r["name"]
            assert r["detail"], r["name"]

    def test_inspect_human_output(self, lake_dir, capsys):
        directory, _ = lake_dir
        assert main(["inspect", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "KiB total" in out
        assert "josie" in out


class TestEnginesCommand:
    EXPECTED = {
        "keyword",
        "josie",
        "lshensemble",
        "jaccard_lsh",
        "tus",
        "starmie",
        "pexeso",
        "santos",
        "qcr",
        "mate",
        "organization",
    }

    def test_lists_registry_without_a_lake(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "registered engines" in out
        for name in self.EXPECTED:
            assert name in out

    def test_json_with_lake_reports_built_status(self, lake_dir, capsys):
        directory, _ = lake_dir
        assert main(["engines", str(directory), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {r["name"]: r for r in rows}
        assert set(by_name) == self.EXPECTED
        # No ontology in a CSV-only lake: SANTOS stays down, rest come up.
        assert not by_name["santos"]["built"]
        for name in self.EXPECTED - {"santos"}:
            assert by_name[name]["built"], name
            assert by_name[name]["items"] >= 0


class TestSaveRoundTrip:
    def test_save_and_reload(self, tmp_path):
        lake = DataLake([Table.from_dict("t1", {"a": ["x", "y"]})])
        lake.save_to_directory(tmp_path / "out")
        back = DataLake.from_directory(tmp_path / "out")
        assert back.table("t1").rows() == [["x"], ["y"]]


class TestBuildAndSnapshotCommands:
    def test_build_parallel_and_save(self, lake_dir, tmp_path, capsys):
        directory, _ = lake_dir
        snap = tmp_path / "snap"
        rc = main(
            ["build", str(directory), "--jobs", "4", "--save", str(snap)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 job(s)" in out
        assert "saved snapshot" in out
        assert (snap / "manifest.json").exists()
        assert (snap / "payload.pkl").exists()

    def test_query_load_matches_fresh_build(self, lake_dir, tmp_path, capsys):
        directory, corpus = lake_dir
        snap = tmp_path / "snap"
        assert main(["build", str(directory), "--save", str(snap)]) == 0
        capsys.readouterr()
        qname = corpus.groups[0][0]
        args = [
            "query", str(directory), "--engine", "union", "--table", qname
        ]
        assert main(args) == 0
        fresh = capsys.readouterr().out
        assert main(args + ["--load", str(snap)]) == 0
        loaded = capsys.readouterr().out
        assert loaded == fresh
        assert loaded.strip()

    def test_query_load_refuses_stale_snapshot(
        self, lake_dir, tmp_path, capsys
    ):
        directory, corpus = lake_dir
        snap = tmp_path / "snap"
        assert main(["build", str(directory), "--save", str(snap)]) == 0
        capsys.readouterr()
        stale_dir = tmp_path / "changed_lake"
        corpus.lake.save_to_directory(stale_dir)
        (stale_dir / "extra.csv").write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit, match="stale"):
            main(
                [
                    "query",
                    str(stale_dir),
                    "--engine",
                    "keyword",
                    "--query",
                    "x",
                    "--load",
                    str(snap),
                ]
            )

    def test_build_skip_stage(self, lake_dir, capsys):
        directory, _ = lake_dir
        rc = main(
            ["build", str(directory), "--skip", "mate_index", "--no-embeddings"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mate_index" not in out
