"""Tests for the command-line interface."""

import pytest

from repro.core.cli import build_parser, main
from repro.datalake.generate import make_union_corpus
from repro.datalake.lake import DataLake
from repro.datalake.table import Table


@pytest.fixture(scope="module")
def lake_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("lake")
    corpus = make_union_corpus(
        n_groups=2, tables_per_group=3, rows_per_table=25, seed=19
    )
    corpus.lake.save_to_directory(directory)
    return directory, corpus


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_stats(self, lake_dir, capsys):
        directory, corpus = lake_dir
        assert main(["stats", str(directory)]) == 0
        out = capsys.readouterr().out
        assert f"tables: {len(corpus.lake)}" in out

    def test_keyword_over_headers(self, lake_dir, capsys):
        directory, corpus = lake_dir
        # CSV round-trips drop metadata, so keyword search works on headers.
        header = corpus.lake.table(corpus.groups[0][0]).columns[0].name
        token = header.split("_")[0]  # "concept"
        assert main(["keyword", str(directory), "--query", token]) == 0
        assert capsys.readouterr().out.strip()

    def test_join(self, lake_dir, capsys):
        directory, corpus = lake_dir
        qname = corpus.groups[0][0]
        assert main(
            ["join", str(directory), "--table", qname, "--column", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert out.strip(), "join search should print hits"
        assert qname not in out.split()[0]

    def test_union_tus(self, lake_dir, capsys):
        directory, corpus = lake_dir
        qname = corpus.groups[0][0]
        assert main(
            ["union", str(directory), "--table", qname, "--method", "tus"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        top = lines[0].split("\t")[0]
        assert top in corpus.truth[qname]

    def test_union_starmie(self, lake_dir, capsys):
        directory, corpus = lake_dir
        qname = corpus.groups[1][0]
        assert main(["union", str(directory), "--table", qname]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        top = lines[0].split("\t")[0]
        assert top in corpus.truth[qname]

    def test_navigate(self, lake_dir, capsys):
        directory, _ = lake_dir
        assert main(
            ["navigate", str(directory), "--intent", "concept_000"]
        ) == 0
        assert capsys.readouterr().out.strip()

    def test_domains(self, lake_dir, capsys):
        directory, _ = lake_dir
        assert main(["domains", str(directory), "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "domain 0:" in out


class TestSaveRoundTrip:
    def test_save_and_reload(self, tmp_path):
        lake = DataLake([Table.from_dict("t1", {"a": ["x", "y"]})])
        lake.save_to_directory(tmp_path / "out")
        back = DataLake.from_directory(tmp_path / "out")
        assert back.table("t1").rows() == [["x"], ["y"]]
