"""Unit + property tests for retrieval metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.metrics import (
    average_precision,
    classification_report,
    f1_score,
    kendall_tau,
    mean_absolute_error,
    mean_average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)


class TestPrecisionRecall:
    def test_perfect_ranking(self):
        assert precision_at_k(["a", "b"], {"a", "b"}, 2) == 1.0
        assert recall_at_k(["a", "b"], {"a", "b"}, 2) == 1.0

    def test_half_right(self):
        assert precision_at_k(["a", "x"], {"a"}, 2) == 0.5

    def test_truncation_at_k(self):
        assert precision_at_k(["x", "a"], {"a"}, 1) == 0.0

    def test_short_list_normalized_by_length(self):
        assert precision_at_k(["a"], {"a"}, 5) == 1.0

    def test_empty_inputs(self):
        assert precision_at_k([], {"a"}, 3) == 0.0
        assert precision_at_k(["a"], {"a"}, 0) == 0.0
        assert recall_at_k([], set(), 3) == 1.0


class TestAveragePrecision:
    def test_all_relevant_first(self):
        assert average_precision(["a", "b", "x"], {"a", "b"}) == 1.0

    def test_relevant_last(self):
        assert average_precision(["x", "a"], {"a"}) == 0.5

    def test_empty(self):
        assert average_precision([], {"a"}) == 0.0
        assert average_precision(["a"], set()) == 0.0

    def test_map_averages(self):
        runs = [(["a"], {"a"}), (["x", "a"], {"a"})]
        assert mean_average_precision(runs) == pytest.approx(0.75)
        assert mean_average_precision([]) == 0.0


class TestNdcg:
    def test_ideal_ranking(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["a", "b", "c"], gains, 3) == pytest.approx(1.0)

    def test_reversed_less_than_one(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["c", "b", "a"], gains, 3) < 1.0

    def test_empty_gains(self):
        assert ndcg_at_k(["a"], {}, 3) == 0.0


class TestKendall:
    def test_identical_rankings(self):
        assert kendall_tau([1, 2, 3], [10, 20, 30]) == 1.0

    def test_reversed(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == -1.0

    def test_degenerate(self):
        assert kendall_tau([1], [1]) == 0.0
        assert kendall_tau([1, 2], [1]) == 0.0


class TestMisc:
    def test_f1(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert f1_score(0.0, 0.0) == 0.0
        assert f1_score(0.5, 1.0) == pytest.approx(2 / 3)

    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [1.5, 1.5]) == 0.5
        assert mean_absolute_error([], []) == 0.0

    def test_classification_report(self):
        rep = classification_report(["a", "b", "a"], ["a", "b", "b"])
        assert rep["accuracy"] == pytest.approx(2 / 3)
        assert 0 <= rep["macro_f1"] <= 1

    def test_classification_report_perfect(self):
        rep = classification_report(["a", "b"], ["a", "b"])
        assert rep["accuracy"] == 1.0
        assert rep["macro_f1"] == 1.0


@given(
    st.lists(st.text(min_size=1, max_size=3), min_size=1, max_size=20,
             unique=True),
    st.sets(st.text(min_size=1, max_size=3), min_size=1, max_size=20),
    st.integers(1, 20),
)
@settings(max_examples=50, deadline=None)
def test_metric_ranges(retrieved, relevant, k):
    """Property: all ranking metrics stay within [0, 1] (tau in [-1, 1])."""
    assert 0.0 <= precision_at_k(retrieved, relevant, k) <= 1.0
    assert 0.0 <= recall_at_k(retrieved, relevant, k) <= 1.0
    assert 0.0 <= average_precision(retrieved, relevant) <= 1.0


@given(st.lists(st.floats(-100, 100), min_size=2, max_size=15))
@settings(max_examples=40, deadline=None)
def test_kendall_self_correlation(scores):
    """Property: any sequence has tau(s, s) in {0, 1} (1 unless all ties)."""
    tau = kendall_tau(scores, scores)
    assert tau in (0.0, 1.0) or 0.0 < tau <= 1.0
