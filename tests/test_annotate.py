"""Tests for ontology-based table annotation and KB synthesis."""

from repro.datalake.generate import make_relationship_corpus
from repro.datalake.ontology import Ontology
from repro.datalake.table import Table
from repro.understanding.annotate import OntologyAnnotator, synthesize_kb


def _simple_ontology():
    o = Ontology()
    o.add_class("city")
    o.add_class("country")
    for v in ["oslo", "rome", "lima"]:
        o.add_value(v, "city")
    for v in ["norway", "italy", "peru"]:
        o.add_value(v, "country")
    o.add_relation("located_in", "city", "country")
    o.add_fact("oslo", "norway", "located_in")
    o.add_fact("rome", "italy", "located_in")
    o.add_fact("lima", "peru", "located_in")
    return o


class TestColumnAnnotation:
    def test_majority_class(self):
        ann = OntologyAnnotator(_simple_ontology())
        assert ann.annotate_column(["oslo", "rome", "weird"]) == "city"

    def test_uncovered_column_none(self):
        ann = OntologyAnnotator(_simple_ontology())
        assert ann.annotate_column(["x", "y"]) is None


class TestTableAnnotation:
    def test_column_types_and_relationships(self):
        t = Table.from_dict(
            "geo",
            {
                "a": ["oslo", "rome", "lima"],
                "b": ["norway", "italy", "peru"],
            },
        )
        ann = OntologyAnnotator(_simple_ontology()).annotate(t)
        assert ann.column_types == {0: "city", 1: "country"}
        assert ann.relationships == {(0, 1): "located_in"}
        assert ann.coverage[0] == 1.0

    def test_broken_pairing_still_class_fallback(self):
        # Values are covered but paired contrary to the facts; the
        # class-level fallback still names the relation.
        t = Table.from_dict(
            "geo",
            {"a": ["oslo", "rome"], "b": ["italy", "norway"]},
        )
        ann = OntologyAnnotator(_simple_ontology()).annotate(t)
        assert ann.relationships.get((0, 1)) == "located_in"

    def test_numeric_columns_skipped(self):
        t = Table.from_dict(
            "geo", {"a": ["oslo", "rome"], "n": ["1", "2"]}
        )
        ann = OntologyAnnotator(_simple_ontology()).annotate(t)
        assert 1 not in ann.column_types

    def test_empty_cells_skipped_in_pairs(self):
        t = Table.from_dict(
            "geo", {"a": ["oslo", ""], "b": ["norway", "italy"]}
        )
        ann = OntologyAnnotator(_simple_ontology()).annotate(t)
        assert (0, 1) in ann.relationships


class TestSynthesizedKB:
    def test_repeated_pairs_become_facts(self):
        tables = [
            Table.from_dict(f"t{i}", {"a": ["x1", "x2"], "b": ["y1", "y2"]})
            for i in range(4)
        ]
        kb = synthesize_kb(tables, min_pair_count=3)
        assert kb.relation_between_values("x1", "y1") is not None
        assert kb.num_facts() == 2

    def test_rare_pairs_excluded(self):
        tables = [
            Table.from_dict("t0", {"a": ["x1"], "b": ["y1"]}),
        ]
        kb = synthesize_kb(tables, min_pair_count=2)
        assert kb.num_facts() == 0

    def test_synth_covers_relationship_corpus(self):
        corpus = make_relationship_corpus(n_queries=2, seed=5)
        kb = synthesize_kb(list(corpus.lake), min_pair_count=3)
        # Fact-respecting pairs recur across positive tables, so the
        # synthesized KB should capture at least some of them.
        assert kb.num_facts() > 0
