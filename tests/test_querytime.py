"""Tests for query-time (lazy, cached) table annotation."""

import pytest

from repro.datalake.generate import make_relationship_corpus
from repro.understanding.querytime import (
    QueryTimeAnnotator,
    batch_annotate,
)


@pytest.fixture(scope="module")
def corpus():
    return make_relationship_corpus(n_queries=2, seed=29)


class TestLazyAnnotation:
    def test_matches_batch_results(self, corpus):
        lazy = QueryTimeAnnotator(corpus.lake, corpus.ontology)
        batch = batch_annotate(corpus.lake, corpus.ontology)
        for name in list(corpus.lake.table_names())[:5]:
            a = lazy.annotate(name)
            b = batch[name]
            assert a.column_types == b.column_types
            assert a.relationships == b.relationships

    def test_cache_hit_on_repeat(self, corpus):
        lazy = QueryTimeAnnotator(corpus.lake, corpus.ontology)
        name = corpus.lake.table_names()[0]
        first = lazy.annotate(name)
        second = lazy.annotate(name)
        assert first is second
        assert lazy.stats.requests == 2
        assert lazy.stats.cache_hits == 1
        assert lazy.stats.annotated == 1

    def test_only_touched_tables_annotated(self, corpus):
        lazy = QueryTimeAnnotator(corpus.lake, corpus.ontology)
        touched = corpus.lake.table_names()[:3]
        lazy.annotate_many(touched)
        assert lazy.stats.annotated == 3
        assert set(lazy.cached_tables()) == set(touched)

    def test_lru_eviction(self, corpus):
        lazy = QueryTimeAnnotator(corpus.lake, corpus.ontology, capacity=2)
        names = corpus.lake.table_names()[:3]
        lazy.annotate_many(names)
        assert lazy.stats.evictions == 1
        assert names[0] not in lazy.cached_tables()
        # Re-annotating the evicted table is a miss, not a hit.
        lazy.annotate(names[0])
        assert lazy.stats.annotated == 4

    def test_lru_order_updated_on_hit(self, corpus):
        lazy = QueryTimeAnnotator(corpus.lake, corpus.ontology, capacity=2)
        names = corpus.lake.table_names()[:3]
        lazy.annotate(names[0])
        lazy.annotate(names[1])
        lazy.annotate(names[0])  # refresh 0
        lazy.annotate(names[2])  # evicts 1, not 0
        assert names[0] in lazy.cached_tables()
        assert names[1] not in lazy.cached_tables()

    def test_bad_capacity(self, corpus):
        with pytest.raises(ValueError):
            QueryTimeAnnotator(corpus.lake, corpus.ontology, capacity=0)

    def test_hit_rate(self, corpus):
        lazy = QueryTimeAnnotator(corpus.lake, corpus.ontology)
        assert lazy.stats.hit_rate == 0.0
        name = corpus.lake.table_names()[0]
        lazy.annotate(name)
        lazy.annotate(name)
        assert lazy.stats.hit_rate == 0.5
