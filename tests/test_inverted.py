"""Unit tests for the inverted index."""

from repro.sketch.inverted import InvertedIndex


class TestInvertedIndex:
    def test_insert_and_postings(self):
        idx = InvertedIndex()
        idx.insert("t1", ["a", "b"])
        idx.insert("t2", ["b", "c"])
        assert idx.postings("b") == ["t1", "t2"]
        assert idx.postings("a") == ["t1"]
        assert idx.postings("zzz") == []

    def test_duplicate_tokens_deduped(self):
        idx = InvertedIndex()
        idx.insert("t", ["a", "a", "a"])
        assert idx.size_of("t") == 1
        assert idx.postings("a") == ["t"]

    def test_document_frequency(self):
        idx = InvertedIndex()
        idx.insert("t1", ["a"])
        idx.insert("t2", ["a"])
        assert idx.document_frequency("a") == 2
        assert idx.document_frequency("b") == 0

    def test_len_and_num_tokens(self):
        idx = InvertedIndex()
        idx.insert("t1", ["a", "b"])
        idx.insert("t2", ["b"])
        assert len(idx) == 2
        assert idx.num_tokens == 2

    def test_keys(self):
        idx = InvertedIndex()
        idx.insert("x", ["a"])
        assert idx.keys() == ["x"]

    def test_overlaps_exact(self):
        idx = InvertedIndex()
        idx.insert("t1", ["a", "b", "c"])
        idx.insert("t2", ["c", "d"])
        idx.insert("t3", ["e"])
        counts = idx.overlaps(["a", "c", "d"])
        assert counts == {"t1": 2, "t2": 2}

    def test_overlaps_query_duplicates_ignored(self):
        idx = InvertedIndex()
        idx.insert("t", ["a"])
        assert idx.overlaps(["a", "a", "a"]) == {"t": 1}

    def test_postings_sorted_deterministically(self):
        idx = InvertedIndex()
        for key in ["z", "a", "m"]:
            idx.insert(key, ["tok"])
        assert idx.postings("tok") == ["a", "m", "z"]
