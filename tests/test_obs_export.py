"""Tests for the telemetry exporters: Prometheus text, Chrome trace, JSONL."""

import json
import re

import pytest

from repro import obs
from repro.obs.export import telemetry_lines, write_telemetry
from repro.obs.metrics import MetricsRegistry, prometheus_name
from repro.obs.querylog import QueryLog, QueryRecord
from repro.obs.trace import Tracer

# Prometheus text exposition grammar (the subset we emit).
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? -?[0-9.+eE]+$"
)
TYPE_RE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


def populated_registry(order: str = "forward") -> MetricsRegistry:
    reg = MetricsRegistry()
    ops = [
        lambda: reg.inc("search.josie.queries", 3),
        lambda: reg.inc("query.keyword.count"),
        lambda: reg.set_gauge("lake.tables", 12),
        lambda: reg.set_gauge("embedding.vocabulary", 480),
        lambda: [reg.observe("query.latency_ms", v) for v in (0.2, 3.1, 40.0, 9000.0)],
    ]
    if order == "reverse":
        ops = list(reversed(ops))
    for op in ops:
        op()
    return reg


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("query.latency_ms") == "repro_query_latency_ms"

    def test_illegal_chars_sanitized(self):
        name = prometheus_name("a-b c/d")
        assert re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$", name)


class TestPrometheusExposition:
    def test_every_line_parses(self):
        text = populated_registry().to_prometheus()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert TYPE_RE.match(line), line
            else:
                assert SAMPLE_RE.match(line), line

    def test_counter_gets_total_suffix(self):
        text = populated_registry().to_prometheus()
        assert "repro_search_josie_queries_total 3" in text

    def test_gauge_value(self):
        text = populated_registry().to_prometheus()
        assert "repro_lake_tables 12" in text

    def test_histogram_buckets_cumulative_and_monotone(self):
        text = populated_registry().to_prometheus()
        buckets = []
        for line in text.splitlines():
            m = re.match(
                r"repro_query_latency_ms_bucket\{le=\"([^\"]+)\"\} (\d+)", line
            )
            if m:
                buckets.append((m.group(1), int(m.group(2))))
        assert buckets, "no bucket samples found"
        assert buckets[-1][0] == "+Inf"
        counts = [c for _, c in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        bounds = [float(b) for b, _ in buckets[:-1]]
        assert bounds == sorted(bounds), "le bounds must ascend"
        # +Inf bucket equals the observation count (4, incl. the 9000ms one).
        assert buckets[-1][1] == 4
        assert "repro_query_latency_ms_count 4" in text

    def test_output_is_deterministic_across_insertion_order(self):
        a = populated_registry("forward").to_prometheus()
        b = populated_registry("reverse").to_prometheus()
        assert a == b

    def test_empty_registry_renders_empty_page(self):
        assert MetricsRegistry().to_prometheus() == "\n"


class TestChromeTrace:
    @pytest.fixture()
    def tracer(self):
        t = Tracer(enabled=True)
        with t.span("pipeline.build", tables=3):
            with t.span("stage.embeddings"):
                pass
            with t.span("stage.join_index"):
                pass
        with t.span("query.keyword", q="x"):
            pass
        return t

    def test_loads_as_valid_json(self, tracer):
        blob = json.dumps(tracer.to_chrome_trace())
        trace = json.loads(blob)
        assert isinstance(trace["traceEvents"], list)

    def test_complete_x_events_with_ts_and_dur(self, tracer):
        trace = tracer.to_chrome_trace()
        assert len(trace["traceEvents"]) == 4
        for ev in trace["traceEvents"]:
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0
            assert ev["dur"] >= 0
            assert ev["pid"] == 1 and ev["tid"] >= 1

    def test_children_nest_within_parent_window(self, tracer):
        trace = tracer.to_chrome_trace()
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        parent = by_name["pipeline.build"]
        for child in ("stage.embeddings", "stage.join_index"):
            ev = by_name[child]
            assert ev["ts"] >= parent["ts"]
            assert ev["ts"] + ev["dur"] <= parent["ts"] + parent["dur"] + 1e-3

    def test_attrs_exported_as_args(self, tracer):
        trace = tracer.to_chrome_trace()
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        assert by_name["pipeline.build"]["args"]["tables"] == 3

    def test_empty_tracer(self):
        assert Tracer().to_chrome_trace()["traceEvents"] == []


class TestTelemetryJsonl:
    def test_every_line_is_json_and_typed(self, tmp_path):
        reg = populated_registry()
        tracer = Tracer(enabled=True)
        with tracer.span("query.keyword"):
            pass
        qlog = QueryLog()
        qlog.append(QueryRecord(engine="keyword", query="x", latency_ms=1.5))
        lines = list(
            telemetry_lines(reg, tracer, qlog, extra={"run": "test"})
        )
        types = set()
        for line in lines:
            item = json.loads(line)
            types.add(item["type"])
        assert {"meta", "span", "counter", "gauge", "histogram", "query"} <= types

    def test_write_telemetry_roundtrip(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "telemetry.jsonl"
        n = write_telemetry(str(path), reg, Tracer(), QueryLog())
        assert n == len(path.read_text().strip().splitlines())
        for line in path.read_text().strip().splitlines():
            json.loads(line)

    def test_module_level_defaults_use_globals(self):
        obs.reset()
        obs.METRICS.inc("export.test.counter")
        text = obs.to_prometheus()
        assert "repro_export_test_counter_total 1" in text
        obs.reset()
