"""Tests for data lake organization and the navigation cost model."""

import numpy as np
import pytest

from repro.graph.organize import (
    Organization,
    flat_navigation_cost,
)


def _clustered_vectors(n_clusters=4, per_cluster=8, dim=16, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_clusters, dim)) * 4
    vectors = {}
    for c in range(n_clusters):
        for i in range(per_cluster):
            name = f"c{c}_t{i}"
            vectors[name] = centers[c] + rng.normal(size=dim) * 0.3
    return vectors


@pytest.fixture(scope="module")
def org_and_vectors():
    vectors = _clustered_vectors()
    return Organization.build(vectors, branching=4, max_leaf_size=4), vectors


class TestBuild:
    def test_root_covers_all(self, org_and_vectors):
        org, vectors = org_and_vectors
        assert sorted(org.root.tables) == sorted(vectors)

    def test_leaf_sizes_bounded_or_unsplittable(self, org_and_vectors):
        org, _ = org_and_vectors

        def leaves(node):
            if node.is_leaf:
                yield node
            for c in node.children:
                yield from leaves(c)

        # Allow equality-degenerate leaves, but most should respect the cap.
        sizes = [len(l.tables) for l in leaves(org.root)]
        assert max(sizes) <= 8

    def test_children_partition_parent(self, org_and_vectors):
        org, _ = org_and_vectors

        def check(node):
            if not node.children:
                return
            merged = sorted(t for c in node.children for t in c.tables)
            assert merged == sorted(node.tables)
            for c in node.children:
                check(c)

        check(org.root)

    def test_depth_and_node_count(self, org_and_vectors):
        org, _ = org_and_vectors
        assert org.depth() >= 2
        assert org.num_nodes() > 1

    def test_deterministic(self):
        vectors = _clustered_vectors(seed=3)
        a = Organization.build(vectors, seed=5)
        b = Organization.build(vectors, seed=5)

        def shape(node):
            return (sorted(node.tables), [shape(c) for c in node.children])

        assert shape(a.root) == shape(b.root)


class TestNavigation:
    def test_navigate_reaches_own_cluster(self, org_and_vectors):
        org, vectors = org_and_vectors
        hits = 0
        for name, v in vectors.items():
            found, _steps = org.navigation_success(v, name)
            hits += found
        assert hits / len(vectors) >= 0.8

    def test_navigation_cheaper_than_flat(self, org_and_vectors):
        """The E11 headline shape: organized navigation beats the flat list."""
        org, vectors = org_and_vectors
        probes = [(v, name) for name, v in vectors.items()]
        cost = org.expected_cost(probes)
        assert cost < flat_navigation_cost(len(vectors))

    def test_expected_cost_empty_probes(self, org_and_vectors):
        org, _ = org_and_vectors
        assert org.expected_cost([]) == 0.0

    def test_miss_penalty_used(self, org_and_vectors):
        org, vectors = org_and_vectors
        rng = np.random.default_rng(9)
        # An intent pointing nowhere yields either a miss or a full scan of
        # some leaf; with penalty 0 the cost must drop or stay equal.
        probe = [(rng.normal(size=16), "nonexistent")]
        hi = org.expected_cost(probe, miss_penalty=1000)
        lo = org.expected_cost(probe, miss_penalty=0)
        assert hi >= lo

    def test_flat_cost_half_of_lake(self):
        assert flat_navigation_cost(100) == 50.0
