"""Parallel offline build: a DAG-scheduled build must be bit-identical to
the sequential one, for every online engine."""

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.errors import ConfigError
from repro.core.system import STAGE_DEPS, STAGES, DiscoverySystem
from repro.datalake.table import ColumnRef
from repro.obs import METRICS
from repro.search.explain import summarize_results


def _config():
    return DiscoveryConfig(
        embedding_dim=32, enable_domains=True, num_partitions=4
    )


@pytest.fixture(scope="module")
def sequential(union_corpus):
    return DiscoverySystem(
        union_corpus.lake, _config(), ontology=union_corpus.ontology
    ).build(jobs=1)


@pytest.fixture(scope="module")
def parallel(union_corpus):
    return DiscoverySystem(
        union_corpus.lake, _config(), ontology=union_corpus.ontology
    ).build(jobs=4)


def engine_queries(corpus):
    """One query per online engine, keyed by engine name."""
    qname = corpus.groups[0][0]
    table = corpus.lake.table(qname)
    text_cols = [i for i, _ in table.text_columns()]
    num_cols = [i for i, _ in table.numeric_columns()]
    ref = ColumnRef(qname, text_cols[0])
    cases = {
        "keyword": lambda s: s.keyword_search("group 0", k=5),
        "join_exact": lambda s: s.joinable_search(ref, k=5),
        "join_containment": lambda s: s.joinable_search(
            ref, k=5, method="containment", threshold=0.2
        ),
        "fuzzy_join": lambda s: s.fuzzy_joinable_search(ref, k=5),
        "multi_attribute": lambda s: s.multi_attribute_search(
            table, text_cols[:2], k=5
        ),
        "union_tus": lambda s: s.unionable_search(qname, k=5, method="tus"),
        "union_santos": lambda s: s.unionable_search(
            qname, k=5, method="santos"
        ),
        "union_starmie": lambda s: s.unionable_search(
            qname, k=5, method="starmie"
        ),
    }
    if num_cols:
        cases["correlated"] = lambda s: s.correlated_search(
            qname, text_cols[0], num_cols[0], k=5
        )
    return cases


class TestParity:
    def test_all_engines_identical(self, sequential, parallel, union_corpus):
        cases = engine_queries(union_corpus)
        assert len(cases) >= 8, "expected every engine to be exercised"
        for name, query in cases.items():
            seq = summarize_results(query(sequential))
            par = summarize_results(query(parallel))
            assert seq == par, f"engine {name} diverged between jobs=1/4"

    def test_navigation_identical(self, sequential, parallel):
        assert sequential.navigate("concept_000") == parallel.navigate(
            "concept_000"
        )

    def test_stage_sets_identical(self, sequential, parallel):
        assert list(sequential.stats.stage_seconds) == list(
            parallel.stats.stage_seconds
        )

    def test_stage_seconds_canonical_order(self, parallel):
        names = list(parallel.stats.stage_seconds)
        canonical = [n for n in STAGES if n in names]
        assert names == canonical


class TestBuildKnobs:
    def test_build_jobs_from_config(self, union_corpus):
        cfg = DiscoveryConfig(
            embedding_dim=16, enable_embeddings=False, build_jobs=3
        )
        system = DiscoverySystem(union_corpus.lake, cfg).build()
        assert system.provenance["build_jobs"] == 3

    def test_invalid_jobs_rejected(self, union_corpus):
        with pytest.raises(ConfigError):
            DiscoverySystem(union_corpus.lake).build(jobs=0)
        with pytest.raises(ConfigError):
            DiscoveryConfig(build_jobs=0).validate()

    def test_concurrency_metrics_recorded(self, parallel):
        snap = METRICS.snapshot()
        assert snap["gauges"]["pipeline.build_jobs"] >= 1
        assert snap["gauges"]["pipeline.max_concurrent_stages"] >= 1

    def test_provenance_recorded(self, parallel):
        prov = parallel.provenance
        assert prov["source"] == "build"
        assert prov["build_jobs"] == 4
        assert set(prov["stages"]) <= set(STAGES)

    def test_stage_deps_reference_known_stages(self):
        for stage, deps in STAGE_DEPS.items():
            assert stage in STAGES
            assert set(deps) <= set(STAGES)
