"""Tests for the federated search dispatcher (DiscoverySystem.search).

One request fans out across every applicable registered engine; rankings
are merged with reciprocal-rank fusion into table-level FederatedHits.
"""

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.engine import FederatedHit
from repro.core.errors import LakeError
from repro.core.system import DiscoverySystem
from repro.datalake.table import ColumnRef


@pytest.fixture(scope="module")
def system(union_corpus):
    config = DiscoveryConfig(embedding_dim=32, num_partitions=4)
    return DiscoverySystem(
        union_corpus.lake, config, ontology=union_corpus.ontology
    ).build()


class TestFederatedSearch:
    def test_table_query_fans_out_to_union_engines(
        self, system, union_corpus
    ):
        qname = union_corpus.groups[0][0]
        hits = system.search(qname, k=5)
        assert hits and all(isinstance(h, FederatedHit) for h in hits)
        # The query table itself is excluded from the merged ranking.
        assert all(h.table != qname for h in hits)
        # Same-group tables should dominate the top of the fused ranking.
        group = set(union_corpus.groups[0])
        assert hits[0].table in group
        # Every hit records which engines ranked it, at which position.
        assert all(h.sources for h in hits)
        engines_seen = {name for h in hits for name in h.sources}
        assert engines_seen & {"tus", "starmie", "santos", "mate"}

    def test_column_query_hits_join_engines(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        hits = system.search(ColumnRef(qname, 0), k=5)
        assert hits
        engines_seen = {name for h in hits for name in h.sources}
        assert engines_seen & {"josie", "lshensemble", "jaccard_lsh"}

    def test_text_query_uses_keyword(self, system, union_corpus):
        header = union_corpus.lake.table(
            union_corpus.groups[0][0]
        ).columns[0].name
        token = header.split("_")[0]
        hits = system.search(token, engines=["keyword"], k=5)
        assert hits
        assert all(set(h.sources) == {"keyword"} for h in hits)

    def test_engine_restriction_respected(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        hits = system.search(qname, engines=["tus"], k=5)
        assert hits
        assert all(set(h.sources) == {"tus"} for h in hits)

    def test_unknown_engine_rejected(self, system, union_corpus):
        with pytest.raises(ValueError, match="unknown engines"):
            system.search(union_corpus.groups[0][0], engines=["warp-drive"])

    def test_bad_query_type_rejected(self, system):
        with pytest.raises(ValueError, match="federated query"):
            system.search(12345)

    def test_k_bounds_results(self, system, union_corpus):
        qname = union_corpus.groups[0][0]
        assert len(system.search(qname, k=2)) <= 2

    def test_scores_sorted_descending(self, system, union_corpus):
        hits = system.search(union_corpus.groups[0][0], k=10)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_rrf_rewards_cross_engine_consensus(self, system, union_corpus):
        """A table ranked by several engines outscores a single-engine
        table at the same per-engine rank (the point of using RRF)."""
        hits = system.search(union_corpus.groups[0][0], k=10)
        multi = [h for h in hits if len(h.sources) >= 2]
        if multi:  # corpus-dependent, but the top hit should be consensus
            assert len(hits[0].sources) >= 2

    def test_query_logged_as_federated(self, system, union_corpus):
        from repro import obs

        system.search(union_corpus.groups[0][0], k=3)
        last = obs.QUERY_LOG.records()[-1]
        assert last.engine == "federated"
        assert last.status == "ok"

    def test_unbuilt_system_rejected(self, union_corpus):
        fresh = DiscoverySystem(union_corpus.lake)
        with pytest.raises(LakeError):
            fresh.search("anything")
