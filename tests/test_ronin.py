"""Tests for RONIN online result exploration."""

import numpy as np
import pytest

from repro.graph.ronin import RoninExplorer


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(4)
    out = {}
    for c in range(3):
        center = rng.normal(size=8) * 3
        for i in range(6):
            out[f"g{c}_t{i}"] = center + rng.normal(size=8) * 0.2
    return out


class TestRonin:
    def test_organize_subset_only(self, vectors):
        rx = RoninExplorer(vectors)
        subset = [n for n in vectors if n.startswith("g0")]
        org = rx.organize_results(subset)
        assert sorted(org.root.tables) == sorted(subset)

    def test_unknown_tables_skipped(self, vectors):
        rx = RoninExplorer(vectors)
        org = rx.organize_results(["g0_t0", "ghost"])
        assert org.root.tables == ["g0_t0"]

    def test_all_unknown_raises(self, vectors):
        rx = RoninExplorer(vectors)
        with pytest.raises(ValueError):
            rx.organize_results(["ghost1", "ghost2"])

    def test_drill_down_narrows(self, vectors):
        rx = RoninExplorer(vectors, max_leaf_size=2)
        results = list(vectors)
        org = rx.organize_results(results)
        intent = vectors["g1_t0"]
        at_root = rx.drill_down(org, intent, steps=0)
        deeper = rx.drill_down(org, intent, steps=2)
        assert len(deeper) <= len(at_root)

    def test_drill_down_follows_intent(self, vectors):
        rx = RoninExplorer(vectors, max_leaf_size=3)
        org = rx.organize_results(list(vectors))
        intent = vectors["g2_t0"]
        tables = rx.drill_down(org, intent, steps=3)
        assert any(t.startswith("g2") for t in tables)
