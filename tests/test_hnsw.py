"""Unit + property tests for the HNSW graph index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.sketch.hnsw import HNSW, brute_force_knn


def _random_vectors(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return {i: rng.normal(size=dim) for i in range(n)}


class TestConstruction:
    def test_empty_search(self):
        assert HNSW(dim=4).search(np.zeros(4)) == []

    def test_single_element(self):
        h = HNSW(dim=4)
        h.add("only", np.ones(4))
        assert h.search(np.ones(4), k=3) == [("only", pytest.approx(0.0))]

    def test_duplicate_key_rejected(self):
        h = HNSW(dim=2)
        h.add("k", np.ones(2))
        with pytest.raises(IndexError_):
            h.add("k", np.zeros(2))

    def test_wrong_dim_rejected(self):
        h = HNSW(dim=3)
        with pytest.raises(IndexError_):
            h.add("k", np.ones(4))

    def test_bad_metric_rejected(self):
        with pytest.raises(IndexError_):
            HNSW(dim=2, metric="hamming")

    def test_len(self):
        h = HNSW(dim=2)
        for i in range(5):
            h.add(i, np.array([i, 0.0]))
        assert len(h) == 5

    def test_degree_bound_enforced(self):
        h = HNSW(dim=4, m=4, seed=2)
        vecs = _random_vectors(200, 4, seed=2)
        for k, v in vecs.items():
            h.add(k, v)
        for node, layers in enumerate(h._links):
            for level, links in enumerate(layers):
                limit = h.m0 if level == 0 else h.m
                assert len(links) <= limit

    def test_links_are_bidirectional(self):
        h = HNSW(dim=4, m=4, seed=3)
        for k, v in _random_vectors(100, 4, seed=3).items():
            h.add(k, v)
        for node, layers in enumerate(h._links):
            for level, links in enumerate(layers):
                for nb in links:
                    assert node in h._links[nb][level]


class TestSearchQuality:
    @pytest.mark.parametrize("metric", ["cosine", "l2"])
    def test_recall_at_10(self, metric):
        vecs = _random_vectors(400, 16, seed=1)
        h = HNSW(dim=16, m=8, ef_construction=80, metric=metric, seed=1)
        for k, v in vecs.items():
            h.add(k, v)
        recalls = []
        for q in range(20):
            approx = {k for k, _ in h.search(vecs[q], k=10, ef=80)}
            exact = {k for k, _ in brute_force_knn(vecs, vecs[q], k=10, metric=metric)}
            recalls.append(len(approx & exact) / 10)
        assert np.mean(recalls) >= 0.85

    def test_higher_ef_not_worse(self):
        vecs = _random_vectors(300, 8, seed=4)
        h = HNSW(dim=8, m=6, seed=4)
        for k, v in vecs.items():
            h.add(k, v)
        rec = []
        for ef in (8, 128):
            hits = 0
            for q in range(15):
                approx = {k for k, _ in h.search(vecs[q], k=5, ef=ef)}
                exact = {k for k, _ in brute_force_knn(vecs, vecs[q], k=5)}
                hits += len(approx & exact)
            rec.append(hits)
        assert rec[1] >= rec[0]

    def test_distances_ascending(self):
        vecs = _random_vectors(100, 8, seed=5)
        h = HNSW(dim=8, seed=5)
        for k, v in vecs.items():
            h.add(k, v)
        res = h.search(vecs[0], k=10)
        ds = [d for _, d in res]
        assert ds == sorted(ds)

    def test_self_is_nearest(self):
        vecs = _random_vectors(150, 8, seed=6)
        h = HNSW(dim=8, seed=6)
        for k, v in vecs.items():
            h.add(k, v)
        for q in (0, 50, 100):
            assert h.search(vecs[q], k=1, ef=64)[0][0] == q


class TestBruteForce:
    def test_exact_ordering(self):
        vecs = {i: np.array([float(i), 0.0]) for i in range(10)}
        res = brute_force_knn(vecs, np.array([3.2, 0.0]), k=3, metric="l2")
        assert [k for k, _ in res] == [3, 4, 2]

    def test_k_larger_than_population(self):
        vecs = {0: np.ones(2)}
        assert len(brute_force_knn(vecs, np.ones(2), k=10)) == 1


@given(st.integers(2, 40), st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_search_returns_k_unique_keys(n, seed):
    """Property: search returns min(k, n) distinct keys."""
    vecs = _random_vectors(n, 6, seed=seed)
    h = HNSW(dim=6, seed=seed)
    for k, v in vecs.items():
        h.add(k, v)
    res = h.search(vecs[0], k=10, ef=64)
    keys = [k for k, _ in res]
    assert len(keys) == len(set(keys)) == min(10, n)
