"""Tests for the Engine protocol and registry (repro.core.engine).

Covers the tentpole invariants of the registry refactor: the stage DAG
derivations must reproduce the previously hand-maintained literals, every
registered engine must implement the full protocol (conformance), and the
query-label set must police SLO configuration.
"""

import json

import pytest

import repro.engines  # noqa: F401  - populate the registry
from repro.core.config import DiscoveryConfig
from repro.core.engine import (
    FEDERATED_LABEL,
    REGISTRY,
    Engine,
    EngineRegistry,
    known_query_labels,
)
from repro.core.errors import ConfigError
from repro.core.system import STAGE_DEPS, STAGES, DiscoverySystem
from repro.obs.health import SloObjective


@pytest.fixture(scope="module")
def system(union_corpus):
    config = DiscoveryConfig(
        embedding_dim=32, enable_domains=True, num_partitions=4
    )
    return DiscoverySystem(
        union_corpus.lake, config, ontology=union_corpus.ontology
    ).build()


class TestDerivedDag:
    """STAGES / STAGE_DEPS are now derived; they must equal the literals
    the system shipped with before the registry existed."""

    def test_stage_names_match_legacy_literal(self):
        assert STAGES == (
            "embeddings",
            "domains",
            "annotation",
            "keyword_index",
            "join_index",
            "union_index",
            "correlation_index",
            "mate_index",
            "navigation",
        )
        assert REGISTRY.stage_names() == STAGES

    def test_stage_deps_match_legacy_literal(self):
        assert STAGE_DEPS == {
            "union_index": ("embeddings", "annotation"),
            "navigation": ("embeddings",),
        }
        assert REGISTRY.stage_deps() == STAGE_DEPS

    def test_all_engines_registered(self):
        assert set(REGISTRY.names()) == {
            "keyword",
            "josie",
            "lshensemble",
            "jaccard_lsh",
            "tus",
            "starmie",
            "pexeso",
            "santos",
            "qcr",
            "mate",
            "organization",
        }

    def test_foundations_registered(self):
        assert [c.name for c in REGISTRY.foundations()] == [
            "embeddings",
            "domains",
            "annotation",
        ]


class TestRegistryValidation:
    """A fresh registry rejects malformed engine classes loudly."""

    def test_missing_name_rejected(self):
        reg = EngineRegistry()

        class Nameless(Engine):
            stage = "s"

            def build(self, ctx):
                pass

            def is_built(self):
                return False

            def stats(self):
                return {}

            def to_payload(self):
                return None

            def from_payload(self, payload, ctx):
                pass

        with pytest.raises(ValueError, match="no name"):
            reg.register(Nameless)

    def test_duplicate_name_rejected(self):
        reg = EngineRegistry()

        def make(engine_name):
            class Dummy(Engine):
                name = engine_name
                stage = "s"

                def build(self, ctx):
                    pass

                def is_built(self):
                    return False

                def stats(self):
                    return {}

                def to_payload(self):
                    return None

                def from_payload(self, payload, ctx):
                    pass

            return Dummy

        reg.register(make("dup"))
        with pytest.raises(ValueError, match="duplicate"):
            reg.register(make("dup"))

    def test_bad_category_rejected(self):
        reg = EngineRegistry()

        class BadCat(Engine):
            name = "badcat"
            stage = "s"
            category = "frobnicator"

            def build(self, ctx):
                pass

            def is_built(self):
                return False

            def stats(self):
                return {}

            def to_payload(self):
                return None

            def from_payload(self, payload, ctx):
                pass

        with pytest.raises(ValueError, match="category"):
            reg.register(BadCat)

    def test_unknown_dependency_rejected(self):
        reg = EngineRegistry()

        class Dangling(Engine):
            name = "dangling"
            stage = "s"
            depends_on = ("no_such_stage",)

            def build(self, ctx):
                pass

            def is_built(self):
                return False

            def stats(self):
                return {}

            def to_payload(self):
                return None

            def from_payload(self, payload, ctx):
                pass

        reg.register(Dangling)
        with pytest.raises(ValueError, match="unknown stage"):
            reg.stage_deps()

    def test_unknown_engine_lookup(self):
        with pytest.raises(KeyError, match="registered"):
            REGISTRY.get("warp-drive")


class TestProtocolConformance:
    """CI conformance gate: every registered engine implements the full
    protocol, and its stats are JSON-serializable."""

    @pytest.mark.parametrize(
        "cls", REGISTRY.all(), ids=lambda c: c.name
    )
    def test_declarations_complete(self, cls):
        assert cls.name and isinstance(cls.name, str)
        assert cls.stage in STAGES
        assert isinstance(cls.depends_on, tuple)
        assert all(dep in STAGES for dep in cls.depends_on)
        assert cls.category in ("search", "navigation")
        assert cls.query_label, f"{cls.name} has no query label"
        assert cls.kind, f"{cls.name} has no kind"

    @pytest.mark.parametrize(
        "name", [c.name for c in REGISTRY.all()]
    )
    def test_built_engine_serves_protocol(self, system, name):
        engine = system.engines[name]
        assert engine.is_built(), f"{name} did not build on the corpus"
        stats = engine.stats()
        assert isinstance(stats, dict)
        json.dumps(stats)  # must be JSON-serializable for /indexstats
        assert engine.items(stats) >= 0
        assert engine.kind_of()
        assert engine.memory_object() is not None
        desc = engine.describe()
        json.dumps(desc)
        assert desc["name"] == name

    def test_foundations_report_stats(self, system):
        for name, foundation in system.foundations.items():
            stats = foundation.stats()
            assert isinstance(stats, dict)
            json.dumps(stats)


class TestQueryLabels:
    def test_label_set_contents(self):
        assert known_query_labels() == frozenset(
            {
                "keyword",
                "join",
                "fuzzy_join",
                "multi_attribute",
                "union",
                "correlated",
                "navigate",
                FEDERATED_LABEL,
            }
        )

    def test_slo_with_known_label_accepted(self):
        cfg = DiscoveryConfig(slos=(SloObjective(engine="join"),))
        assert cfg.validate()

    def test_slo_wildcard_accepted(self):
        cfg = DiscoveryConfig(slos=(SloObjective(engine="*"),))
        assert cfg.validate()

    def test_slo_with_unknown_engine_rejected(self):
        cfg = DiscoveryConfig(slos=(SloObjective(engine="warp-drive"),))
        with pytest.raises(ConfigError, match="unknown engine"):
            cfg.validate()
