"""Tests for the experiment harness and bench workloads."""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.workloads import JoinWorkload, UnionWorkload


class TestExperimentTable:
    def test_add_row_and_render(self):
        t = ExperimentTable("demo", ["a", "b"])
        t.add_row(1, 0.5)
        out = t.render()
        assert "demo" in out
        assert "0.500" in out

    def test_row_width_checked(self):
        t = ExperimentTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_notes_rendered(self):
        t = ExperimentTable("demo", ["a"])
        t.add_row(1)
        t.note("shape holds")
        assert "note: shape holds" in t.render()

    def test_column_values(self):
        t = ExperimentTable("demo", ["x", "y"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column_values("y") == [2, 4]

    def test_show_prints(self, capsys):
        t = ExperimentTable("demo", ["x"])
        t.add_row(42)
        t.show()
        assert "42" in capsys.readouterr().out


class TestWorkloads:
    def test_join_workload(self, join_corpus):
        wl = JoinWorkload.from_corpus(join_corpus)
        assert len(wl.queries) == len(join_corpus.queries)
        rel = wl.relevant(0, 0.5)
        assert all(r.table != wl.queries[0][1].table for r in rel)

    def test_join_workload_threshold_monotone(self, join_corpus):
        wl = JoinWorkload.from_corpus(join_corpus)
        assert wl.relevant(0, 0.9) <= wl.relevant(0, 0.3)

    def test_union_workload(self, union_corpus):
        wl = UnionWorkload.from_corpus(union_corpus, queries_per_group=2)
        assert len(wl.queries) == len(union_corpus.groups) * 2
        for name, truth in wl.queries:
            assert name not in truth
