"""Unit + property tests for the from-scratch CSV reader/writer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import CsvFormatError
from repro.datalake.csvio import (
    format_csv_cell,
    parse_csv_text,
    read_table_csv,
    rows_to_csv_text,
    write_table_csv,
)
from repro.datalake.table import Table


class TestParse:
    def test_simple(self):
        assert parse_csv_text("a,b\n1,2\n") == [["a", "b"], ["1", "2"]]

    def test_quoted_delimiter(self):
        assert parse_csv_text('"a,b",c\n') == [["a,b", "c"]]

    def test_escaped_quote(self):
        assert parse_csv_text('"say ""hi""",x\n') == [['say "hi"', "x"]]

    def test_embedded_newline(self):
        assert parse_csv_text('"line1\nline2",x\n') == [["line1\nline2", "x"]]

    def test_crlf_normalized(self):
        assert parse_csv_text("a,b\r\n1,2\r\n") == [["a", "b"], ["1", "2"]]

    def test_no_trailing_newline(self):
        assert parse_csv_text("a,b") == [["a", "b"]]

    def test_empty_fields(self):
        assert parse_csv_text(",,\n") == [["", "", ""]]

    def test_unterminated_quote_raises(self):
        with pytest.raises(CsvFormatError):
            parse_csv_text('"oops')

    def test_mid_field_quote_raises(self):
        with pytest.raises(CsvFormatError):
            parse_csv_text('ab"cd",x\n')

    def test_custom_delimiter(self):
        assert parse_csv_text("a;b\n", delimiter=";") == [["a", "b"]]


class TestFormat:
    def test_plain_cell_unquoted(self):
        assert format_csv_cell("abc") == "abc"

    def test_delimiter_quoted(self):
        assert format_csv_cell("a,b") == '"a,b"'

    def test_quote_doubled(self):
        assert format_csv_cell('a"b') == '"a""b"'

    def test_newline_quoted(self):
        assert format_csv_cell("a\nb") == '"a\nb"'


class TestFileRoundTrip:
    def test_write_read(self, tmp_path, tiny_table):
        path = tmp_path / "t.csv"
        write_table_csv(tiny_table, path)
        back = read_table_csv(path)
        assert back.header == tiny_table.header
        assert back.rows() == tiny_table.rows()

    def test_read_names_from_stem(self, tmp_path, tiny_table):
        path = tmp_path / "myname.csv"
        write_table_csv(tiny_table, path)
        assert read_table_csv(path).name == "myname"

    def test_short_rows_padded(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b,c\n1,2\n", encoding="utf-8")
        t = read_table_csv(path)
        assert t.rows() == [["1", "2", ""]]

    def test_long_rows_truncated(self, tmp_path):
        path = tmp_path / "wide.csv"
        path.write_text("a,b\n1,2,3\n", encoding="utf-8")
        assert read_table_csv(path).rows() == [["1", "2"]]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("a,b\n1,2\n,\n3,4\n", encoding="utf-8")
        assert read_table_csv(path).num_rows == 2

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(CsvFormatError):
            read_table_csv(path)


_cell = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\r"
    ),
    max_size=12,
)


@given(st.lists(st.lists(_cell, min_size=3, max_size=3), min_size=1, max_size=12))
def test_text_round_trip_property(rows):
    """Property: rows -> CSV text -> rows is the identity."""
    text = rows_to_csv_text(rows)
    assert parse_csv_text(text) == [[str(c) for c in r] for r in rows]


@given(st.lists(st.lists(_cell.filter(lambda s: s.strip()), min_size=2,
                         max_size=2), min_size=1, max_size=8))
def test_table_file_round_trip_property(tmp_path_factory, rows):
    """Property: table -> file -> table preserves header and cells."""
    t = Table.from_rows("t", ["h1", "h2"], rows)
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    write_table_csv(t, path)
    back = read_table_csv(path)
    assert back.rows() == t.rows()
