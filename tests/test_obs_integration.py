"""Integration tests: the obs layer wired through the Figure-1 stack.

Builds one traced DiscoverySystem, runs one query per online engine, and
checks the span tree and metric counters the instrumentation promises.
Also exercises the CLI surfaces (``repro profile``, ``--profile``).
"""

import json

import pytest

from repro import obs
from repro.core.cli import main
from repro.core.config import DiscoveryConfig
from repro.core.errors import ConfigError, LakeError
from repro.core.system import DiscoverySystem
from repro.datalake.generate import make_union_corpus
from repro.datalake.table import ColumnRef
from repro.obs import METRICS, TRACER


@pytest.fixture(scope="module")
def traced(union_corpus):
    """A DiscoverySystem built and queried once per engine, under tracing."""
    obs.reset()
    obs.enable_tracing()
    config = DiscoveryConfig(embedding_dim=32, num_partitions=4)
    system = DiscoverySystem(
        union_corpus.lake, config, ontology=union_corpus.ontology
    ).build()
    qname = union_corpus.groups[0][0]
    query_table = union_corpus.lake.table(qname)
    system.keyword_search("concept")
    system.joinable_search(ColumnRef(qname, 0), k=5)
    system.joinable_search(ColumnRef(qname, 0), k=5, method="containment")
    system.unionable_search(qname, k=5, method="starmie")
    system.unionable_search(qname, k=5, method="tus")
    system.correlated_search(qname, 0, min(1, query_table.num_cols - 1), k=5)
    system.multi_attribute_search(query_table, [0], k=5)
    system.fuzzy_joinable_search(ColumnRef(qname, 0), k=5)
    yield system
    obs.disable_tracing()


def span_names(tracer):
    return [s.name for s in tracer.spans()]


class TestPipelineSpans:
    def test_every_enabled_stage_has_a_span(self, traced):
        names = span_names(TRACER)
        assert "pipeline.build" in names
        for stage in traced.stats.stage_seconds:
            assert f"stage.{stage}" in names

    def test_stage_seconds_populated_from_spans(self, traced):
        (build_root,) = [
            r for r in TRACER.roots() if r.name == "pipeline.build"
        ]
        by_name = {c.name: c for c in build_root.children}
        for stage, seconds in traced.stats.stage_seconds.items():
            assert by_name[f"stage.{stage}"].duration_s == seconds

    def test_stage_seconds_populated_with_tracing_disabled(self, union_corpus):
        assert not TRACER.enabled or True  # runs in any order; be explicit
        was_enabled = TRACER.enabled
        TRACER.disable()
        try:
            system = DiscoverySystem(
                union_corpus.lake, DiscoveryConfig(embedding_dim=16)
            ).build()
        finally:
            if was_enabled:
                TRACER.enable()
        assert set(system.stats.stage_seconds) >= {
            "embeddings",
            "keyword_index",
            "join_index",
            "union_index",
        }
        assert all(v >= 0 for v in system.stats.stage_seconds.values())


class TestQuerySpans:
    def test_one_span_per_engine(self, traced):
        names = span_names(TRACER)
        for engine in (
            "keyword",
            "join",
            "union",
            "correlated",
            "multi_attribute",
            "fuzzy_join",
        ):
            assert f"query.{engine}" in names, f"missing query.{engine} span"

    def test_query_spans_carry_candidate_attrs(self, traced):
        by_name: dict[str, list] = {}
        for s in TRACER.spans():
            by_name.setdefault(s.name, []).append(s)

        def some_span_has(name, attr):
            return any(attr in s.attrs for s in by_name[name])

        assert some_span_has("query.keyword", "hits")
        assert some_span_has("query.join", "josie.posting_lists_read")
        assert some_span_has("query.join", "containment.candidates_checked")
        assert some_span_has("query.union", "starmie.candidates_examined")
        assert some_span_has("query.multi_attribute", "mate.rows_checked")


class TestMetricCounters:
    def test_at_least_ten_distinct_metric_names(self, traced):
        assert len(METRICS.names()) >= 10

    def test_engine_counters_recorded(self, traced):
        assert METRICS.counter("search.josie.posting_lists_read") > 0
        assert METRICS.counter("search.josie.sets_verified") > 0
        assert METRICS.counter("index.hnsw.distance_computations") > 0
        assert METRICS.counter("index.lshensemble.candidates_returned") >= 0
        assert METRICS.counter("index.lshensemble.queries") > 0
        assert METRICS.counter("search.keyword.docs_scored") > 0
        assert METRICS.counter("search.mate.rows_checked") > 0
        assert METRICS.counter("search.pexeso.queries") > 0
        assert METRICS.counter("search.qcr.queries") > 0
        assert METRICS.counter("search.starmie.candidates_examined") > 0

    def test_query_latency_histogram(self, traced):
        hist = METRICS.histogram("query.latency_ms")
        assert hist is not None
        assert hist.count >= 8  # one observation per query issued above

    def test_build_counters_recorded(self, traced):
        assert METRICS.counter("pipeline.builds") >= 1
        assert METRICS.counter("index.josie.sets_indexed") > 0
        assert METRICS.counter("index.hnsw.nodes_added") > 0
        assert METRICS.gauge("lake.tables") == len(traced.lake)

    def test_report_is_json_ready(self, traced):
        report = obs.report(extra={"run": "test"})
        blob = json.loads(json.dumps(report))
        assert blob["run"] == "test"
        assert blob["spans"] and blob["metrics"]["counters"]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field", ["embedding_dim", "hnsw_m", "ef_search", "qcr_sketch_size"]
    )
    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_rejected(self, field, bad):
        with pytest.raises(ConfigError, match=field):
            DiscoveryConfig(**{field: bad}).validate()

    def test_positive_accepted(self):
        DiscoveryConfig(
            embedding_dim=1, hnsw_m=2, ef_search=1, qcr_sketch_size=1
        ).validate()


class TestBuildGuard:
    def test_online_methods_demand_build_first(self, union_corpus):
        fresh = DiscoverySystem(union_corpus.lake)
        qname = union_corpus.groups[0][0]
        for call in (
            lambda: fresh.keyword_search("x"),
            lambda: fresh.joinable_search(ColumnRef(qname, 0)),
            lambda: fresh.unionable_search(qname),
            lambda: fresh.correlated_search(qname, 0, 1),
            lambda: fresh.navigate("x"),
            lambda: fresh.organization(),
        ):
            with pytest.raises(LakeError, match="call build\\(\\) first"):
                call()


class TestCliProfile:
    @pytest.fixture(scope="class")
    def lake_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("obs_lake")
        corpus = make_union_corpus(
            n_groups=2, tables_per_group=2, rows_per_table=20, seed=3
        )
        corpus.lake.save_to_directory(directory)
        return directory

    def test_profile_subcommand_emits_json_report(self, lake_dir, capsys):
        assert main(["profile", str(lake_dir)]) == 0
        report = json.loads(capsys.readouterr().out)
        names = [s["name"] for s in report["spans"]]
        assert "pipeline.build" in names
        (build,) = [s for s in report["spans"] if s["name"] == "pipeline.build"]
        child_names = {c["name"] for c in build["children"]}
        for stage in report["stage_seconds"]:
            assert f"stage.{stage}" in child_names
        metric_names = (
            set(report["metrics"]["counters"])
            | set(report["metrics"]["gauges"])
            | set(report["metrics"]["histograms"])
        )
        assert len(metric_names) >= 10
        assert not TRACER.enabled  # profile cleans up after itself

    def test_profile_subcommand_writes_file(self, lake_dir, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        assert main(["profile", str(lake_dir), "-o", str(out_file)]) == 0
        report = json.loads(out_file.read_text())
        assert report["metrics"]["counters"]
        assert "wrote" in capsys.readouterr().out

    def test_profile_flag_prints_query_span(self, lake_dir, capsys):
        rc = main(
            ["keyword", str(lake_dir), "--query", "concept", "--profile"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "-- profile: spans --" in out
        assert "query.keyword" in out
        assert "-- profile: metrics --" in out
        assert "search.keyword.docs_scored" in out
        assert not TRACER.enabled

    def test_profile_flag_on_join_prints_candidate_counters(
        self, lake_dir, capsys
    ):
        rc = main(
            [
                "join",
                str(lake_dir),
                "--table",
                "union_g00_t00",
                "--column",
                "0",
                "--profile",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "query.join" in out
        assert "search.josie.posting_lists_read" in out

    def test_verbose_flag_logs_to_stderr(self, lake_dir, capsys):
        assert main(
            ["keyword", str(lake_dir), "--query", "concept", "-v"]
        ) == 0
        err = capsys.readouterr().err
        assert "loading lake" in err
