"""Tests for EXPLAIN provenance: funnel consistency across engines."""

import pytest

from repro.core.cli import main
from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.lake import ColumnRef
from repro.search.explain import ExplainReport, summarize_results


@pytest.fixture(scope="module")
def system(union_corpus):
    config = DiscoveryConfig(embedding_dim=32, num_partitions=4)
    return DiscoverySystem(union_corpus.lake, config).build()


@pytest.fixture(scope="module")
def qname(union_corpus):
    return union_corpus.groups[0][0]


def check_report(report, engine: str):
    assert isinstance(report, ExplainReport)
    assert report.engine == engine
    assert report.stages, f"{engine} report has no funnel stages"
    counts = list(report.counts().values())
    assert report.is_monotone(), (
        f"{engine} funnel not monotone: {report.counts()}"
    )
    assert counts[-1] >= 0
    # returned <= every earlier (scored/filtered) stage
    assert all(counts[-1] <= c for c in counts)
    # renders without crashing and mentions each stage
    text = report.render()
    for s in report.stages:
        assert s.name in text


class TestReportMechanics:
    def test_stage_chaining_and_counts(self):
        r = ExplainReport("demo").stage("pool", 100).stage("kept", 7, tau=0.5)
        assert r.counts() == {"pool": 100, "kept": 7}
        assert r.stages[1].detail == {"tau": 0.5}

    def test_is_monotone_detects_growth(self):
        r = ExplainReport("demo").stage("a", 5).stage("b", 9)
        assert not r.is_monotone()

    def test_to_dict_round(self):
        r = ExplainReport("demo", query="q", k=3, params={"x": 1})
        r.stage("pool", 10).stage("kept", 2)
        d = r.to_dict()
        assert d["engine"] == "demo"
        assert d["funnel"][0] == {"stage": "pool", "count": 10}

    def test_summarize_results_handles_plain_objects(self):
        class Hit:
            table = "t1"
            score = 0.25

        assert summarize_results([Hit()]) == [("t1", 0.25)]


class TestEngineFunnels:
    """Satellite: JOSIE / MATE / PEXESO funnels are internally consistent."""

    def test_josie_funnel(self, system, qname):
        hits, report = system.joinable_search(
            ColumnRef(qname, 0), k=5, explain=True
        )
        check_report(report, "josie")
        c = report.counts()
        assert c["verified"] <= c["candidates_examined"] <= c["indexed_sets"]
        assert c["returned"] == len(hits) <= 5

    def test_mate_funnel(self, system, union_corpus, qname):
        query = union_corpus.lake.table(qname)
        hits, report = system.multi_attribute_search(query, [0], k=5, explain=True)
        check_report(report, "mate")
        c = report.counts()
        assert c["rows_passed_filter"] <= c["rows_checked"]
        assert c["tables_matched"] <= c["keys_matched"]
        assert c["returned"] == len(hits) <= 5

    def test_pexeso_funnel(self, system, qname):
        hits, report = system.fuzzy_joinable_search(
            ColumnRef(qname, 0), k=5, explain=True
        )
        check_report(report, "pexeso")
        c = report.counts()
        assert c["columns_blocked"] <= c["columns_indexed"]
        assert c["passed_sigma"] <= c["candidates_verified"]
        assert c["returned"] == len(hits) <= 5


class TestExplainAcrossEngines:
    """Every online path supports explain=True and the hits are unchanged."""

    def test_keyword(self, system):
        hits, report = system.keyword_search("concept", k=5, explain=True)
        check_report(report, "keyword")
        plain = system.keyword_search("concept", k=5)
        assert summarize_results(hits) == summarize_results(plain)

    def test_containment(self, system, qname):
        hits, report = system.joinable_search(
            ColumnRef(qname, 0), k=5, method="containment", explain=True
        )
        check_report(report, "lshensemble")
        plain = system.joinable_search(
            ColumnRef(qname, 0), k=5, method="containment"
        )
        assert summarize_results(hits) == summarize_results(plain)

    def test_union_starmie(self, system, qname):
        hits, report = system.unionable_search(qname, k=5, explain=True)
        check_report(report, "starmie")
        plain = system.unionable_search(qname, k=5)
        assert summarize_results(hits) == summarize_results(plain)

    def test_union_tus(self, system, qname):
        hits, report = system.unionable_search(
            qname, k=5, method="tus", explain=True
        )
        check_report(report, "tus")

    def test_correlated(self, system, qname):
        hits, report = system.correlated_search(qname, 0, 1, k=5, explain=True)
        check_report(report, "qcr")

    def test_explain_false_returns_bare_hits(self, system):
        hits = system.keyword_search("concept", k=5)
        assert not isinstance(hits, tuple)


class TestExplainCli:
    def test_query_explain_prints_funnel(self, union_corpus, tmp_path, capsys):
        lake_dir = tmp_path / "lake"
        union_corpus.lake.save_to_directory(lake_dir)
        qname = union_corpus.groups[0][0]
        rc = main(
            [
                "query",
                str(lake_dir),
                "--engine",
                "join",
                "--table",
                qname,
                "--explain",
                "-k",
                "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "josie" in out
        assert "candidates_examined" in out
        assert "returned" in out
