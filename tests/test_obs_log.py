"""Tests for repro.obs.log: logger naming and idempotent configuration."""

import io
import logging

from repro.obs.log import configure, get_logger


class TestGetLogger:
    def test_namespaced_under_repro(self):
        assert get_logger("core.system").name == "repro.core.system"

    def test_already_namespaced_untouched(self):
        assert get_logger("repro.search").name == "repro.search"
        assert get_logger("repro").name == "repro"


class TestConfigure:
    def _our_handlers(self):
        root = logging.getLogger("repro")
        return [
            h for h in root.handlers if getattr(h, "_repro_obs_handler", False)
        ]

    def test_verbosity_levels(self):
        root = configure(0)
        assert root.level == logging.WARNING
        assert configure(1).level == logging.INFO
        assert configure(2).level == logging.DEBUG
        assert configure(5).level == logging.DEBUG

    def test_reconfigure_does_not_stack_handlers(self):
        configure(1)
        configure(2)
        configure(0)
        assert len(self._our_handlers()) == 1

    def test_messages_reach_the_stream(self):
        stream = io.StringIO()
        configure(1, stream=stream)
        get_logger("core.test").info("hello %d", 42)
        assert "hello 42" in stream.getvalue()
        assert "repro.core.test" in stream.getvalue()

    def test_debug_suppressed_at_info(self):
        stream = io.StringIO()
        configure(1, stream=stream)
        get_logger("core.test").debug("secret")
        assert "secret" not in stream.getvalue()
