"""Unit + property tests for SimHash fingerprints."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.simhash import hamming_distance, simhash, simhash_similarity


class TestSimHash:
    def test_deterministic(self):
        assert simhash(["a", "b"]) == simhash(["a", "b"])

    def test_order_invariant(self):
        assert simhash(["a", "b", "c"]) == simhash(["c", "a", "b"])

    def test_identical_similarity_one(self):
        f = simhash(["x", "y"] * 5)
        assert simhash_similarity(f, f) == 1.0

    def test_disjoint_tokens_dissimilar(self):
        a = simhash([f"a{i}" for i in range(50)])
        b = simhash([f"b{i}" for i in range(50)])
        assert simhash_similarity(a, b) < 0.75

    def test_small_perturbation_small_distance(self):
        base = [f"t{i}" for i in range(40)]
        a = simhash(base)
        b = simhash(base + ["extra"])
        assert hamming_distance(a, b) <= 10


class TestHamming:
    def test_zero_distance(self):
        assert hamming_distance(0b1010, 0b1010) == 0

    def test_known_distance(self):
        assert hamming_distance(0b1010, 0b0101) == 4

    def test_symmetry(self):
        assert hamming_distance(123456, 654321) == hamming_distance(
            654321, 123456
        )


@given(st.sets(st.text(min_size=1, max_size=6), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_similarity_bounds(tokens):
    """Property: similarity of any two fingerprints lies in [0, 1]."""
    a = simhash(sorted(tokens))
    b = simhash(sorted(tokens)[: max(1, len(tokens) // 2)])
    assert 0.0 <= simhash_similarity(a, b) <= 1.0
