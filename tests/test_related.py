"""Tests for Das Sarma-style related-table search."""

import pytest

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.search.related import (
    RelatedTableSearch,
    detect_subject_column,
)


@pytest.fixture(scope="module")
def lake():
    query = Table.from_dict(
        "eu_cities",
        {
            "city": ["oslo", "rome", "madrid", "paris"],
            "country": ["norway", "italy", "spain", "france"],
        },
    )
    more_entities = Table.from_dict(
        "more_eu_cities",
        {
            "city": ["berlin", "vienna", "lisbon", "oslo"],
            "country": ["germany", "austria", "portugal", "norway"],
        },
    )
    more_attrs = Table.from_dict(
        "city_details",
        {
            "city": ["oslo", "rome", "madrid", "paris"],
            "elevation": ["23", "21", "667", "35"],
            "mayor": ["a", "b", "c", "d"],
        },
    )
    duplicate = Table.from_dict(
        "same_cities",
        {
            "city": ["oslo", "rome", "madrid", "paris"],
            "country": ["norway", "italy", "spain", "france"],
        },
    )
    unrelated = Table.from_dict(
        "genes", {"gene": ["brca1", "tp53"], "score": ["1", "2"]}
    )
    return DataLake([query, more_entities, more_attrs, duplicate, unrelated])


@pytest.fixture(scope="module")
def search(lake):
    return RelatedTableSearch(lake).build()


class TestSubjectDetection:
    def test_leftmost_distinct_text_column(self):
        t = Table.from_dict(
            "t",
            {
                "category": ["a", "a", "b", "b"],  # low distinct ratio
                "entity": ["w", "x", "y", "z"],
            },
        )
        assert detect_subject_column(t) == 1

    def test_no_text_columns(self):
        t = Table.from_dict("n", {"x": ["1", "2"], "y": ["3", "4"]})
        assert detect_subject_column(t) is None

    def test_subject_of_indexed_tables(self, search):
        assert search.subject_of("eu_cities") == 0
        assert search.subject_of("genes") == 0


class TestEntityComplement:
    def test_new_entities_rank_first(self, search, lake):
        res = search.related("eu_cities", kind="entity-complement")
        names = [r.table for r in res]
        assert names[0] == "more_eu_cities"

    def test_duplicate_table_scores_low(self, search):
        res = {r.table: r.score for r in search.related("eu_cities", k=10)}
        assert res.get("more_eu_cities", 0) > res.get("same_cities", 0)

    def test_unrelated_not_returned(self, search):
        res = [r.table for r in search.related("eu_cities", k=10)]
        assert "genes" not in res


class TestSchemaComplement:
    def test_new_attributes_rank_first(self, search):
        res = search.related(
            "eu_cities", kind="schema-complement", k=10
        )
        assert res and res[0].table == "city_details"

    def test_duplicate_gains_nothing(self, search):
        scores = {
            r.table: r.score
            for r in search.related("eu_cities", kind="schema-complement", k=10)
        }
        assert scores.get("same_cities", 0.0) < scores["city_details"]


class TestApi:
    def test_unknown_kind_rejected(self, search):
        with pytest.raises(ValueError):
            search.related("eu_cities", kind="psychic")

    def test_build_required(self, lake):
        with pytest.raises(RuntimeError):
            RelatedTableSearch(lake).related("eu_cities")

    def test_query_excluded(self, search):
        res = search.related("eu_cities", k=20)
        assert all(r.table != "eu_cities" for r in res)

    def test_scores_sorted(self, search):
        res = search.related("eu_cities", k=20)
        scores = [r.score for r in res]
        assert scores == sorted(scores, reverse=True)
