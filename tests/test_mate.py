"""Tests for MATE multi-attribute join search."""

import pytest

from repro.datalake.generate import make_composite_key_corpus
from repro.search.mate import MateIndex, row_super_key


@pytest.fixture(scope="module")
def mate_corpus():
    return make_composite_key_corpus(n_candidates=18, n_rows=120, seed=5)


@pytest.fixture(scope="module")
def mate(mate_corpus):
    idx = MateIndex()
    idx.index_lake(mate_corpus.lake)
    return idx


class TestSuperKey:
    def test_superset_property(self):
        """A row's super key covers the mask of any subset of its cells."""
        cells = ["a", "b", "c"]
        full = row_super_key(cells)
        sub = row_super_key(["a", "c"])
        assert (full & sub) == sub

    def test_empty_cells_ignored(self):
        assert row_super_key(["", "  "]) == 0

    def test_deterministic(self):
        assert row_super_key(["x", "y"]) == row_super_key(["x", "y"])


class TestSearch:
    def test_ranking_matches_truth(self, mate_corpus, mate):
        res = mate.search(
            mate_corpus.lake.table(mate_corpus.query_table),
            list(mate_corpus.key_columns),
            k=6,
        )
        for hit in res:
            assert hit.score == pytest.approx(
                mate_corpus.truth[hit.table], abs=1e-9
            )
        scores = [h.score for h in res]
        assert scores == sorted(scores, reverse=True)

    def test_single_column_overlap_not_sufficient(self, mate_corpus, mate):
        """Candidates sharing individual values but no pairs score low."""
        res = mate.search(
            mate_corpus.lake.table(mate_corpus.query_table),
            list(mate_corpus.key_columns),
            k=len(mate_corpus.truth),
        )
        got = {h.table: h.score for h in res}
        for name, true_frac in mate_corpus.truth.items():
            if true_frac == 0.0:
                assert got.get(name, 0.0) == 0.0

    def test_query_table_excluded(self, mate_corpus, mate):
        res = mate.search(
            mate_corpus.lake.table(mate_corpus.query_table),
            list(mate_corpus.key_columns),
            k=30,
        )
        assert all(h.table != mate_corpus.query_table for h in res)

    def test_empty_key_columns(self, mate_corpus, mate):
        from repro.datalake.table import Column, Table

        empty = Table("empty_q", [Column("a", ["", ""]), Column("b", ["", ""])])
        assert mate.search(empty, [0, 1]) == []

    def test_filter_prunes_rows(self, mate_corpus, mate):
        stats = mate.filter_stats(
            mate_corpus.lake.table(mate_corpus.query_table),
            list(mate_corpus.key_columns),
        )
        assert stats["rows_passed_filter"] < stats["rows_checked"]


class TestHitOrdering:
    def test_hit_comparison(self):
        from repro.search.mate import MateHit

        a = MateHit("a", 5, 10)
        b = MateHit("b", 3, 10)
        assert a < b
        assert MateHit("x", 0, 0).score == 0.0
