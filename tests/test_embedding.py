"""Tests for PPMI+SVD embedding training and the embedding space."""

import numpy as np
import pytest

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.understanding.embedding import EmbeddingSpace, train_embeddings


class TestEmbeddingSpace:
    def test_vectors_unit_norm(self):
        space = EmbeddingSpace(["a", "b"], np.array([[3.0, 4.0], [1.0, 0.0]]))
        assert np.linalg.norm(space.vector("a")) == pytest.approx(1.0)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingSpace(["a"], np.zeros((2, 3)))

    def test_oov_returns_none(self):
        space = EmbeddingSpace(["a"], np.ones((1, 2)))
        assert space.vector("zzz") is None
        assert "zzz" not in space

    def test_case_insensitive_lookup(self):
        space = EmbeddingSpace(["abc"], np.ones((1, 2)))
        assert space.vector("ABC") is not None

    def test_embed_set_of_unknowns_is_zero(self):
        space = EmbeddingSpace(["a"], np.ones((1, 2)))
        assert np.allclose(space.embed_set(["x", "y"]), 0.0)

    def test_embed_set_unit_norm(self):
        space = EmbeddingSpace(
            ["a", "b"], np.array([[1.0, 0.0], [0.0, 1.0]])
        )
        v = space.embed_set(["a", "b"])
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_cosine_oov_zero(self):
        space = EmbeddingSpace(["a"], np.ones((1, 2)))
        assert space.cosine("a", "zzz") == 0.0

    def test_nearest_excludes_self(self):
        space = EmbeddingSpace(
            ["a", "b", "c"],
            np.array([[1.0, 0.0], [0.9, 0.1], [0.0, 1.0]]),
        )
        names = [n for n, _ in space.nearest("a", k=2)]
        assert "a" not in names
        assert names[0] == "b"


class TestTraining:
    def test_same_domain_closer_than_cross(self, union_corpus, union_space):
        pool = union_corpus.pool
        d0 = pool.domain(0).values
        d9 = pool.domain(9).values
        same = union_space.cosine(d0[0], d0[1])
        cross = union_space.cosine(d0[0], d9[0])
        assert same > cross + 0.2

    def test_deterministic(self, union_corpus):
        a = train_embeddings(union_corpus.lake, dim=16, seed=5)
        b = train_embeddings(union_corpus.lake, dim=16, seed=5)
        assert a.vocab == b.vocab
        assert np.allclose(a.vectors, b.vectors)

    def test_min_count_filters_vocab(self, union_corpus):
        strict = train_embeddings(union_corpus.lake, dim=8, min_count=5)
        loose = train_embeddings(union_corpus.lake, dim=8, min_count=1)
        assert len(strict.vocab) <= len(loose.vocab)

    def test_tiny_lake_degenerates_gracefully(self):
        lake = DataLake([Table.from_dict("t", {"a": ["x", "y"]})])
        space = train_embeddings(lake, dim=8, min_count=1)
        assert isinstance(space, EmbeddingSpace)

    def test_requested_dim_respected(self, union_corpus):
        space = train_embeddings(union_corpus.lake, dim=24)
        assert space.dim == 24
