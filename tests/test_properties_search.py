"""Cross-cutting property-based tests on search invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.organize import Organization
from repro.search.aggregate import table_unionability
from repro.sketch.lshensemble import LSHEnsemble
from repro.sketch.minhash import MinHash


@given(
    st.lists(
        st.sets(st.integers(0, 80), min_size=2, max_size=40),
        min_size=2,
        max_size=12,
    ),
    st.integers(0, 11),
)
@settings(max_examples=25, deadline=None)
def test_ensemble_identity_recall(sets, query_idx):
    """Property: querying LSH Ensemble with an indexed set's own signature
    at threshold 1.0 returns that set (exact self-containment)."""
    query_idx = query_idx % len(sets)
    entries = []
    for i, s in enumerate(sets):
        tokens = {str(x) for x in s}
        entries.append((i, MinHash.from_values(tokens), len(tokens)))
    ens = LSHEnsemble(num_partitions=4)
    ens.index(entries)
    q_tokens = {str(x) for x in sets[query_idx]}
    found = ens.query(
        MinHash.from_values(q_tokens), len(q_tokens), 1.0
    )
    assert query_idx in found


@given(
    st.integers(1, 6),
    st.integers(1, 6),
    st.integers(0, 10_000),
    st.sampled_from(["hungarian", "greedy"]),
)
@settings(max_examples=50, deadline=None)
def test_table_unionability_normalized(nq, nc, seed, method):
    """Property: normalized table unionability of a [0,1] score matrix lies
    in [0, 1], and equals 0 iff the matrix is all zeros."""
    rng = np.random.default_rng(seed)
    scores = rng.uniform(0, 1, size=(nq, nc))
    total, pairs = table_unionability(scores, method=method)
    assert 0.0 <= total <= 1.0 + 1e-9
    if scores.max() > 0:
        assert total > 0
        assert pairs


@given(st.integers(4, 30), st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_organization_partitions_and_navigates(n, seed):
    """Property: any organization partitions its tables at every level and
    greedy navigation always terminates at a leaf of the hierarchy."""
    rng = np.random.default_rng(seed)
    vectors = {f"t{i}": rng.normal(size=6) for i in range(n)}
    org = Organization.build(vectors, branching=3, max_leaf_size=3, seed=seed)

    def check(node):
        if node.children:
            merged = sorted(t for c in node.children for t in c.tables)
            assert merged == sorted(node.tables)
            for c in node.children:
                check(c)

    check(org.root)
    path, tables = org.navigate(rng.normal(size=6))
    assert path[0] == org.root.node_id
    assert set(tables) <= set(org.root.tables)
    assert len(tables) >= 1


@given(
    st.sets(st.text(min_size=1, max_size=5), min_size=1, max_size=30),
    st.sets(st.text(min_size=1, max_size=5), min_size=1, max_size=30),
)
@settings(max_examples=30, deadline=None)
def test_minhash_merge_monotone(a, b):
    """Property: merged signatures estimate union-vs-part Jaccard at least
    as large as the disjoint-union lower bound |A|/(|A|+|B|) - slack."""
    ma = MinHash.from_values(a)
    mb = MinHash.from_values(b)
    merged = ma.merge(mb)
    j = merged.jaccard(ma)
    lower = len(a) / (len(a) + len(b))
    assert j >= lower - 0.35  # 4-sigma MinHash slack at 128 perms


class TestResultOrderingContracts:
    def test_column_result_total_order(self):
        from repro.datalake.table import ColumnRef
        from repro.search.results import ColumnResult, top_k

        results = [
            ColumnResult(ColumnRef("b", 0), 0.5),
            ColumnResult(ColumnRef("a", 0), 0.5),
            ColumnResult(ColumnRef("c", 0), 0.9),
        ]
        ranked = top_k(results, 3)
        assert ranked[0].score == pytest.approx(0.9)
        assert [r.ref.table for r in ranked[1:]] == ["a", "b"]

    def test_table_result_total_order(self):
        from repro.search.results import TableResult, top_k

        results = [TableResult("b", 1.0), TableResult("a", 1.0)]
        assert [r.table for r in top_k(results, 2)] == ["a", "b"]
