"""Tests for repro.obs.metrics: counters, gauges, histogram bucketing."""

import json
import threading

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounters:
    def test_inc_defaults_to_one_and_accumulates(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        assert m.counter("a") == 5

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0


class TestGauges:
    def test_set_overwrites(self):
        m = MetricsRegistry()
        m.set_gauge("g", 1.5)
        m.set_gauge("g", 2.5)
        assert m.gauge("g") == 2.5
        assert m.gauge("missing") is None


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        # `le` semantics: a value exactly on a bound belongs to that bucket.
        h = Histogram(buckets=(1.0, 5.0, 10.0))
        h.observe(1.0)
        h.observe(5.0)
        h.observe(10.0)
        assert h.counts == [1, 1, 1]
        assert h.overflow == 0

    def test_below_first_and_above_last(self):
        h = Histogram(buckets=(1.0, 5.0))
        h.observe(-3.0)
        h.observe(0.0)
        h.observe(5.0001)
        h.observe(1e9)
        assert h.counts == [2, 0]
        assert h.overflow == 2

    def test_count_sum_min_max(self):
        h = Histogram(buckets=(10.0,))
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 12.0
        assert h.min == 2.0
        assert h.max == 6.0

    def test_unsorted_bucket_spec_is_sorted(self):
        h = Histogram(buckets=(10.0, 1.0, 5.0))
        assert h.buckets == (1.0, 5.0, 10.0)

    def test_to_dict_buckets_labelled(self):
        h = Histogram(buckets=(1.0, 5.0))
        h.observe(0.5)
        h.observe(99.0)
        d = h.to_dict()
        assert d["buckets"] == {"<=1": 1, "<=5": 0, "+inf": 1}

    def test_empty_histogram_min_max_none(self):
        d = Histogram().to_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None

    def test_registry_observe_creates_default_buckets(self):
        m = MetricsRegistry()
        m.observe("lat", 3.0)
        assert m.histogram("lat").buckets == tuple(sorted(DEFAULT_BUCKETS))

    def test_registry_custom_buckets_only_on_first_observe(self):
        m = MetricsRegistry()
        m.observe("lat", 3.0, buckets=(1.0, 10.0))
        m.observe("lat", 4.0, buckets=(99.0,))  # ignored: already created
        assert m.histogram("lat").buckets == (1.0, 10.0)
        assert m.histogram("lat").count == 2


class TestSnapshot:
    def test_snapshot_is_deterministic(self):
        # Same metrics recorded in different orders -> identical JSON.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x"), a.inc("y", 2), a.set_gauge("g", 1), a.observe("h", 3.0)
        b.observe("h", 3.0), b.set_gauge("g", 1), b.inc("y", 2), b.inc("x")
        assert json.dumps(a.snapshot()) == json.dumps(b.snapshot())

    def test_snapshot_keys_sorted(self):
        m = MetricsRegistry()
        m.inc("zz")
        m.inc("aa")
        assert list(m.snapshot()["counters"]) == ["aa", "zz"]

    def test_snapshot_round_trips_through_json(self):
        m = MetricsRegistry()
        m.inc("c", 2)
        m.set_gauge("g", 0.5)
        m.observe("h", 1.0)
        again = json.loads(json.dumps(m.snapshot()))
        assert again["counters"]["c"] == 2
        assert again["histograms"]["h"]["count"] == 1

    def test_names_lists_every_kind(self):
        m = MetricsRegistry()
        m.inc("c")
        m.set_gauge("g", 1)
        m.observe("h", 1.0)
        assert m.names() == ["c", "g", "h"]

    def test_reset(self):
        m = MetricsRegistry()
        m.inc("c")
        m.set_gauge("g", 1)
        m.observe("h", 1.0)
        m.reset()
        assert m.names() == []


class TestRender:
    def test_render_mentions_every_metric(self):
        m = MetricsRegistry()
        m.inc("my.counter", 3)
        m.set_gauge("my.gauge", 7)
        m.observe("my.hist", 2.0)
        text = m.render()
        assert "my.counter = 3" in text
        assert "my.gauge = 7" in text
        assert "my.hist: count=1" in text


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        m = MetricsRegistry()

        def worker():
            for _ in range(1000):
                m.inc("n")
                m.observe("h", 1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("n") == 8000
        assert m.histogram("h").count == 8000
