"""Tests for PEXESO fuzzy joinable search."""

import pytest

from repro.search.pexeso import (
    PexesoConfig,
    PexesoIndex,
    exact_fuzzy_join_fraction,
)


@pytest.fixture(scope="module")
def pexeso(union_corpus, union_space):
    return PexesoIndex(
        union_space, PexesoConfig(tau=0.7, sigma=0.4)
    ).build(union_corpus.lake)


class TestSearch:
    def test_search_before_build_rejected(self, union_space):
        idx = PexesoIndex(union_space)
        from repro.datalake.table import Column

        with pytest.raises(RuntimeError):
            idx.search(Column("q", ["a"]))

    def test_finds_same_domain_columns(self, union_corpus, pexeso):
        qname = union_corpus.groups[0][0]
        qtable = union_corpus.lake.table(qname)
        res = pexeso.search(qtable.columns[0], k=8, exclude_table=qname)
        assert res
        group_tables = union_corpus.truth[qname]
        assert any(r.ref.table in group_tables for r in res)

    def test_exclude_table(self, union_corpus, pexeso):
        qname = union_corpus.groups[0][0]
        qtable = union_corpus.lake.table(qname)
        res = pexeso.search(qtable.columns[0], k=10, exclude_table=qname)
        assert all(r.ref.table != qname for r in res)

    def test_scores_meet_sigma(self, union_corpus, pexeso):
        qname = union_corpus.groups[1][0]
        qtable = union_corpus.lake.table(qname)
        for r in pexeso.search(qtable.columns[0], k=10):
            assert r.score >= pexeso.config.sigma

    def test_oov_query_returns_empty(self, union_corpus, pexeso):
        from repro.datalake.table import Column

        res = pexeso.search(Column("q", ["never-seen-1", "never-seen-2"]))
        assert res == []

    def test_block_agrees_with_exact_verification(
        self, union_corpus, union_space, pexeso
    ):
        """Scores reported by blocked search equal brute-force fractions."""
        qname = union_corpus.groups[0][0]
        qtable = union_corpus.lake.table(qname)
        res = pexeso.search(qtable.columns[0], k=3, exclude_table=qname)
        for r in res[:2]:
            cand_col = union_corpus.lake.column(r.ref)
            exact = exact_fuzzy_join_fraction(
                union_space,
                set(qtable.columns[0].value_set()),
                set(cand_col.value_set()),
                tau=pexeso.config.tau,
            )
            assert r.score == pytest.approx(exact, abs=0.05)


class TestFuzzyVsExact:
    def test_fuzzy_recovers_disjoint_same_domain(
        self, union_corpus, union_space
    ):
        """E19 shape: equi-join containment can be ~0 while fuzzy matching
        by embedding finds the same-domain column."""
        qname, cname = union_corpus.groups[0][0], union_corpus.groups[0][1]
        q = union_corpus.lake.table(qname).columns[0]
        # Align by ontology concept.
        onto = union_corpus.ontology
        q_cls = onto.annotate_column(q.non_null_values())
        cand_table = union_corpus.lake.table(cname)
        for ci, ccol in cand_table.text_columns():
            if onto.annotate_column(ccol.non_null_values()) == q_cls:
                qset = set(q.value_set())
                cset = set(ccol.value_set())
                exact_containment = len(qset & cset) / len(qset)
                fuzzy = exact_fuzzy_join_fraction(
                    union_space, qset, cset, tau=0.7
                )
                assert fuzzy >= exact_containment
                return
        pytest.fail("no aligned candidate column")
