"""Tests for Starmie-style contextual column encoding."""

import numpy as np
import pytest

from repro.datalake.table import Column, Table
from repro.understanding.contextual import (
    ContextualColumnEncoder,
    train_contrastive_projection,
)


class TestEncoder:
    def test_unit_vectors(self, union_corpus, union_space):
        enc = ContextualColumnEncoder(union_space)
        table = next(iter(union_corpus.lake))
        for v in enc.encode_table(table):
            assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-9)

    def test_bad_context_weight_rejected(self, union_space):
        with pytest.raises(ValueError):
            ContextualColumnEncoder(union_space, context_weight=1.0)

    def test_zero_context_weight_is_plain_embedding(
        self, union_corpus, union_space
    ):
        enc = ContextualColumnEncoder(union_space, context_weight=0.0)
        table = union_corpus.lake.table(union_corpus.groups[0][0])
        vecs = enc.encode_table(table)
        col = table.columns[0]
        plain = union_space.embed_set(col.non_null_values())
        assert float(np.dot(vecs[0], plain)) == pytest.approx(1.0, abs=1e-6)

    def test_context_changes_representation(self, union_corpus, union_space):
        """The Starmie property: the same column embeds differently in a
        different table context."""
        table = union_corpus.lake.table(union_corpus.groups[0][0])
        other = union_corpus.lake.table(union_corpus.groups[1][0])
        col = table.columns[0]
        enc = ContextualColumnEncoder(union_space, context_weight=0.5)
        in_own = enc.encode_table(table)[0]
        moved = Table("hybrid", [col] + list(other.columns[1:]))
        in_other = enc.encode_table(moved)[0]
        assert float(np.dot(in_own, in_other)) < 0.999

    def test_encode_column_matches_table(self, union_corpus, union_space):
        enc = ContextualColumnEncoder(union_space)
        table = union_corpus.lake.table(union_corpus.groups[0][0])
        assert np.allclose(
            enc.encode_column(table, 1), enc.encode_table(table)[1]
        )

    def test_single_column_table(self, union_space):
        enc = ContextualColumnEncoder(union_space)
        t = Table("solo", [Column("c", ["d000_v00000", "d000_v00001"])])
        vecs = enc.encode_table(t)
        assert len(vecs) == 1


class TestContrastiveTraining:
    def test_projection_shape(self, union_corpus, union_space):
        w = train_contrastive_projection(
            union_space, list(union_corpus.lake), n_epochs=3, seed=1
        )
        assert w.shape == (union_space.dim, union_space.dim)

    def test_deterministic(self, union_corpus, union_space):
        tables = list(union_corpus.lake)
        a = train_contrastive_projection(union_space, tables, n_epochs=3, seed=2)
        b = train_contrastive_projection(union_space, tables, n_epochs=3, seed=2)
        assert np.allclose(a, b)

    def test_too_few_columns_gives_identity(self, union_space):
        w = train_contrastive_projection(union_space, [], n_epochs=2)
        assert np.allclose(w, np.eye(union_space.dim))

    def test_projection_keeps_same_column_views_close(
        self, union_corpus, union_space
    ):
        tables = list(union_corpus.lake)
        w = train_contrastive_projection(
            union_space, tables, n_epochs=15, seed=3
        )
        enc = ContextualColumnEncoder(union_space, projection=w)
        table = tables[0]
        vecs = enc.encode_table(table)
        assert all(np.isfinite(v).all() for v in vecs)
