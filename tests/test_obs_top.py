"""Tests for the `repro top` terminal dashboard against a live server."""

import io

import pytest

from repro import obs
from repro.core.cli import main
from repro.obs.server import ObservabilityServer
from repro.obs.top import TopDashboard


@pytest.fixture()
def server():
    obs.reset()
    for i in range(10):
        obs.QUERY_LOG.append(
            obs.QueryRecord(engine="join", query=f"q{i}", latency_ms=4.0 + i)
        )
    for i in range(5):
        obs.QUERY_LOG.append(
            obs.QueryRecord(
                engine="keyword",
                query=f"kw{i}",
                latency_ms=900.0,
                status="error",
                error="ValueError",
            )
        )
    srv = ObservabilityServer(port=0)
    srv.start()
    yield srv
    srv.stop()
    obs.reset()


class TestTopDashboard:
    def test_single_refresh_renders_engine_rows(self, server):
        out = io.StringIO()
        dash = TopDashboard(server.url)
        frames = dash.run(iterations=1, interval=0.0, out=out, clear=False)
        assert frames == 1
        text = out.getvalue()
        assert "repro top" in text
        assert "ENGINE" in text and "P95MS" in text and "BURN" in text
        assert "join" in text and "keyword" in text
        # The keyword engine is 100% errors and slow: the SLO breaches.
        assert "SLO BREACH" in text
        assert "breaches:" in text

    def test_engine_rows_aggregate(self, server):
        dash = TopDashboard(server.url)
        rows = {r["engine"]: r for r in dash.engine_rows(dash.fetch())}
        assert rows["join"]["queries"] == 10
        assert rows["join"]["error_rate"] == 0.0
        assert rows["keyword"]["error_rate"] == 1.0
        assert rows["keyword"]["p95_ms"] == pytest.approx(900.0)
        assert rows["keyword"]["burn"] > 1.0

    def test_clear_sequence_emitted_when_requested(self, server):
        out = io.StringIO()
        TopDashboard(server.url).run(
            iterations=1, interval=0.0, out=out, clear=True
        )
        assert out.getvalue().startswith("\x1b[H\x1b[2J")

    def test_empty_log_renders_placeholder(self):
        obs.reset()
        with ObservabilityServer(port=0) as srv:
            out = io.StringIO()
            TopDashboard(srv.url).run(
                iterations=1, interval=0.0, out=out, clear=False
            )
        assert "(no queries logged yet)" in out.getvalue()
        obs.reset()

    def test_cli_top_exits_zero(self, server, capsys):
        rc = main(
            ["top", "--url", server.url, "--iterations", "1", "--interval", "0"]
        )
        assert rc == 0
        assert "repro top" in capsys.readouterr().out

    def test_cli_top_unreachable_server_errors(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "top",
                    "--url",
                    "http://127.0.0.1:1",
                    "--iterations",
                    "1",
                ]
            )
