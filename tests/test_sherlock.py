"""Tests for Sherlock-style semantic type detection."""

import random

import numpy as np
import pytest

from repro.datalake.generate import generate_typed_values
from repro.datalake.table import Column
from repro.understanding.sherlock import SherlockTypeDetector, SoftmaxClassifier


def _typed_columns(types, per_type=10, rows=25, seed=0):
    rng = random.Random(seed)
    cols, labels = [], []
    for t in types:
        for _ in range(per_type):
            cols.append(Column("c", generate_typed_values(t, rows, rng)))
            labels.append(t)
    return cols, labels


class TestSoftmaxClassifier:
    def test_fits_separable_data(self):
        rng = np.random.default_rng(0)
        x0 = rng.normal(loc=-2, size=(40, 3))
        x1 = rng.normal(loc=+2, size=(40, 3))
        x = np.vstack([x0, x1])
        y = ["neg"] * 40 + ["pos"] * 40
        clf = SoftmaxClassifier(n_epochs=200).fit(x, y)
        preds = clf.predict(x)
        assert np.mean([p == t for p, t in zip(preds, y)]) > 0.95

    def test_predict_proba_rows_sum_to_one(self):
        x = np.random.default_rng(1).normal(size=(20, 4))
        y = ["a"] * 10 + ["b"] * 10
        clf = SoftmaxClassifier(n_epochs=50).fit(x, y)
        p = clf.predict_proba(x)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxClassifier().predict_proba(np.zeros((1, 2)))

    def test_constant_feature_no_crash(self):
        x = np.ones((10, 3))
        y = ["a"] * 5 + ["b"] * 5
        clf = SoftmaxClassifier(n_epochs=10).fit(x, y)
        assert len(clf.predict(x)) == 10

    def test_classes_sorted(self):
        x = np.random.default_rng(2).normal(size=(9, 2))
        clf = SoftmaxClassifier(n_epochs=5).fit(x, ["z", "a", "m"] * 3)
        assert clf.classes_ == ["a", "m", "z"]


class TestSherlockDetector:
    def test_distinguishes_clear_types(self):
        types = ["email", "year", "price", "person_name"]
        cols, labels = _typed_columns(types, per_type=12, seed=1)
        n = len(cols)
        idx = list(range(n))
        random.Random(0).shuffle(idx)
        cols = [cols[i] for i in idx]
        labels = [labels[i] for i in idx]
        cut = int(0.7 * n)
        det = SherlockTypeDetector(n_epochs=200).fit(cols[:cut], labels[:cut])
        preds = det.predict(cols[cut:])
        acc = np.mean([p == t for p, t in zip(preds, labels[cut:])])
        assert acc >= 0.8

    def test_predict_proba_shape(self):
        cols, labels = _typed_columns(["email", "year"], per_type=6, seed=2)
        det = SherlockTypeDetector(n_epochs=50).fit(cols, labels)
        p = det.predict_proba(cols[:3])
        assert p.shape == (3, 2)

    def test_classes_exposed(self):
        cols, labels = _typed_columns(["email", "year"], per_type=4, seed=3)
        det = SherlockTypeDetector(n_epochs=20).fit(cols, labels)
        assert det.classes_ == ["email", "year"]
