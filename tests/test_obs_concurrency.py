"""Satellite: hammer the observability singletons from many threads while
an HTTP scraper reads /metrics — totals must stay consistent and no request
may error."""

import json
import threading
import urllib.request

import pytest

from repro import obs
from repro.obs.server import ObservabilityServer

N_THREADS = 8
N_ITERS = 200


@pytest.fixture(autouse=True)
def clean_obs():
    # DiscoverySystem no longer resets the sampler on every __init__, so
    # the rate=0.5 configured below would leak into later test modules.
    was_enabled = obs.TRACER.enabled
    rate, slow_ms = obs.SAMPLER.rate, obs.SAMPLER.slow_ms
    obs.reset()
    yield
    obs.QUERY_LOG.configure(capacity=1024, sink="")
    obs.configure_sampling(rate=rate, slow_ms=slow_ms)
    if not was_enabled:
        obs.TRACER.disable()
    obs.reset()


def test_concurrent_writers_and_scraper():
    obs.QUERY_LOG.configure(capacity=N_THREADS * N_ITERS + 10)
    obs.TRACER.enable()
    obs.configure_sampling(rate=0.5, slow_ms=None, seed=2)
    start = threading.Barrier(N_THREADS + 1)
    errors: list[BaseException] = []

    def worker(tid: int) -> None:
        try:
            start.wait()
            for i in range(N_ITERS):
                obs.METRICS.inc("conc.queries")
                obs.METRICS.observe("conc.latency_ms", float(i % 17))
                obs.METRICS.set_gauge(f"conc.worker.{tid}", i)
                with obs.TRACER.span("conc.query", worker=tid):
                    pass
                obs.QUERY_LOG.append(
                    obs.QueryRecord(
                        engine=f"e{tid % 3}",
                        query=f"w{tid}.q{i}",
                        latency_ms=0.1,
                    )
                )
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(tid,)) for tid in range(N_THREADS)
    ]
    for t in threads:
        t.start()

    with ObservabilityServer(port=0) as srv:
        start.wait()
        scrapes = 0
        while any(t.is_alive() for t in threads):
            with urllib.request.urlopen(srv.url + "/metrics", timeout=5) as r:
                assert r.status == 200
            with urllib.request.urlopen(srv.url + "/querylog?n=5", timeout=5) as r:
                json.loads(r.read().decode())
            scrapes += 1
        for t in threads:
            t.join()
        # One final consistent scrape after all writers are done.
        with urllib.request.urlopen(srv.url + "/metrics", timeout=5) as r:
            body = r.read().decode()
        with urllib.request.urlopen(srv.url + "/slo", timeout=5) as r:
            slo = json.loads(r.read().decode())

    assert not errors, errors
    assert scrapes >= 1
    total = N_THREADS * N_ITERS
    assert f"repro_conc_queries_total {total}" in body
    assert obs.METRICS.snapshot()["counters"]["conc.queries"] == total
    assert obs.QUERY_LOG.total == total
    assert len(obs.QUERY_LOG.records()) == total
    # Sampling decisions happened once per root span, under contention.
    stats = obs.SAMPLER.stats()
    assert stats["decisions"] == total
    assert stats["kept"] + stats["dropped"] == total
    assert len(obs.TRACER.roots()) == stats["kept"]
    assert slo["ok"] is True
