"""Tests for stable hashing and the universal hash family."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.sketch.hashing import (
    MERSENNE_31,
    UniversalHashFamily,
    hash_tokens,
    stable_hash64,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("abc") == stable_hash64("abc")

    def test_seed_changes_hash(self):
        assert stable_hash64("abc", 0) != stable_hash64("abc", 1)

    def test_distinct_tokens_differ(self):
        assert stable_hash64("abc") != stable_hash64("abd")

    def test_hash_tokens_vectorized(self):
        hs = hash_tokens(["a", "b", "a"])
        assert hs.dtype == np.uint64
        assert hs[0] == hs[2] != hs[1]


class TestUniversalFamily:
    def test_output_range(self):
        fam = UniversalHashFamily(8, seed=1)
        out = fam.apply(hash_tokens([f"t{i}" for i in range(100)]))
        assert out.shape == (8, 100)
        assert out.max() < MERSENNE_31

    def test_functions_differ(self):
        fam = UniversalHashFamily(16, seed=1)
        out = fam.apply(hash_tokens(["x"]))
        assert len(set(out[:, 0].tolist())) > 8

    def test_apply_one_matches_apply(self):
        fam = UniversalHashFamily(4, seed=2)
        v = hash_tokens(["hello"])
        assert np.array_equal(fam.apply_one(int(v[0])), fam.apply(v)[:, 0])

    def test_seeded_reproducibility(self):
        a = UniversalHashFamily(4, seed=5)
        b = UniversalHashFamily(4, seed=5)
        assert np.array_equal(a.a, b.a) and np.array_equal(a.b, b.b)


@given(st.text(max_size=30), st.integers(0, 2**31 - 1))
def test_stable_hash_is_pure(token, seed):
    """Property: hashing is a pure function of (token, seed)."""
    assert stable_hash64(token, seed) == stable_hash64(token, seed)


@given(st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=30,
                unique=True))
def test_family_collision_rate_low(tokens):
    """Property: pairwise-independent family rarely collides on small sets."""
    fam = UniversalHashFamily(1, seed=0)
    out = fam.apply(hash_tokens(tokens))[0]
    # With p ~ 2^31 and <= 30 inputs, collisions should be essentially absent.
    assert len(set(out.tolist())) >= len(tokens) - 1
