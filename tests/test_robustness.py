"""Failure injection / robustness: the full system on hostile inputs.

Real lakes contain empty tables, unicode soup, huge cells, all-null
columns, and single-row fragments; none of that should crash the offline
pipeline or the online APIs.
"""

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.lake import DataLake
from repro.datalake.table import Column, ColumnRef, Table


@pytest.fixture(scope="module")
def hostile_lake():
    tables = [
        Table("empty_table", []),
        Table.from_dict("single_cell", {"a": ["x"]}),
        Table.from_dict(
            "all_nulls", {"n1": ["", "NA", "null"], "n2": ["-", "?", ""]}
        ),
        Table.from_dict(
            "unicode_soup",
            {
                "text": ["café", "naïve", "日本語", "emoji 🎉", "Ωμέγα"],
                "mixed": ["1", "two", "", "四", "5.5"],
            },
        ),
        Table.from_dict(
            "huge_cells",
            {
                "blob": ["x" * 5000, "y" * 5000],
                "num": ["1", "2"],
            },
        ),
        Table.from_dict(
            "duplicate_headers",
            {"col": ["a", "b"]},
        ),
        Table(
            "same_header_twice",
            [Column("dup", ["1", "2"]), Column("dup", ["p", "q"])],
        ),
        Table.from_dict(
            "normal",
            {
                "city": ["oslo", "rome", "lima", "cairo"],
                "pop": ["7", "28", "97", "95"],
            },
        ),
        Table.from_dict(
            "normal_two",
            {
                "city": ["oslo", "rome", "quito", "hanoi"],
                "area": ["454", "1285", "372", "3324"],
            },
        ),
    ]
    return DataLake(tables)


@pytest.fixture(scope="module")
def system(hostile_lake):
    return DiscoverySystem(
        hostile_lake,
        DiscoveryConfig(
            embedding_dim=8, embedding_min_count=1, enable_domains=True
        ),
    ).build()


class TestPipelineSurvives:
    def test_build_completes(self, system):
        assert system.stats.tables == 9

    def test_keyword_on_hostile(self, system):
        assert isinstance(system.keyword_search("city"), list)

    def test_joinable_on_normal_column(self, system):
        res = system.joinable_search(ColumnRef("normal", 0), k=5)
        assert any(r.ref.table == "normal_two" for r in res)

    def test_joinable_on_unicode(self, system):
        res = system.joinable_search(ColumnRef("unicode_soup", 0), k=5)
        assert isinstance(res, list)

    def test_union_on_hostile(self, system):
        res = system.unionable_search("normal", k=3, method="tus")
        assert isinstance(res, list)

    def test_navigation_exists(self, system):
        org = system.organization()
        assert len(org.root.tables) == 9

    def test_ekg_build(self, system):
        g = system.knowledge_graph()
        assert g.graph.number_of_nodes() >= 0


class TestDegenerateQueries:
    def test_empty_column_query(self, system):
        res = system._joinable.exact_topk(Column("empty", []), k=3)
        assert res == []

    def test_all_null_column_query(self, system):
        res = system._joinable.exact_topk(
            Column("nulls", ["", "NA", "null"]), k=3
        )
        assert res == []

    def test_union_query_with_no_text_columns(self, system):
        numeric_only = Table.from_dict(
            "nums", {"a": ["1", "2"], "b": ["3", "4"]}
        )
        res = system._tus.search(numeric_only, k=3)
        assert res == []

    def test_starmie_query_numeric_only(self, system):
        numeric_only = Table.from_dict(
            "nums2", {"a": ["1", "2"], "b": ["3", "4"]}
        )
        res = system._starmie.search(numeric_only, k=3)
        assert res == []


class TestHostileCsv:
    def test_round_trip_unicode(self, tmp_path, hostile_lake):
        from repro.datalake.csvio import read_table_csv, write_table_csv

        t = hostile_lake.table("unicode_soup")
        write_table_csv(t, tmp_path / "u.csv")
        back = read_table_csv(tmp_path / "u.csv")
        assert back.rows() == t.rows()

    def test_round_trip_huge_cells(self, tmp_path, hostile_lake):
        from repro.datalake.csvio import read_table_csv, write_table_csv

        t = hostile_lake.table("huge_cells")
        write_table_csv(t, tmp_path / "h.csv")
        assert read_table_csv(tmp_path / "h.csv").rows() == t.rows()
