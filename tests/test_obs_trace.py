"""Tests for repro.obs.trace: span nesting, timing, disabled overhead."""

import json
import threading
import time

from repro.obs.trace import NOOP_SPAN, Tracer


class TestSpanBasics:
    def test_span_records_name_and_duration(self):
        t = Tracer(enabled=True)
        with t.span("work"):
            time.sleep(0.01)
        (root,) = t.roots()
        assert root.name == "work"
        assert root.duration_s >= 0.009

    def test_attributes_at_creation_and_via_set(self):
        t = Tracer(enabled=True)
        with t.span("q", k=5) as sp:
            sp.set("hits", 3)
        (root,) = t.roots()
        assert root.attrs == {"k": 5, "hits": 3}

    def test_nesting(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                with t.span("leaf"):
                    pass
            with t.span("sibling"):
                pass
        (root,) = t.roots()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "sibling"]
        assert [c.name for c in root.children[0].children] == ["leaf"]

    def test_child_duration_within_parent(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                time.sleep(0.005)
        (root,) = t.roots()
        assert root.children[0].duration_s <= root.duration_s

    def test_exception_recorded_and_propagated(self):
        t = Tracer(enabled=True)
        try:
            with t.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (root,) = t.roots()
        assert root.attrs["error"] == "ValueError"

    def test_current_span(self):
        t = Tracer(enabled=True)
        assert t.current() is NOOP_SPAN
        with t.span("outer"):
            with t.span("inner") as sp:
                assert t.current() is sp
        assert t.current() is NOOP_SPAN

    def test_walk_and_spans(self):
        t = Tracer(enabled=True)
        with t.span("a"):
            with t.span("b"):
                pass
        with t.span("c"):
            pass
        assert [s.name for s in t.spans()] == ["a", "b", "c"]


class TestDisabled:
    def test_disabled_returns_noop_and_collects_nothing(self):
        t = Tracer(enabled=False)
        with t.span("x") as sp:
            pass
        assert sp is NOOP_SPAN
        assert t.roots() == []

    def test_noop_set_is_harmless(self):
        NOOP_SPAN.set("k", 1)
        assert NOOP_SPAN.attrs == {}

    def test_force_records_while_disabled(self):
        t = Tracer(enabled=False)
        with t.span("pipeline", force=True):
            with t.span("stage", force=True):
                pass
            with t.span("hot-path"):  # not forced: stays a no-op
                pass
        (root,) = t.roots()
        assert [c.name for c in root.children] == ["stage"]

    def test_enable_disable_toggle(self):
        t = Tracer()
        assert not t.enabled
        t.enable()
        with t.span("x"):
            pass
        t.disable()
        with t.span("y"):
            pass
        assert [s.name for s in t.roots()] == ["x"]

    def test_noop_overhead_under_microseconds(self):
        # Acceptance target: disabled span enter/exit <= ~1us.  Take the
        # best of several runs so scheduler noise cannot fail the test.
        t = Tracer(enabled=False)
        n = 10_000
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            for _ in range(n):
                with t.span("hot"):
                    pass
            best = min(best, time.perf_counter() - t0)
        per_span = best / n
        assert per_span < 2e-6, f"no-op span took {per_span * 1e6:.2f}us"


class TestExport:
    def test_reset(self):
        t = Tracer(enabled=True)
        with t.span("x"):
            pass
        t.reset()
        assert t.roots() == []

    def test_to_dicts_and_json(self):
        t = Tracer(enabled=True)
        with t.span("root", k=1) as sp:
            sp.set("obj", object())  # non-primitive attrs are stringified
            with t.span("child"):
                pass
        data = json.loads(t.export_json())
        assert data[0]["name"] == "root"
        assert data[0]["attrs"]["k"] == 1
        assert isinstance(data[0]["attrs"]["obj"], str)
        assert data[0]["children"][0]["name"] == "child"
        assert data[0]["duration_ms"] >= 0

    def test_render_tree(self):
        t = Tracer(enabled=True)
        with t.span("root"):
            with t.span("child", k=2):
                pass
        text = t.render()
        lines = text.splitlines()
        assert "root" in lines[0]
        assert lines[1].startswith("  ") and "child" in lines[1]
        assert "k=2" in lines[1]
        assert "ms" in lines[0]


class TestThreads:
    def test_spans_nest_per_thread(self):
        t = Tracer(enabled=True)
        errors = []

        def worker(name):
            try:
                for _ in range(50):
                    with t.span(name):
                        with t.span(f"{name}.child"):
                            pass
            except Exception as e:  # pragma: no cover
                errors.append(e)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        roots = t.roots()
        assert len(roots) == 4 * 50
        # every root kept exactly its own child: no cross-thread leakage
        assert all(
            [c.name for c in r.children] == [f"{r.name}.child"] for r in roots
        )
