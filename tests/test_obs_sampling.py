"""Tests for head-based trace sampling: rates, escape hatches, overhead."""

import time

import pytest

from repro import obs
from repro.obs.sampling import TraceSampler, span_tree_has_error
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    obs.configure_sampling(rate=1.0, slow_ms=None, seed=0)
    yield
    obs.configure_sampling(rate=1.0, slow_ms=None, seed=0)
    obs.reset()


def run_queries(tracer: Tracer, n: int, attrs_every: int | None = None):
    for i in range(n):
        with tracer.span(f"query.{i}") as sp:
            if attrs_every and i % attrs_every == 0:
                sp.set("error", "Boom")


class TestTraceSampler:
    def test_default_keeps_everything(self):
        sampler = TraceSampler()
        tracer = Tracer(enabled=True, sampler=sampler)
        run_queries(tracer, 20)
        assert len(tracer.roots()) == 20
        assert sampler.stats()["dropped"] == 0

    def test_rate_zero_drops_all_healthy_spans(self):
        sampler = TraceSampler(rate=0.0)
        tracer = Tracer(enabled=True, sampler=sampler)
        run_queries(tracer, 50)
        assert tracer.roots() == []
        assert sampler.stats()["dropped"] == 50

    def test_low_rate_retains_small_fraction(self):
        # Acceptance: rate 0.01 over 1000 queries keeps <= ~5% of spans.
        sampler = TraceSampler(rate=0.01, seed=7)
        tracer = Tracer(enabled=True, sampler=sampler)
        run_queries(tracer, 1000)
        kept = len(tracer.roots())
        assert kept <= 50
        stats = sampler.stats()
        assert stats["decisions"] == 1000
        assert stats["kept"] + stats["dropped"] == 1000
        assert stats["kept"] == kept

    def test_error_spans_always_kept(self):
        sampler = TraceSampler(rate=0.0)
        tracer = Tracer(enabled=True, sampler=sampler)
        run_queries(tracer, 100, attrs_every=10)
        roots = tracer.roots()
        assert len(roots) == 10
        assert all(span_tree_has_error(r) for r in roots)
        assert sampler.stats()["kept_error"] == 10

    def test_error_in_child_keeps_whole_tree(self):
        sampler = TraceSampler(rate=0.0)
        tracer = Tracer(enabled=True, sampler=sampler)
        with tracer.span("root"):
            with tracer.span("child") as child:
                child.set("error", "ValueError")
        (root,) = tracer.roots()
        assert root.name == "root"
        assert root.children[0].attrs["error"] == "ValueError"

    def test_slow_spans_always_kept(self):
        sampler = TraceSampler(rate=0.0, slow_ms=1.0)
        tracer = Tracer(enabled=True, sampler=sampler)
        with tracer.span("slow"):
            time.sleep(0.005)
        with tracer.span("fast"):
            pass
        roots = tracer.roots()
        assert [r.name for r in roots] == ["slow"]
        assert sampler.stats()["kept_slow"] == 1

    def test_forced_spans_bypass_sampling(self):
        sampler = TraceSampler(rate=0.0)
        tracer = Tracer(enabled=True, sampler=sampler)
        with tracer.span("offline.build", force=True):
            pass
        assert [r.name for r in tracer.roots()] == ["offline.build"]
        # Forced spans never reach the sampler.
        assert sampler.stats()["decisions"] == 0

    def test_deterministic_for_fixed_seed(self):
        def kept_names(seed):
            sampler = TraceSampler(rate=0.2, seed=seed)
            tracer = Tracer(enabled=True, sampler=sampler)
            run_queries(tracer, 200)
            return [r.name for r in tracer.roots()]

        assert kept_names(3) == kept_names(3)
        assert kept_names(3) != kept_names(4)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            TraceSampler(rate=1.5)
        with pytest.raises(ValueError):
            TraceSampler().configure(rate=-0.1)
        with pytest.raises(ValueError):
            TraceSampler().configure(slow_ms=-5)

    def test_configure_partial_update(self):
        sampler = TraceSampler(rate=0.5, slow_ms=100.0)
        sampler.configure(rate=0.25)
        assert sampler.rate == 0.25
        assert sampler.slow_ms == 100.0
        sampler.configure(slow_ms=None)
        assert sampler.slow_ms is None


class TestProcessWideSampling:
    def test_configure_sampling_applies_to_global_tracer(self):
        obs.configure_sampling(rate=0.0)
        obs.TRACER.enable()
        with obs.TRACER.span("q"):
            pass
        assert obs.TRACER.roots() == []
        assert obs.report()["sampling"]["dropped"] == 1

    def test_reset_clears_sampler_counters(self):
        obs.configure_sampling(rate=0.0)
        obs.TRACER.enable()
        with obs.TRACER.span("q"):
            pass
        obs.reset()
        stats = obs.SAMPLER.stats()
        assert stats["decisions"] == 0
        assert stats["dropped"] == 0


class TestSamplingOverhead:
    def test_low_rate_overhead_within_budget(self):
        """Acceptance: with rate 0.01, mean per-query overhead stays within
        10% of tracing-disabled for a realistic (non-trivial) workload."""

        def workload():
            # ~100us of real work, dwarfing span bookkeeping.
            return sum(i * i for i in range(3000))

        def timed(tracer, n=300):
            t0 = time.perf_counter()
            for i in range(n):
                if tracer is None:
                    workload()
                else:
                    with tracer.span("q"):
                        workload()
            return (time.perf_counter() - t0) / n

        sampler = TraceSampler(rate=0.01, seed=1)
        tracer = Tracer(enabled=True, sampler=sampler)
        timed(None)  # warm up
        timed(tracer)
        baseline = min(timed(None) for _ in range(5))
        sampled = min(timed(tracer) for _ in range(5))
        assert sampled <= baseline * 1.10, (
            f"sampled={sampled * 1e6:.1f}us baseline={baseline * 1e6:.1f}us"
        )
