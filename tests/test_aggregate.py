"""Unit + property tests for bipartite score aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.aggregate import (
    greedy_alignment,
    hungarian_alignment,
    table_unionability,
)


class TestHungarian:
    def test_identity_matrix(self):
        total, pairs = hungarian_alignment(np.eye(3))
        assert total == pytest.approx(3.0)
        assert sorted(pairs) == [(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]

    def test_rectangular(self):
        scores = np.array([[0.9, 0.1], [0.8, 0.2], [0.1, 0.7]])
        total, pairs = hungarian_alignment(scores)
        assert len(pairs) <= 2  # at most min(rows, cols) matches

    def test_zero_scores_excluded(self):
        total, pairs = hungarian_alignment(np.zeros((2, 2)))
        assert total == 0.0 and pairs == []

    def test_empty(self):
        assert hungarian_alignment(np.zeros((0, 0))) == (0.0, [])

    def test_one_to_one(self):
        scores = np.array([[0.9, 0.8], [0.9, 0.1]])
        _, pairs = hungarian_alignment(scores)
        qs = [p[0] for p in pairs]
        cs = [p[1] for p in pairs]
        assert len(set(qs)) == len(qs) and len(set(cs)) == len(cs)


class TestGreedy:
    def test_takes_best_first(self):
        scores = np.array([[0.5, 0.9], [0.8, 0.7]])
        _, pairs = greedy_alignment(scores)
        assert pairs[0] == (0, 1, 0.9)

    def test_greedy_can_be_suboptimal_but_valid(self):
        scores = np.array([[0.9, 0.85], [0.8, 0.0]])
        g_total, _ = greedy_alignment(scores)
        h_total, _ = hungarian_alignment(scores)
        assert g_total <= h_total

    def test_empty(self):
        assert greedy_alignment(np.zeros((0, 3))) == (0.0, [])


class TestTableUnionability:
    def test_normalization_by_query_columns(self):
        scores = np.ones((4, 4))
        total, _ = table_unionability(scores)
        assert total == pytest.approx(1.0)

    def test_partial_match_fraction(self):
        scores = np.zeros((4, 4))
        scores[0, 0] = 1.0
        scores[1, 1] = 1.0
        total, _ = table_unionability(scores)
        assert total == pytest.approx(0.5)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            table_unionability(np.eye(2), method="magic")

    def test_greedy_method_selectable(self):
        total, pairs = table_unionability(np.eye(2), method="greedy")
        assert total == pytest.approx(1.0)
        assert len(pairs) == 2


@given(
    st.integers(1, 6),
    st.integers(1, 6),
    st.integers(0, 10_000),
)
@settings(max_examples=50, deadline=None)
def test_hungarian_dominates_greedy(nq, nc, seed):
    """Property: the optimal matching never scores below the greedy one."""
    rng = np.random.default_rng(seed)
    scores = rng.uniform(0, 1, size=(nq, nc))
    h_total, h_pairs = hungarian_alignment(scores)
    g_total, g_pairs = greedy_alignment(scores)
    assert h_total >= g_total - 1e-9
    for pairs in (h_pairs, g_pairs):
        assert len({p[0] for p in pairs}) == len(pairs)
        assert len({p[1] for p in pairs}) == len(pairs)
