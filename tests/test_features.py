"""Unit tests for column feature extraction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalake.table import Column
from repro.understanding.features import FEATURE_NAMES, column_features


class TestFeatureVector:
    def test_length_matches_names(self):
        f = column_features(Column("x", ["a", "b"]))
        assert f.shape == (len(FEATURE_NAMES),)

    def test_empty_column_zero_vector(self):
        f = column_features(Column("x", ["", "  "]))
        assert np.all(f == 0.0)

    def test_all_finite(self):
        f = column_features(Column("x", ["a1", "$5.00", "", "2020-01-01"]))
        assert np.all(np.isfinite(f))

    def test_numeric_column_features(self):
        f = column_features(Column("x", ["1", "2", "3"]))
        idx = FEATURE_NAMES.index("frac_numeric_cells")
        assert f[idx] == 1.0

    def test_distinct_ratio(self):
        f = column_features(Column("x", ["a", "a", "b", "b"]))
        assert f[FEATURE_NAMES.index("distinct_ratio")] == 0.5

    def test_special_chars_detected(self):
        f = column_features(Column("x", ["a@b.com", "c@d.org"]))
        assert f[FEATURE_NAMES.index("has_at")] == 1.0
        assert f[FEATURE_NAMES.index("has_dot")] == 1.0

    def test_percent_and_dollar(self):
        f = column_features(Column("x", ["5%", "$3"]))
        assert f[FEATURE_NAMES.index("has_percent")] == 0.5
        assert f[FEATURE_NAMES.index("has_dollar")] == 0.5

    def test_all_same_length_flag(self):
        same = column_features(Column("x", ["abc", "def"]))
        diff = column_features(Column("x", ["a", "defg"]))
        assert same[FEATURE_NAMES.index("all_same_length")] == 1.0
        assert diff[FEATURE_NAMES.index("all_same_length")] == 0.0

    def test_discriminates_types(self):
        emails = column_features(
            Column("x", ["a@b.com", "x@y.org", "q@w.net"])
        )
        years = column_features(Column("x", ["1999", "2001", "2020"]))
        assert not np.allclose(emails, years)


@given(st.lists(st.text(max_size=15), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_features_always_finite(values):
    """Property: feature extraction never produces NaN/inf on any input."""
    f = column_features(Column("c", values))
    assert f.shape == (len(FEATURE_NAMES),)
    assert np.all(np.isfinite(f))
