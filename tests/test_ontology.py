"""Unit tests for the synthetic ontology / KB substrate."""

import pytest

from repro.datalake.generate import DomainPool
from repro.datalake.ontology import Ontology, subsample_ontology


@pytest.fixture
def onto() -> Ontology:
    o = Ontology()
    o.add_class("thing")
    o.add_class("city", parent="thing")
    o.add_class("country", parent="thing")
    o.add_value("oslo", "city")
    o.add_value("rome", "city")
    o.add_value("norway", "country")
    o.add_relation("capital_of", "city", "country")
    o.add_fact("oslo", "norway", "capital_of")
    return o


class TestHierarchy:
    def test_class_of(self, onto):
        assert onto.class_of("OSLO") == "city"
        assert onto.class_of("unknown") is None

    def test_unknown_parent_rejected(self):
        o = Ontology()
        with pytest.raises(KeyError):
            o.add_class("x", parent="missing")

    def test_unknown_class_for_value_rejected(self, onto):
        with pytest.raises(KeyError):
            onto.add_value("x", "missing")

    def test_ancestors_leaf_first(self, onto):
        assert onto.ancestors("city") == ["city", "thing"]

    def test_classes_of_with_hierarchy(self, onto):
        assert onto.classes_of("oslo") == {"city", "thing"}
        assert onto.classes_of("oslo", with_ancestors=False) == {"city"}

    def test_classes_listing(self, onto):
        assert set(onto.classes()) == {"thing", "city", "country"}


class TestRelations:
    def test_class_level_relation(self, onto):
        assert onto.relation_between_classes("city", "country") == "capital_of"
        assert onto.relation_between_classes("country", "city") == "capital_of"
        assert onto.relation_between_classes("city", "city") is None

    def test_value_level_fact(self, onto):
        assert onto.relation_between_values("oslo", "norway") == "capital_of"
        assert onto.relation_between_values("norway", "oslo") == "capital_of"

    def test_value_level_class_fallback(self, onto):
        # rome->norway is not a fact but the classes relate.
        assert onto.relation_between_values("rome", "norway") == "capital_of"

    def test_uncovered_value_no_relation(self, onto):
        assert onto.relation_between_values("atlantis", "norway") is None

    def test_num_facts(self, onto):
        assert onto.num_facts() == 1


class TestAnnotation:
    def test_coverage(self, onto):
        assert onto.coverage_of(["oslo", "mystery"]) == pytest.approx(0.5)
        assert onto.coverage_of([]) == 0.0

    def test_annotate_majority(self, onto):
        assert onto.annotate_column(["oslo", "rome", "xx"]) == "city"

    def test_annotate_uncovered_none(self, onto):
        assert onto.annotate_column(["xx", "yy"]) is None

    def test_annotate_low_support_none(self, onto):
        # city and country each 50% of covered values; min_support 0.6 fails.
        res = onto.annotate_column(["oslo", "norway"], min_support=0.6)
        assert res is None


class TestSubsample:
    def test_coverage_knob(self):
        pool = DomainPool(n_domains=4, base_size=400, seed=3)
        full = pool.build_ontology()
        values = [v for d in pool.domains for v in d.values]
        half = subsample_ontology(full, coverage=0.5, seed=3)
        cov = half.coverage_of(values)
        assert 0.4 < cov < 0.6
        assert subsample_ontology(full, 0.0).coverage_of(values) == 0.0
        assert subsample_ontology(full, 1.0).coverage_of(values) == 1.0

    def test_subsample_keeps_classes_and_relations(self):
        pool = DomainPool(n_domains=3, base_size=100, seed=3)
        full = pool.build_ontology()
        sub = subsample_ontology(full, coverage=0.5, seed=1)
        assert set(sub.classes()) == set(full.classes())
        a = pool.domain(0).concept
        b = pool.domain(1).concept
        assert sub.relation_between_classes(a, b) is not None

    def test_subsample_drops_facts_of_uncovered_values(self):
        o = Ontology()
        o.add_class("c")
        o.add_value("a", "c")
        o.add_value("b", "c")
        o.add_fact("a", "b", "r")
        empty = subsample_ontology(o, coverage=0.0)
        assert empty.num_facts() == 0
