"""E14 — MATE (Esmailoghli et al., VLDB'22) analogue.

Rows reproduced: precision of composite-key join search vs. the
single-attribute baseline, and super-key filter effectiveness.  Expected
shape: single-column overlap ranks all candidates near-identically (they
share values by construction) while MATE's composite matching recovers the
planted containment levels exactly; the filter prunes most rows.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.metrics import kendall_tau
from repro.datalake.generate import make_composite_key_corpus
from repro.search.josie import JosieIndex
from repro.search.mate import MateIndex


@pytest.fixture(scope="module")
def corpus():
    return make_composite_key_corpus(n_candidates=24, n_rows=150, seed=42)


def test_e14_composite_vs_single(corpus, benchmark):
    mate = MateIndex()
    mate.index_lake(corpus.lake)
    query = corpus.lake.table(corpus.query_table)

    # Single-attribute baseline: JOSIE on the first key column only.
    josie = JosieIndex()
    for t in corpus.lake:
        if t.name != corpus.query_table:
            josie.insert(t.name, t.columns[0].value_set())
    single = josie.topk(query.columns[0].value_set(), k=24)

    hits = mate.search(query, list(corpus.key_columns), k=24)

    mate_scores = [h.score for h in hits]
    mate_truth = [corpus.truth[h.table] for h in hits]
    single_scores = [float(ov) for _, ov in single]
    single_truth = [corpus.truth[name] for name, _ in single]

    table = ExperimentTable(
        "E14: composite-key join search (MATE vs single-attribute)",
        ["method", "tau_vs_truth", "top1_true_containment"],
    )
    mate_tau = kendall_tau(mate_scores, mate_truth)
    single_tau = kendall_tau(single_scores, single_truth)
    table.add_row("mate (2-col super key)", mate_tau,
                  corpus.truth[hits[0].table])
    table.add_row("single-attribute", single_tau,
                  corpus.truth[single[0][0]])
    stats = mate.filter_stats(query, list(corpus.key_columns))
    prune = 1 - stats["rows_passed_filter"] / stats["rows_checked"]
    table.note(f"super-key filter pruned {prune:.0%} of candidate rows")
    table.show()

    # Planted levels repeat across candidates, so within-level ties cap the
    # attainable tau at ~0.87; 0.8 means the ordering is otherwise exact.
    assert mate_tau >= 0.8, "MATE should recover the planted ordering"
    assert mate_tau > single_tau
    assert corpus.truth[hits[0].table] == pytest.approx(1.0)
    assert prune > 0.3

    benchmark.pedantic(
        lambda: mate.search(query, list(corpus.key_columns), k=10),
        rounds=3,
        iterations=1,
    )
