"""E2 — LSH Ensemble (Zhu et al., VLDB'16), Fig. 7/9 analogue.

Rows reproduced: precision/recall of containment search at varying
thresholds, LSH Ensemble vs. the Jaccard-LSH baseline, plus the effect of
the number of partitions.  Expected shape: ensemble recall stays high across
thresholds under cardinality skew while the Jaccard baseline loses recall;
more partitions prune candidates (higher precision) without losing recall.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.metrics import f1_score
from repro.sketch.lshensemble import LSHEnsemble
from repro.sketch.lsh import MinHashLSH
from repro.sketch.minhash import MinHash, exact_containment


@pytest.fixture(scope="module")
def population(join_corpus):
    """Column sets + signatures, and per-query truth at each threshold."""
    sets = {}
    entries = []
    for ref, col in join_corpus.lake.iter_text_columns():
        values = set(col.value_set())
        if len(values) < 2:
            continue
        mh = MinHash.from_values(values)
        sets[ref] = values
        entries.append((ref, mh, len(values)))
    queries = []
    for q in join_corpus.queries:
        qset = sets[q.column]
        queries.append((q.column, qset, MinHash.from_values(qset)))
    return sets, entries, queries


def _evaluate(index_query, sets, queries, threshold):
    precisions, recalls = [], []
    for qref, qset, qmh in queries:
        found = {
            r for r in index_query(qmh, len(qset), threshold) if r != qref
        }
        truth = {
            r
            for r, s in sets.items()
            if r != qref and exact_containment(qset, s) >= threshold
        }
        if found:
            precisions.append(len(found & truth) / len(found))
        if truth:
            recalls.append(len(found & truth) / len(truth))
    p = sum(precisions) / len(precisions) if precisions else 1.0
    r = sum(recalls) / len(recalls) if recalls else 1.0
    return p, r


def test_e02_threshold_sweep(population, benchmark):
    sets, entries, queries = population
    ensemble = LSHEnsemble(num_partitions=8)
    ensemble.index(list(entries))
    jaccard = MinHashLSH(threshold=0.5)
    for ref, mh, _ in entries:
        jaccard.insert(ref, mh)

    table = ExperimentTable(
        "E2: containment search under skew (LSH Ensemble vs Jaccard-LSH)",
        ["threshold", "ens_precision", "ens_recall", "jac_recall"],
    )
    recalls = {}
    for t in (0.25, 0.5, 0.75, 0.95):
        p, r = _evaluate(ensemble.query, sets, queries, t)
        # The Jaccard baseline has no containment knob; its candidate set is
        # fixed, evaluated against the same containment truth.
        _, jr = _evaluate(
            lambda mh, size, _t: jaccard.query(mh), sets, queries, t
        )
        table.add_row(t, p, r, jr)
        recalls[t] = (r, jr)
    table.note("expected shape: ens_recall ~1 everywhere; jac_recall lower")
    table.show()

    for t, (ens_r, jac_r) in recalls.items():
        assert ens_r >= 0.9, f"ensemble recall collapsed at t={t}"
        assert ens_r >= jac_r - 0.05

    benchmark.pedantic(
        lambda: ensemble.query(queries[0][2], len(queries[0][1]), 0.5),
        rounds=20,
        iterations=1,
    )


def test_e02_partition_ablation(population, benchmark):
    sets, entries, queries = population
    table = ExperimentTable(
        "E2b: effect of #partitions (ablation)",
        ["partitions", "candidates", "recall@0.7", "f1@0.7"],
    )
    cand_counts = {}
    for parts in (1, 2, 4, 8, 16, 32):
        ens = LSHEnsemble(num_partitions=parts)
        ens.index(list(entries))
        n_cands = sum(
            len(ens.query(qmh, len(qs), 0.7)) for _, qs, qmh in queries
        )
        p, r = _evaluate(ens.query, sets, queries, 0.7)
        table.add_row(parts, n_cands, r, f1_score(p, r))
        cand_counts[parts] = (n_cands, r)
    table.note("expected shape: candidates shrink with partitions, recall holds")
    table.show()

    assert cand_counts[32][0] <= cand_counts[1][0]
    assert cand_counts[32][1] >= 0.9

    ens = LSHEnsemble(num_partitions=8)
    ens.index(list(entries))
    benchmark.pedantic(
        lambda: ens.query(queries[0][2], len(queries[0][1]), 0.7),
        rounds=20,
        iterations=1,
    )
