"""E15 — metadata keyword search (OCTOPUS / GOODS-style) analogue.

Rows reproduced: P@k and recall@k of BM25 over metadata with inconsistent
topic vocabularies, vs. exact-title matching.  Expected shape: BM25 over
all metadata text recovers synonym-phrased tables that exact matching
misses; schema clustering groups same-schema results.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.metrics import precision_at_k, recall_at_k
from repro.datalake.generate import make_keyword_corpus
from repro.search.keyword import KeywordSearchEngine


@pytest.fixture(scope="module")
def corpus():
    return make_keyword_corpus(n_topics=6, tables_per_topic=9, seed=42)


def test_e15_bm25_vs_exact_title(corpus, benchmark):
    engine = KeywordSearchEngine()
    engine.index_lake(corpus.lake)

    def exact_title_match(q, k):
        hits = [
            t.name for t in corpus.lake if q.lower() in t.metadata.title.lower()
        ]
        return hits[:k]

    k = 9
    table = ExperimentTable(
        "E15: metadata keyword search (BM25 vs exact title match)",
        ["method", f"P@{k}", f"R@{k}"],
    )
    rows = {}
    for name, searcher in [
        ("bm25", lambda q: [h.table for h in engine.search(q, k=k)]),
        ("exact-title", lambda q: exact_title_match(q, k)),
    ]:
        ps, rs = [], []
        for q, truth in sorted(corpus.truth.items()):
            got = searcher(q)
            ps.append(precision_at_k(got, truth, k))
            rs.append(recall_at_k(got, truth, k))
        table.add_row(name, sum(ps) / len(ps), sum(rs) / len(rs))
        rows[name] = sum(rs) / len(rs)
    table.note("expected shape: exact matching misses synonym phrasings; "
               "both are precision-1 on what they return")
    table.show()

    # Synonym phrasings ("syn1a") are invisible to exact title match, so
    # its recall caps at ~1/3; BM25 sees tags and descriptions too.
    assert rows["bm25"] > rows["exact-title"] + 0.1

    clusters = engine.search_clustered("topic1", k=9)
    assert clusters

    benchmark.pedantic(lambda: engine.search("topic2", k=9), rounds=10,
                       iterations=1)
