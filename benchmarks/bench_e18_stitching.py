"""E18 — table stitching for KB completion (Lehmberg & Bizer, VLDB'17).

Rows reproduced: fraction of true facts recovered with stitched union
tables vs. per-fragment extraction at matching confidence, across fragment
counts.  Expected shape: stitching recovers nearly all facts because header
canonicalization aligns synonym columns; unstitched fragments leave most
predicates unaligned.
"""


from repro.apps.stitching import (
    StitchedRelation,
    TableStitcher,
    extract_facts,
    kb_completion_rate,
)
from repro.bench.harness import ExperimentTable
from repro.datalake.generate import make_stitch_corpus


def test_e18_kb_completion(benchmark):
    table = ExperimentTable(
        "E18: KB completion via table stitching",
        ["fragments", "stitched_rate", "unstitched_rate"],
    )
    rates = []
    for n_fragments in (10, 20, 40):
        corpus = make_stitch_corpus(
            n_fragments=n_fragments, rows_per_fragment=10, seed=42
        )
        aliases = {
            h: p
            for p, hs in corpus.header_synonyms.items()
            for h in hs
        }
        stitcher = TableStitcher()
        stitched_facts = set()
        for rel in stitcher.stitch_lake(corpus.lake):
            stitched_facts |= extract_facts(rel)
        stitched = kb_completion_rate(stitched_facts, corpus.facts, aliases)

        # Unstitched baseline: extract facts per fragment, but WITHOUT the
        # cross-fragment header canonicalization stitching provides — raw
        # headers only match the canonical predicate ~1/3 of the time.
        raw_facts = set()
        for t in corpus.lake:
            rel = StitchedRelation([t.name], {}, t)
            raw_facts |= extract_facts(rel)
        unstitched = kb_completion_rate(raw_facts, corpus.facts, {})

        table.add_row(n_fragments, stitched, unstitched)
        rates.append((stitched, unstitched))
    table.note("expected shape: stitched ~1.0; unstitched ~1/3 (only "
               "fragments that happened to use the canonical header)")
    table.show()

    for stitched, unstitched in rates:
        assert stitched >= 0.9
        assert stitched > unstitched + 0.3

    corpus = make_stitch_corpus(n_fragments=20, seed=42)
    stitcher = TableStitcher()
    benchmark.pedantic(
        lambda: stitcher.stitch_lake(corpus.lake), rounds=3, iterations=1
    )
