"""E12 — ARDA (Chepurko et al., VLDB'20), Fig. 4 analogue.

Rows reproduced: downstream model R^2 for base features vs. augmented
(all joined features) vs. augmented + random-injection selection, across
noise-table counts.  Expected shape: augmentation lifts R^2 massively over
the weak base; selection retains the lift while dropping noise features.
"""


from repro.apps.arda import ArdaAugmenter
from repro.bench.harness import ExperimentTable
from repro.datalake.generate import make_ml_corpus


def test_e12_augmentation(benchmark):
    table = ExperimentTable(
        "E12: ARDA feature augmentation (downstream R^2)",
        ["noise_tables", "base_r2", "augmented_r2", "selected_r2",
         "noise_kept"],
    )
    last_report = None
    for n_noise in (4, 8, 16):
        corpus = make_ml_corpus(
            n_rows=300, n_informative=4, n_noise=n_noise, seed=42
        )
        augmenter = ArdaAugmenter(corpus.lake, seed=42).build()
        report = augmenter.augment(
            corpus.lake.table("ml_base"), key_column=0, target_column=2
        )
        selected_tables = {
            name.split(":")[0] for name in report.selected_features
        }
        noise_kept = len(selected_tables & corpus.noise)
        table.add_row(
            n_noise,
            report.base_r2,
            report.augmented_r2,
            report.selected_r2,
            noise_kept,
        )
        assert report.augmented_r2 > report.base_r2 + 0.3
        assert report.selected_r2 > report.base_r2 + 0.3
        assert selected_tables >= corpus.informative
        last_report = (corpus, augmenter)
    table.note("expected shape: augmented/selected >> base; informative "
               "joins always kept; most noise dropped")
    table.show()

    corpus, augmenter = last_report
    benchmark.pedantic(
        lambda: augmenter.augment(corpus.lake.table("ml_base"), 0, 2),
        rounds=3,
        iterations=1,
    )
