"""E21 — query-time vs. batch-offline annotation (tutorial §3 challenge).

The tutorial asks: can semantic annotation move from a batch offline task
to query time?  This experiment quantifies the trade-off the challenge
implies: for a workload touching only a fraction of the lake, lazy
annotation does proportionally less work; for a workload that sweeps the
lake repeatedly, the LRU cache amortizes to batch cost.  Also measures
Das Sarma related-table search as the consumer driving the workload.
"""

import time

import pytest

from repro.bench.harness import ExperimentTable
from repro.datalake.generate import make_relationship_corpus
from repro.search.related import RelatedTableSearch
from repro.understanding.querytime import QueryTimeAnnotator, batch_annotate


@pytest.fixture(scope="module")
def corpus():
    return make_relationship_corpus(
        n_queries=4, positives_per_query=6, confounders_per_query=6, seed=42
    )


def test_e21_lazy_vs_batch(corpus, benchmark):
    names = corpus.lake.table_names()
    table = ExperimentTable(
        "E21: query-time vs batch annotation",
        ["workload", "tables_annotated", "ms", "hit_rate"],
    )

    t0 = time.perf_counter()
    batch = batch_annotate(corpus.lake, corpus.ontology)
    batch_ms = (time.perf_counter() - t0) * 1000
    table.add_row("batch (whole lake)", len(batch), batch_ms, 0.0)

    rows = {}
    for frac in (0.1, 0.5):
        lazy = QueryTimeAnnotator(corpus.lake, corpus.ontology)
        touched = names[: max(1, int(frac * len(names)))]
        t0 = time.perf_counter()
        for _ in range(3):  # repeated queries hit the cache
            lazy.annotate_many(touched)
        lazy_ms = (time.perf_counter() - t0) * 1000
        table.add_row(
            f"lazy, {int(frac * 100)}% of lake x3",
            lazy.stats.annotated,
            lazy_ms,
            lazy.stats.hit_rate,
        )
        rows[frac] = (lazy.stats.annotated, lazy_ms, lazy.stats.hit_rate)
    table.note("expected shape: lazy work proportional to touched fraction; "
               "repeat queries ~free (hit rate 2/3)")
    table.show()

    assert rows[0.1][0] == max(1, int(0.1 * len(names)))
    assert rows[0.1][1] < batch_ms
    assert rows[0.1][2] == pytest.approx(2 / 3, abs=0.01)

    lazy = QueryTimeAnnotator(corpus.lake, corpus.ontology)
    benchmark.pedantic(
        lambda: lazy.annotate(names[0]), rounds=10, iterations=1
    )


def test_e21_related_tables_quality(corpus, benchmark):
    """Das Sarma related tables on the relationship corpus: entity
    complements should surface the same-relation tables."""
    search = RelatedTableSearch(corpus.lake).build()
    table = ExperimentTable(
        "E21b: Das Sarma related tables (entity complement)",
        ["query", "hits_in_same_relation_group", "k"],
    )
    total = 0
    for q in sorted(corpus.truth):
        res = search.related(q, k=6, kind="entity-complement")
        relevant = corpus.truth[q] | corpus.confounders[q]
        hits = sum(1 for r in res if r.table in relevant)
        table.add_row(q, hits, 6)
        total += hits
    table.note("entity complement finds same-domain tables (relationship "
               "disambiguation needs SANTOS, see E5)")
    table.show()
    assert total >= 12  # same-domain retrieval works across the 4 queries

    q = sorted(corpus.truth)[0]
    benchmark.pedantic(lambda: search.related(q, k=6), rounds=5, iterations=1)
