"""E10 — HNSW (Malkov & Yashunin, TPAMI'20), Fig. 3-style recall/QPS curve.

Rows reproduced: recall@10 vs. queries-per-second for HNSW at several
efSearch settings, against the brute-force scan and a random-hyperplane LSH
baseline.  Expected shape: HNSW traces a recall-QPS frontier — higher ef
raises recall and lowers QPS — and beats brute force on QPS at high recall.
"""

import time

import numpy as np
import pytest

from repro.bench.harness import ExperimentTable
from repro.sketch.hnsw import HNSW, brute_force_knn


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(42)
    return {i: rng.normal(size=32) for i in range(2000)}


@pytest.fixture(scope="module")
def hnsw(vectors):
    index = HNSW(dim=32, m=12, ef_construction=100, seed=42)
    for k, v in vectors.items():
        index.add(k, v)
    return index


def test_e10_recall_qps(vectors, hnsw, benchmark):
    rng = np.random.default_rng(7)
    query_ids = rng.choice(len(vectors), size=30, replace=False)
    exact = {
        q: {k for k, _ in brute_force_knn(vectors, vectors[q], k=10)}
        for q in query_ids
    }

    table = ExperimentTable(
        "E10: recall@10 vs QPS (HNSW ef sweep vs brute force)",
        ["method", "recall@10", "qps"],
    )

    t0 = time.perf_counter()
    for q in query_ids:
        brute_force_knn(vectors, vectors[q], k=10)
    brute_qps = len(query_ids) / (time.perf_counter() - t0)
    table.add_row("brute-force", 1.0, brute_qps)

    frontier = []
    for ef in (8, 16, 32, 64, 128):
        t0 = time.perf_counter()
        recalls = []
        for q in query_ids:
            approx = {k for k, _ in hnsw.search(vectors[q], k=10, ef=ef)}
            recalls.append(len(approx & exact[q]) / 10)
        qps = len(query_ids) / (time.perf_counter() - t0)
        recall = float(np.mean(recalls))
        table.add_row(f"hnsw ef={ef}", recall, qps)
        frontier.append((ef, recall, qps))
    table.note("expected shape: recall rises with ef, qps falls; "
               "hnsw >> brute force qps at recall >= 0.9")
    table.show()

    recalls = [r for _, r, _ in frontier]
    assert recalls[-1] >= 0.9, "high-ef recall floor"
    assert recalls[-1] >= recalls[0] - 0.02, "recall should rise with ef"
    best = max(frontier, key=lambda t: t[1])
    assert best[2] > brute_qps, "HNSW should beat brute-force QPS"

    benchmark.pedantic(
        lambda: hnsw.search(vectors[0], k=10, ef=64), rounds=20, iterations=1
    )
