"""E19 — PEXESO (Dong et al., ICDE'21) analogue.

Rows reproduced: recall of fuzzy (embedding) join search vs. exact
equi-join containment on same-domain columns with little raw value overlap,
and the block-and-verify candidate reduction.  Expected shape: fuzzy
matching recovers same-domain joinable columns whose exact containment is
near zero; blocking touches a fraction of the columns the verifier would.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.datalake.table import ColumnRef
from repro.search.pexeso import (
    PexesoConfig,
    PexesoIndex,
    exact_fuzzy_join_fraction,
)
from repro.sketch.minhash import exact_containment


@pytest.fixture(scope="module")
def pexeso(union_corpus, union_space):
    return PexesoIndex(
        union_space, PexesoConfig(tau=0.7, sigma=0.4)
    ).build(union_corpus.lake)


def test_e19_fuzzy_vs_exact(union_corpus, union_space, pexeso, benchmark):
    onto = union_corpus.ontology
    table = ExperimentTable(
        "E19: fuzzy join (PEXESO) vs exact equi-join containment",
        ["query", "exact_containment", "fuzzy_fraction", "found_by_pexeso"],
    )
    wins = 0
    n_rows = 0
    for g in range(4):
        qname, cname = union_corpus.groups[g][0], union_corpus.groups[g][1]
        qtable = union_corpus.lake.table(qname)
        qcol = qtable.columns[0]
        q_cls = onto.annotate_column(qcol.non_null_values())
        cand_table = union_corpus.lake.table(cname)
        target = None
        for ci, ccol in cand_table.text_columns():
            if onto.annotate_column(ccol.non_null_values()) == q_cls:
                target = (ci, ccol)
                break
        if target is None:
            continue
        ci, ccol = target
        qset, cset = set(qcol.value_set()), set(ccol.value_set())
        exact = exact_containment(qset, cset)
        fuzzy = exact_fuzzy_join_fraction(union_space, qset, cset, tau=0.7)
        hits = pexeso.search(qcol, k=10, exclude_table=qname)
        found = any(
            r.ref == ColumnRef(cname, ci) or r.ref.table == cname
            for r in hits
        )
        table.add_row(f"{qname}[0]", exact, fuzzy, str(found))
        n_rows += 1
        if fuzzy > exact and found:
            wins += 1
    table.note("expected shape: fuzzy >> exact on same-domain, low-overlap "
               "columns; pexeso retrieves them")
    table.show()

    assert n_rows >= 3
    assert wins >= n_rows - 1

    qcol = union_corpus.lake.table(union_corpus.groups[0][0]).columns[0]
    benchmark.pedantic(
        lambda: pexeso.search(qcol, k=5), rounds=5, iterations=1
    )
