"""E17 — the KB-precision vs. LM-recall trade-off (tutorial §3).

The tutorial calls out that KBs give high precision with low coverage while
learned representations give high recall at some precision cost, and that
this trade-off "has not been formally studied for data discovery systems".
This experiment studies it on the union-search task: P@k / R@k of the
ontology (sem) measure as KB coverage varies, against the fixed embedding
(nl) measure.  Expected shape: sem quality degrades monotonically-ish as
coverage drops, crossing below nl at low coverage; the ensemble dominates
both ends.
"""


from repro.bench.harness import ExperimentTable
from repro.bench.metrics import precision_at_k
from repro.datalake.ontology import subsample_ontology
from repro.search.union_tus import TableUnionSearch


def _quality(engine, union_corpus, queries, measure, k=5):
    ps = []
    for q in queries:
        res = engine.search(union_corpus.lake.table(q), k=k, measure=measure)
        ps.append(
            precision_at_k([r.table for r in res], union_corpus.truth[q], k)
        )
    return sum(ps) / len(ps)


def test_e17_coverage_sweep(union_corpus, union_space, benchmark):
    queries = [members[0] for members in union_corpus.groups.values()]
    table = ExperimentTable(
        "E17: KB coverage vs embedding measure (union search P@5)",
        ["kb_coverage", "sem_P@5", "nl_P@5", "ensemble_P@5"],
    )
    sem_by_cov = {}
    ens_by_cov = {}
    nl_fixed = None
    for coverage in (0.1, 0.3, 0.6, 1.0):
        # Class-granularity subsampling: whole lake domains are unknown to
        # the KB — the realistic failure mode for lake-specific vocabulary.
        onto = subsample_ontology(
            union_corpus.ontology, coverage=coverage, seed=5,
            granularity="class",
        )
        engine = TableUnionSearch(
            union_corpus.lake, ontology=onto, space=union_space
        ).build()
        sem = _quality(engine, union_corpus, queries, "sem")
        nl = _quality(engine, union_corpus, queries, "nl")
        ens = _quality(engine, union_corpus, queries, "ensemble")
        table.add_row(coverage, sem, nl, ens)
        sem_by_cov[coverage] = sem
        ens_by_cov[coverage] = ens
        nl_fixed = nl
    table.note("expected shape: sem falls with coverage and drops below nl; "
               "ensemble stays at the max of both")
    table.show()

    assert sem_by_cov[1.0] >= sem_by_cov[0.1]
    assert sem_by_cov[0.1] < nl_fixed, "low-coverage KB should lose to LM"
    assert sem_by_cov[1.0] >= nl_fixed - 0.05, "full KB should rival LM"
    for cov, ens in ens_by_cov.items():
        assert ens >= max(sem_by_cov[cov], nl_fixed) - 0.1

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
