"""E4 — Table Union Search (Nargesian et al., VLDB'18), Fig. 5 analogue.

Rows reproduced: precision@k and recall@k of the four attribute-unionability
measures (set / sem / NL / ensemble) on a union benchmark with partial value
overlap and a partially-covering ontology.  Expected shape: semantic
measures beat pure set overlap when value overlap is low; the ensemble is
at least as good as every single measure.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.metrics import precision_at_k, recall_at_k
from repro.datalake.ontology import subsample_ontology
from repro.search.union_tus import MEASURES, TableUnionSearch, TusConfig


@pytest.fixture(scope="module")
def tus_engine(union_corpus, union_space):
    onto = subsample_ontology(union_corpus.ontology, coverage=0.6, seed=1)
    return TableUnionSearch(
        union_corpus.lake,
        ontology=onto,
        space=union_space,
        config=TusConfig(num_perm=128),
    ).build()


def test_e04_measures(union_corpus, tus_engine, benchmark):
    queries = [members[0] for members in union_corpus.groups.values()]
    k = 5
    table = ExperimentTable(
        "E4: attribute unionability measures (TUS)",
        ["measure", f"P@{k}", f"R@{k}"],
    )
    scores = {}
    for measure in MEASURES:
        ps, rs = [], []
        for q in queries:
            res = tus_engine.search(
                union_corpus.lake.table(q), k=k, measure=measure
            )
            got = [r.table for r in res]
            ps.append(precision_at_k(got, union_corpus.truth[q], k))
            rs.append(recall_at_k(got, union_corpus.truth[q], k))
        p = sum(ps) / len(ps)
        r = sum(rs) / len(rs)
        table.add_row(measure, p, r)
        scores[measure] = p
    table.note("expected shape: sem/nl >= set under partial overlap; "
               "ensemble >= each component")
    table.show()

    assert scores["ensemble"] >= max(scores["set"], scores["sem"], scores["nl"]) - 0.05
    assert max(scores["sem"], scores["nl"]) >= scores["set"] - 0.05
    assert scores["ensemble"] >= 0.8

    q0 = union_corpus.lake.table(queries[0])
    benchmark.pedantic(
        lambda: tus_engine.search(q0, k=5, measure="ensemble"),
        rounds=3,
        iterations=1,
    )
