"""E13 — DomainNet (Leventidis et al., EDBT'21) analogue.

Rows reproduced: precision@k of homograph detection via betweenness
centrality vs. a degree-centrality baseline.  Expected shape: betweenness
ranks planted homographs (bridges between unrelated domains) far above
ordinary values; degree alone is a weaker signal.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.metrics import precision_at_k
from repro.datalake.generate import make_homograph_corpus
from repro.graph.homograph import HomographDetector


@pytest.fixture(scope="module")
def corpus():
    return make_homograph_corpus(
        n_tables=60, n_homographs=12, rows_per_table=35, seed=42
    )


def test_e13_homograph_precision(corpus, benchmark):
    detector = HomographDetector(approx_samples=150)
    ranked = detector.score_values(corpus.lake)

    # Degree baseline on the same bipartite graph.
    g = detector.build_graph(corpus.lake)
    degree_ranked = sorted(
        ((n[1], d) for n, d in g.degree() if n[0] == "val"),
        key=lambda kv: (-kv[1], kv[0]),
    )

    table = ExperimentTable(
        "E13: homograph detection (betweenness vs degree)",
        ["method", "P@5", "P@10"],
    )
    rows = {}
    for name, ranking in [
        ("betweenness", [h.value for h in ranked]),
        ("degree", [v for v, _ in degree_ranked]),
    ]:
        p5 = precision_at_k(ranking, corpus.homographs, 5)
        p10 = precision_at_k(ranking, corpus.homographs, 10)
        table.add_row(name, p5, p10)
        rows[name] = (p5, p10)
    table.note("expected shape: betweenness >> degree (homographs bridge "
               "domains but are not the most frequent values)")
    table.show()

    assert rows["betweenness"][1] >= 0.6
    assert rows["betweenness"][1] >= rows["degree"][1]

    benchmark.pedantic(
        lambda: HomographDetector(approx_samples=50).top_homographs(
            corpus.lake, k=10
        ),
        rounds=2,
        iterations=1,
    )
