"""E9 — QCR correlation sketch (Santos et al., ICDE'22), Fig. 6 analogue.

Rows reproduced: precision of correlated-join search and estimation error
as a function of sketch size.  Expected shape: error shrinks and precision
rises with sketch size; even small sketches rank highly-correlated
candidates first.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.metrics import (
    kendall_tau,
    mean_absolute_error,
    precision_at_k,
)
from repro.datalake.generate import make_correlation_corpus
from repro.search.correlated import CorrelatedSearch


@pytest.fixture(scope="module")
def corpus():
    return make_correlation_corpus(n_candidates=36, n_keys=500, seed=42)


def test_e09_sketch_size_sweep(corpus, benchmark):
    query = corpus.lake.table(corpus.query_table)
    truly_correlated = {t for t, r in corpus.truth.items() if r >= 0.6}
    table = ExperimentTable(
        "E9: correlated-join search (QCR sketch size sweep)",
        ["sketch_n", "P@10", "mae", "kendall_tau"],
    )
    maes, precisions = {}, {}
    for n in (64, 128, 256, 512):
        engine = CorrelatedSearch(sketch_size=n).build(corpus.lake)
        hits = engine.search(query, 0, 1, k=36, min_containment=0.1)
        got = [h.table for h in hits]
        ests = [abs(h.correlation) for h in hits]
        truths = [corpus.truth[h.table] for h in hits]
        p10 = precision_at_k(got, truly_correlated, 10)
        mae = mean_absolute_error(ests, truths)
        tau = kendall_tau(ests, truths)
        table.add_row(n, p10, mae, tau)
        maes[n] = mae
        precisions[n] = p10
    table.note("expected shape: mae decreases with n; P@10 high throughout")
    table.show()

    assert maes[512] <= maes[64]
    assert precisions[512] >= 0.8
    assert precisions[64] >= 0.6

    engine = CorrelatedSearch(sketch_size=256).build(corpus.lake)
    benchmark.pedantic(
        lambda: engine.search(query, 0, 1, k=10), rounds=5, iterations=1
    )
