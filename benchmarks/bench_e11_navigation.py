"""E11 — Data lake organization (Nargesian et al., SIGMOD'20) analogue.

Rows reproduced: expected navigation cost of the learned organization vs.
the flat-list baseline, and navigation success rate, across branching
factors.  Expected shape: organized navigation costs a small fraction of
scanning the flat list, with success rate near 1.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.graph.organize import Organization, flat_navigation_cost


@pytest.fixture(scope="module")
def table_vectors(union_corpus, union_space):
    vectors = {}
    for t in union_corpus.lake:
        values = [
            v
            for _, col in t.text_columns()
            for v in col.non_null_values()[:40]
        ]
        vectors[t.name] = union_space.embed_set(values)
    return vectors


def test_e11_navigation_cost(union_corpus, table_vectors, benchmark):
    probes = [(v, name) for name, v in table_vectors.items()]
    flat = flat_navigation_cost(len(table_vectors))
    table = ExperimentTable(
        "E11: navigation cost (organization vs flat list)",
        ["structure", "expected_cost", "success_rate", "depth"],
    )
    table.add_row("flat list", flat, 1.0, 1)
    best_cost = float("inf")
    for branching in (2, 4, 8):
        org = Organization.build(
            table_vectors, branching=branching, max_leaf_size=4, seed=42
        )
        cost = org.expected_cost(probes)
        hits = sum(
            1 for v, name in probes if org.navigation_success(v, name)[0]
        )
        table.add_row(
            f"org b={branching}", cost, hits / len(probes), org.depth()
        )
        best_cost = min(best_cost, cost)
    table.note("expected shape: organization cost << flat list cost")
    table.show()

    assert best_cost < 0.5 * flat

    org = Organization.build(table_vectors, branching=4, max_leaf_size=4)
    benchmark.pedantic(
        lambda: org.navigate(probes[0][0]), rounds=20, iterations=1
    )
