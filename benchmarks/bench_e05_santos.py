"""E5 — SANTOS (Khatiwada et al., SIGMOD'23), Table 5 analogue.

Rows reproduced: P@k and MAP of relationship-aware union search vs. the
column-only baseline, on a corpus with confounder tables that share column
domains but break the row-level relationship.  Expected shape: SANTOS'
precision far exceeds the column-only baseline, which cannot separate
confounders from true positives.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.metrics import average_precision, precision_at_k
from repro.datalake.generate import make_relationship_corpus
from repro.search.union_santos import (
    ColumnOnlySantosBaseline,
    SantosUnionSearch,
)


@pytest.fixture(scope="module")
def corpus():
    return make_relationship_corpus(
        n_queries=5, positives_per_query=6, confounders_per_query=6, seed=42
    )


def test_e05_relationship_vs_column_only(corpus, benchmark):
    santos = SantosUnionSearch(corpus.lake, corpus.ontology).build()
    baseline = ColumnOnlySantosBaseline(corpus.lake, corpus.ontology).build()

    table = ExperimentTable(
        "E5: relationship-aware union search (SANTOS vs column-only)",
        ["method", "P@3", "P@6", "MAP"],
    )
    summary = {}
    for name, engine in [("santos", santos), ("column-only", baseline)]:
        p3s, p6s, aps = [], [], []
        for q, truth in sorted(corpus.truth.items()):
            res = [r.table for r in engine.search(corpus.lake.table(q), k=12)]
            p3s.append(precision_at_k(res, truth, 3))
            p6s.append(precision_at_k(res, truth, 6))
            aps.append(average_precision(res, truth))
        row = (
            sum(p3s) / len(p3s),
            sum(p6s) / len(p6s),
            sum(aps) / len(aps),
        )
        table.add_row(name, *row)
        summary[name] = row
    table.note("expected shape: santos >> column-only on P@6 and MAP "
               "(confounders share domains, not relationships)")
    table.show()

    assert summary["santos"][1] >= summary["column-only"][1] + 0.2
    assert summary["santos"][2] >= 0.8

    q0 = corpus.lake.table(sorted(corpus.truth)[0])
    benchmark.pedantic(lambda: santos.search(q0, k=6), rounds=5, iterations=1)
