"""E8 — D4-style domain discovery (Ota et al., VLDB'20) analogue.

Rows reproduced: domain recovery quality (mean best-F1 against planted
domains) for the full pipeline vs. a naive single-column baseline, plus the
min-support ablation.  Expected shape: co-occurrence clustering recovers
domains far better than treating each column as its own domain.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.understanding.domains import (
    DiscoveredDomain,
    DomainDiscovery,
    domain_recovery_score,
)


@pytest.fixture(scope="module")
def truth(union_corpus):
    out = []
    for d in range(len(union_corpus.pool)):
        vocab = set(union_corpus.pool.domain(d).values)
        present = set()
        for _, col in union_corpus.lake.iter_text_columns():
            present |= vocab & col.value_set()
        if len(present) >= 5:
            out.append(present)
    return out


def test_e08_domain_recovery(union_corpus, truth, benchmark):
    table = ExperimentTable(
        "E8: unsupervised domain discovery (D4-style)",
        ["method", "domains_found", "recovery_f1"],
    )

    # Baseline: every column is its own "domain".
    per_column = [
        DiscoveredDomain(values=set(col.value_set()), representative="")
        for _, col in union_corpus.lake.iter_text_columns()
        if len(col.value_set()) >= 5
    ]
    base_score = domain_recovery_score(per_column, truth)
    table.add_row("per-column baseline", len(per_column), base_score)

    scores = {}
    for support in (1, 2, 3):
        discovery = DomainDiscovery(min_support=support)
        domains = discovery.discover(union_corpus.lake)
        score = domain_recovery_score(domains, truth)
        table.add_row(f"cluster (support>={support})", len(domains), score)
        scores[support] = score
    table.note("expected shape: clustering >> per-column; support=1 best "
               "against full-lake truth")
    table.show()

    assert scores[1] > base_score
    assert scores[1] >= 0.8

    benchmark.pedantic(
        lambda: DomainDiscovery(min_support=1).discover(union_corpus.lake),
        rounds=3,
        iterations=1,
    )
