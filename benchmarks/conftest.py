"""Shared corpora for the benchmark suite.

Each bench module regenerates one exhibit from the surveyed papers (see
DESIGN.md §3 and EXPERIMENTS.md).  Corpora are session-scoped: generation
and offline index builds are excluded from the timed sections.
"""

from __future__ import annotations

import pytest

from repro.datalake.generate import (
    make_join_corpus,
    make_union_corpus,
)
from repro.understanding.embedding import train_embeddings


@pytest.fixture(scope="session")
def join_corpus():
    return make_join_corpus(n_tables=120, n_queries=6, base_size=1200, seed=42)


@pytest.fixture(scope="session")
def union_corpus():
    return make_union_corpus(
        n_groups=8, tables_per_group=6, rows_per_table=50, seed=42
    )


@pytest.fixture(scope="session")
def union_space(union_corpus):
    return train_embeddings(union_corpus.lake, dim=48, seed=42)
