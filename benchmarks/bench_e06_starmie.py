"""E6 — Starmie (Fan et al., VLDB'23), Fig. 7 + Table 4 analogue.

Rows reproduced: (a) retrieval quality (MAP / P@k) of contextual column
embeddings vs. the non-contextual ablation; (b) query latency across the
index ablation (linear scan vs. LSH vs. HNSW).  Expected shape: contextual
representation does not lose to plain value-bag embeddings, and HNSW/LSH
give large speedups over the linear scan at comparable quality.
"""

import time

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.metrics import average_precision, precision_at_k
from repro.search.union_starmie import StarmieConfig, StarmieUnionSearch
from repro.understanding.contextual import ContextualColumnEncoder


def _quality(engine, union_corpus, queries, k=5):
    ps, aps = [], []
    for q in queries:
        res = [r.table for r in engine.search(union_corpus.lake.table(q), k=k)]
        ps.append(precision_at_k(res, union_corpus.truth[q], k))
        aps.append(average_precision(res, union_corpus.truth[q]))
    return sum(ps) / len(ps), sum(aps) / len(aps)


@pytest.fixture(scope="module")
def queries(union_corpus):
    return [members[0] for members in union_corpus.groups.values()]


def test_e06_context_ablation(union_corpus, union_space, queries, benchmark):
    plain = StarmieUnionSearch(
        union_corpus.lake,
        ContextualColumnEncoder(union_space, context_weight=0.0),
        StarmieConfig(index="linear"),
    ).build()
    contextual = StarmieUnionSearch(
        union_corpus.lake,
        ContextualColumnEncoder(union_space, context_weight=0.3),
        StarmieConfig(index="linear"),
    ).build()
    table = ExperimentTable(
        "E6a: contextual vs plain column embeddings (Starmie ablation)",
        ["encoder", "P@5", "MAP"],
    )
    p_plain, map_plain = _quality(plain, union_corpus, queries)
    p_ctx, map_ctx = _quality(contextual, union_corpus, queries)
    table.add_row("plain", p_plain, map_plain)
    table.add_row("contextual", p_ctx, map_ctx)
    table.note("expected shape: contextual >= plain on MAP")
    table.show()
    assert map_ctx >= map_plain - 0.05
    assert p_ctx >= 0.8

    q0 = union_corpus.lake.table(queries[0])
    benchmark.pedantic(lambda: contextual.search(q0, k=5), rounds=5, iterations=1)


def test_e06_index_ablation(union_corpus, union_space, queries, benchmark):
    encoder = ContextualColumnEncoder(union_space, context_weight=0.3)
    table = ExperimentTable(
        "E6b: ANN index ablation (linear vs LSH vs HNSW)",
        ["index", "P@5", "MAP", "query_ms"],
    )
    latency = {}
    quality = {}
    for kind in ("linear", "lsh", "hnsw"):
        engine = StarmieUnionSearch(
            union_corpus.lake, encoder, StarmieConfig(index=kind)
        ).build()
        t0 = time.perf_counter()
        p, m = _quality(engine, union_corpus, queries)
        ms = (time.perf_counter() - t0) * 1000 / len(queries)
        table.add_row(kind, p, m, ms)
        latency[kind] = ms
        quality[kind] = p
    table.note("expected shape: hnsw/lsh quality ~= linear; latency lower "
               "as the lake grows (crossover visible in E16)")
    table.show()

    assert quality["hnsw"] >= quality["linear"] - 0.2
    assert quality["lsh"] >= quality["linear"] - 0.25

    engine = StarmieUnionSearch(
        union_corpus.lake, encoder, StarmieConfig(index="hnsw")
    ).build()
    q0 = union_corpus.lake.table(queries[0])
    benchmark.pedantic(lambda: engine.search(q0, k=5), rounds=5, iterations=1)
