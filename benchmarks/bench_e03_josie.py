"""E3 — JOSIE (Zhu et al., SIGMOD'19), Fig. 8 analogue.

Rows reproduced: exact top-k joinable-search latency and work vs. k, JOSIE
vs. the MergeList (full scan) baseline.  Expected shape: JOSIE verifies a
fraction of the candidates the merge baseline touches, answers are
identical, and latency grows mildly with k.
"""

import time

import pytest

from repro.bench.harness import ExperimentTable
from repro.obs import METRICS
from repro.search.josie import JosieIndex


@pytest.fixture(scope="module")
def josie_index(join_corpus):
    idx = JosieIndex()
    for ref, col in join_corpus.lake.iter_text_columns():
        values = col.value_set()
        if values:
            idx.insert(ref, values)
    queries = [
        set(join_corpus.lake.column(q.column).value_set())
        for q in join_corpus.queries
    ]
    return idx, queries


def test_e03_topk_sweep(josie_index, benchmark):
    idx, queries = josie_index
    table = ExperimentTable(
        "E3: exact top-k joinable search (JOSIE vs MergeList)",
        ["k", "josie_ms", "merge_ms", "sets_verified", "index_size"],
    )
    ratios = []
    for k in (1, 5, 10, 25, 50):
        t0 = time.perf_counter()
        results = [idx.topk(q, k=k) for q in queries]
        josie_ms = (time.perf_counter() - t0) * 1000 / len(queries)
        t0 = time.perf_counter()
        merged = [idx.full_merge_topk(q, k=k) for q in queries]
        merge_ms = (time.perf_counter() - t0) * 1000 / len(queries)
        assert results == merged, f"JOSIE diverged from brute force at k={k}"
        verified = sum(
            idx.topk_with_stats(q, k=k)[1]["sets_verified"] for q in queries
        ) / len(queries)
        table.add_row(k, josie_ms, merge_ms, verified, len(idx))
        ratios.append(verified / len(idx))
    table.note("expected shape: verified << index size; answers exact")
    table.attach_metrics(METRICS.snapshot(), match="search.josie")
    table.show()
    assert ratios[0] < 0.6, "early termination should skip most candidates"

    benchmark.pedantic(lambda: idx.topk(queries[0], k=10), rounds=10, iterations=1)
