"""E1 — the tutorial's Figure 1: the end-to-end architecture.

This bench exercises the full DiscoverySystem pipeline on a mixed corpus:
every offline stage (understanding, embedding, all indices, navigation) and
every online API (keyword, joinable, unionable, correlated, navigation,
ML augmentation).  The reported table is the per-stage offline cost plus a
one-line quality check per online component — the "does the whole Figure-1
box work" exhibit.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.metrics import precision_at_k
from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.table import ColumnRef


@pytest.fixture(scope="module")
def system(union_corpus):
    config = DiscoveryConfig(
        embedding_dim=48, enable_domains=True, num_partitions=4
    )
    return DiscoverySystem(
        union_corpus.lake, config, ontology=union_corpus.ontology
    ).build()


def test_e01_offline_pipeline(system, benchmark):
    table = ExperimentTable(
        "E1a: offline pipeline stages (Figure 1, left-to-right)",
        ["stage", "ms"],
    )
    for stage, seconds in system.stats.stage_seconds.items():
        table.add_row(stage, seconds * 1000)
    table.note(
        f"lake: {system.stats.tables} tables / {system.stats.columns} "
        f"columns; vocabulary {system.stats.vocabulary}; "
        f"{system.stats.domains_found} domains discovered"
    )
    table.show()
    assert system.stats.stage_seconds["union_index"] > 0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e01_online_apis(system, union_corpus, benchmark):
    qname = union_corpus.groups[0][0]
    table = ExperimentTable(
        "E1b: online components (Figure 1, search engine + support)",
        ["component", "quality", "detail"],
    )

    hits = system.keyword_search("group 0", k=5)
    kw_ok = hits and hits[0].table.startswith("union_g00")
    table.add_row("keyword search", float(bool(kw_ok)), "top hit in topic")

    res = system.joinable_search(ColumnRef(qname, 0), k=5)
    table.add_row("joinable (JOSIE)", float(bool(res)), f"{len(res)} hits")

    for method in ("tus", "santos", "starmie"):
        res = system.unionable_search(qname, k=3, method=method)
        p = precision_at_k(
            [r.table for r in res], union_corpus.truth[qname], 3
        )
        table.add_row(f"unionable ({method})", p, "P@3 vs group truth")
        assert p >= 0.6, method

    org = system.organization()
    table.add_row(
        "navigation", 1.0, f"{org.num_nodes()} nodes, depth {org.depth()}"
    )

    nav = system.navigate("concept_000")
    table.add_row("navigate(intent)", float(bool(nav)), f"{len(nav)} tables")

    related = system.related_columns(ColumnRef(qname, 0), k=5)
    table.add_row("EKG related columns", float(bool(related)),
                  f"{len(related)} neighbours")
    table.show()

    benchmark.pedantic(
        lambda: system.unionable_search(qname, k=3, method="starmie"),
        rounds=5,
        iterations=1,
    )
