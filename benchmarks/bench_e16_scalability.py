"""E16 — scalability cross-cut (tutorial §3: "indexing for data lakes").

Rows reproduced: index build time and query time vs. lake size for the
three index families the tutorial highlights — inverted lists (JOSIE),
MinHash LSH (ensemble), and graph-based vector indices (HNSW) — against
the no-index scan.  Expected shape: query time of indexed methods grows
sublinearly with lake size; the scan grows linearly, so the index/scan gap
widens (the §3 argument for lake-scale indexing).
"""

import time

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.datalake.generate import make_join_corpus
from repro.search.josie import JosieIndex
from repro.sketch.hnsw import HNSW
from repro.sketch.lshensemble import LSHEnsemble
from repro.sketch.minhash import MinHash


def _column_sets(corpus, cap=None):
    out = []
    for ref, col in corpus.lake.iter_text_columns():
        values = set(col.value_set())
        if len(values) >= 2:
            out.append((ref, values))
        if cap and len(out) >= cap:
            break
    return out


def test_e16_scaling(benchmark):
    table = ExperimentTable(
        "E16: index scalability (query ms vs lake size)",
        ["columns", "scan_ms", "josie_ms", "ensemble_ms", "hnsw_ms"],
    )
    sizes = (100, 300, 900)
    scan_times, josie_times, ens_times, hnsw_times = [], [], [], []
    rng = np.random.default_rng(3)
    for n_cols in sizes:
        corpus = make_join_corpus(
            n_tables=max(40, n_cols // 3), n_queries=3, seed=7
        )
        cols = _column_sets(corpus, cap=n_cols)
        qset = cols[0][1]

        # Scan baseline: exact containment against every column.
        t0 = time.perf_counter()
        for _ in range(3):
            _ = [
                (ref, len(qset & s) / len(qset)) for ref, s in cols
            ]
        scan_ms = (time.perf_counter() - t0) * 1000 / 3
        # JOSIE.
        josie = JosieIndex()
        for ref, s in cols:
            josie.insert(ref, s)
        t0 = time.perf_counter()
        for _ in range(3):
            josie.topk(qset, k=10)
        josie_ms = (time.perf_counter() - t0) * 1000 / 3
        # LSH Ensemble.
        ens = LSHEnsemble(num_partitions=8)
        entries = [(ref, MinHash.from_values(s), len(s)) for ref, s in cols]
        ens.index(entries)
        qmh = MinHash.from_values(qset)
        t0 = time.perf_counter()
        for _ in range(3):
            ens.query(qmh, len(qset), 0.7)
        ens_ms = (time.perf_counter() - t0) * 1000 / 3
        # HNSW over random vectors standing in for column embeddings.
        vectors = {i: rng.normal(size=32) for i in range(len(cols))}
        hnsw = HNSW(dim=32, m=8, seed=1)
        for key, v in vectors.items():
            hnsw.add(key, v)
        t0 = time.perf_counter()
        for _ in range(3):
            hnsw.search(vectors[0], k=10, ef=48)
        hnsw_ms = (time.perf_counter() - t0) * 1000 / 3

        table.add_row(len(cols), scan_ms, josie_ms, ens_ms, hnsw_ms)
        scan_times.append(scan_ms)
        josie_times.append(josie_ms)
        ens_times.append(ens_ms)
        hnsw_times.append(hnsw_ms)
    table.note("expected shape: scan grows ~linearly; sketch/graph index "
               "query times grow sublinearly")
    table.show()

    scan_growth = scan_times[-1] / max(scan_times[0], 1e-6)
    ens_growth = ens_times[-1] / max(ens_times[0], 1e-6)
    hnsw_growth = hnsw_times[-1] / max(hnsw_times[0], 1e-6)
    assert ens_growth < scan_growth * 1.5
    assert hnsw_growth < (sizes[-1] / sizes[0])

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
