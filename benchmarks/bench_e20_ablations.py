"""E20 — design-choice ablations called out in DESIGN.md §4.

Three ablations that cut across experiments:

* **A1 aggregation**: Hungarian vs. greedy column-to-table aggregation
  (Starmie uses greedy for speed; how much quality does it give up?);
* **A2 MinHash budget**: Jaccard estimation error vs. num_perm
  (the accuracy/space knob under every LSH index);
* **A3 schema matchers**: the Valentine matcher family on union-corpus
  table pairs (schema-only vs. instance-based vs. composite).
"""

import random
import time

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.search.aggregate import greedy_alignment, hungarian_alignment
from repro.search.valentine import (
    CompositeMatcher,
    EmbeddingMatcher,
    HeaderMatcher,
    ValueOverlapMatcher,
    evaluate_matcher,
)
from repro.sketch.minhash import MinHash, exact_jaccard


def test_e20_a1_aggregation(benchmark):
    rng = np.random.default_rng(42)
    gaps, g_ms, h_ms = [], 0.0, 0.0
    for _ in range(200):
        scores = rng.uniform(0, 1, size=(6, 8))
        t0 = time.perf_counter()
        h_total, _ = hungarian_alignment(scores)
        h_ms += time.perf_counter() - t0
        t0 = time.perf_counter()
        g_total, _ = greedy_alignment(scores)
        g_ms += time.perf_counter() - t0
        gaps.append((h_total - g_total) / h_total if h_total else 0.0)
    table = ExperimentTable(
        "E20-A1: Hungarian vs greedy aggregation (200 random 6x8 matrices)",
        ["matcher", "mean_quality_gap", "total_ms"],
    )
    table.add_row("hungarian", 0.0, h_ms * 1000)
    table.add_row("greedy", float(np.mean(gaps)), g_ms * 1000)
    table.note("expected shape: greedy loses only a few percent of the "
               "optimal total — the Starmie trade-off")
    table.show()
    assert float(np.mean(gaps)) < 0.05

    scores = rng.uniform(0, 1, size=(6, 8))
    benchmark.pedantic(lambda: greedy_alignment(scores), rounds=20,
                       iterations=1)


def test_e20_a2_minhash_budget(benchmark):
    rng = random.Random(42)
    universe = [f"u{i}" for i in range(3000)]
    pairs = []
    for _ in range(30):
        a = set(rng.sample(universe, rng.randint(100, 800)))
        b = set(rng.sample(universe, rng.randint(100, 800)))
        pairs.append((a, b))
    table = ExperimentTable(
        "E20-A2: MinHash Jaccard error vs num_perm",
        ["num_perm", "mean_abs_error", "theory_stderr"],
    )
    errors = {}
    for num_perm in (16, 64, 256, 1024):
        errs = []
        for a, b in pairs:
            ma = MinHash.from_values(a, num_perm=num_perm)
            mb = MinHash.from_values(b, num_perm=num_perm)
            errs.append(abs(ma.jaccard(mb) - exact_jaccard(a, b)))
        mean_err = float(np.mean(errs))
        table.add_row(num_perm, mean_err, 1.0 / num_perm**0.5)
        errors[num_perm] = mean_err
    table.note("expected shape: error ~ 1/sqrt(num_perm)")
    table.show()
    assert errors[1024] < errors[16]
    assert errors[1024] < 0.05

    a, b = pairs[0]
    benchmark.pedantic(
        lambda: MinHash.from_values(a, num_perm=128), rounds=5, iterations=1
    )


def test_e20_a3_schema_matchers(union_corpus, union_space, benchmark):
    # Ground truth: columns of intra-group table pairs match when they are
    # annotated with the same ontology concept.
    onto = union_corpus.ontology
    eval_pairs = []
    for g in range(4):
        src = union_corpus.lake.table(union_corpus.groups[g][0])
        tgt = union_corpus.lake.table(union_corpus.groups[g][1])
        truth = set()
        for i, a in src.text_columns():
            ca = onto.annotate_column(a.non_null_values())
            for j, b in tgt.text_columns():
                if ca is not None and ca == onto.annotate_column(
                    b.non_null_values()
                ):
                    truth.add((i, j))
        eval_pairs.append((src, tgt, truth))

    matchers = [
        ("header", HeaderMatcher()),
        ("value-overlap", ValueOverlapMatcher()),
        ("embedding", EmbeddingMatcher(union_space)),
        (
            "composite",
            CompositeMatcher(
                [
                    (HeaderMatcher(), 0.6),
                    (ValueOverlapMatcher(), 1.0),
                    (EmbeddingMatcher(union_space), 1.0),
                ]
            ),
        ),
    ]
    table = ExperimentTable(
        "E20-A3: Valentine matcher family (recall@ground-truth)",
        ["matcher", "precision", "recall_at_gt"],
    )
    recalls = {}
    for name, matcher in matchers:
        report = evaluate_matcher(matcher, eval_pairs)
        table.add_row(name, report["precision"], report["recall_at_gt"])
        recalls[name] = report["recall_at_gt"]
    table.note("expected shape: instance-based >= schema-only on noisy "
               "headers; composite >= all")
    table.show()

    assert recalls["embedding"] >= recalls["header"]
    assert recalls["composite"] >= max(recalls.values()) - 0.05

    src, tgt, _ = eval_pairs[0]
    benchmark.pedantic(
        lambda: matchers[3][1].match(src, tgt), rounds=3, iterations=1
    )
