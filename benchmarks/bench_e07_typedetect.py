"""E7 — Sherlock (KDD'19) Table 2 / Sato (VLDB'20) Table 3 analogue.

Rows reproduced: semantic type detection accuracy / macro-F1 per method:
column-only features (Sherlock) vs. table-context-aware detection (Sato),
on a corpus where several type pairs are rendered ambiguously and only
table context disambiguates.  Expected shape: Sato > Sherlock overall, with
the gap concentrated on the ambiguous types.
"""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.metrics import classification_report
from repro.datalake.generate import AMBIGUOUS_RENDER, make_typed_corpus
from repro.understanding.sato import ColumnOnlyBaseline, SatoTypeDetector


@pytest.fixture(scope="module")
def split():
    corpus = make_typed_corpus(
        n_tables=90, cols_per_table=5, ambiguity=0.8, seed=42
    )
    tables = sorted(corpus.lake, key=lambda t: t.name)
    cut = int(0.7 * len(tables))
    labels = {(r.table, r.index): t for r, t in corpus.labels.items()}
    return tables[:cut], tables[cut:], labels


def _report(preds, labels, tables, only_types=None):
    keys = [
        (t.name, i)
        for t in tables
        for i in range(t.num_cols)
        if (t.name, i) in labels
        and (only_types is None or labels[(t.name, i)] in only_types)
    ]
    return classification_report(
        [preds[k] for k in keys], [labels[k] for k in keys]
    )


def test_e07_context_vs_column_only(split, benchmark):
    train, test, labels = split
    sato = SatoTypeDetector(n_epochs=300).fit(train, labels)
    sherlock = ColumnOnlyBaseline(n_epochs=300).fit(train, labels)

    sato_preds = sato.predict(test)
    sherlock_preds = sherlock.predict(test)
    ambiguous = set(AMBIGUOUS_RENDER)

    table = ExperimentTable(
        "E7: semantic type detection (Sherlock vs Sato)",
        ["method", "accuracy", "macro_f1", "acc_ambiguous_types"],
    )
    rows = {}
    for name, preds in [("sherlock", sherlock_preds), ("sato", sato_preds)]:
        rep = _report(preds, labels, test)
        amb = _report(preds, labels, test, only_types=ambiguous)
        table.add_row(name, rep["accuracy"], rep["macro_f1"], amb["accuracy"])
        rows[name] = (rep["accuracy"], amb["accuracy"])
    table.note("expected shape: sato > sherlock, gap largest on ambiguous types")
    table.show()

    assert rows["sato"][0] > rows["sherlock"][0]
    assert rows["sato"][1] > rows["sherlock"][1]

    benchmark.pedantic(lambda: sato.predict(test[:5]), rounds=3, iterations=1)
