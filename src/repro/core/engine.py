"""The Engine protocol and registry: one pluggable seam for every
search method the Figure-1 system serves.

Historically each surveyed method (JOSIE, LSH Ensemble, MATE, PEXESO,
Starmie, ...) was wired by hand in five different places: the
``DiscoverySystem`` build stages, a bespoke ``*_search`` method, the
``index_stats()`` introspection, the snapshot payload, and the SLO /
query-log engine names.  Every new method cost edits across all of them.

This module replaces the hand-wiring with a single protocol:

:class:`Engine`
    One discovery method behind a uniform surface — ``name``, the build
    ``stage`` it belongs to, the stages it ``depends_on``, ``build(ctx)``,
    ``query(request)``, ``stats()``, and ``to_payload()``/``from_payload()``
    for snapshots.

:class:`EngineRegistry` / :func:`register_engine`
    The process-wide catalogue of engine classes.  Everything downstream is
    *derived* from it: the offline stage DAG (``stage_names()`` /
    ``stage_deps()``), the snapshot payload layout, the
    ``index_stats()``/``repro inspect`` reports, the ``repro engines``
    listing, and the set of query-log/SLO engine labels
    (``query_labels()``).

Adding a new engine (say a TabSketchFM-style sketch encoder) is one new
module under ``repro/engines/`` with a ``@register_engine`` class — no
edits to the system facade, snapshot code, CLI, or observability layers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Iterator

from repro.core.errors import LakeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import DiscoverySystem
    from repro.datalake.table import Column, Table
    from repro.search.explain import ExplainReport

#: Engine label used by the federated dispatcher in the query log / SLOs.
FEDERATED_LABEL = "federated"

#: Valid values of :attr:`Engine.category`.
CATEGORIES = ("search", "navigation", "foundation")


@dataclass
class QueryRequest:
    """One online query, normalized across engines.

    Engines read only the fields they understand; :meth:`Engine.accepts`
    says whether a given request carries enough for that engine to run.
    """

    k: int = 10
    text: str | None = None
    table: "Table | None" = None
    column: "Column | None" = None
    exclude_table: str | None = None
    key_columns: tuple[int, ...] | None = None
    key_column: int | None = None
    value_column: int | None = None
    threshold: float | None = None
    explain: bool = False


@dataclass(frozen=True)
class FederatedHit:
    """One table in a federated result: reciprocal-rank-fusion score plus
    the per-engine ranks that produced it."""

    table: str
    score: float
    #: engine name -> 1-based rank of this table in that engine's results
    sources: dict[str, int] = field(default_factory=dict, compare=False)

    def __lt__(self, other: "FederatedHit") -> bool:
        return (-self.score, self.table) < (-other.score, other.table)


class EngineContext:
    """What an engine sees at build / restore time: the owning system's
    lake, config, ontology, and understanding outputs, plus a memo for
    structures co-owned by several engines (the three join engines share
    one :class:`~repro.search.joinable.JoinableSearch`)."""

    def __init__(self, system: "DiscoverySystem"):
        self.system = system
        self._shared: dict[str, Any] = {}

    # Convenience views over the owning system -------------------------------
    @property
    def lake(self):
        return self.system.lake

    @property
    def config(self):
        return self.system.config

    @property
    def ontology(self):
        return self.system.ontology

    @property
    def space(self):
        return self.system.space

    @property
    def encoder(self):
        return self.system.encoder

    @property
    def annotations(self):
        return self.system.annotations

    def shared(self, key: str, factory: Callable[[], Any]) -> Any:
        """Build-or-get a structure shared by several engines of one stage.

        The first engine of the stage to ask pays for the build; the rest
        reuse it.  Stages run single-threaded, so no locking is needed
        beyond the per-stage serialization the DAG already provides.
        """
        if key not in self._shared:
            self._shared[key] = factory()
        return self._shared[key]

    def reset_shared(self) -> None:
        self._shared.clear()


class Engine(ABC):
    """One discovery method behind the uniform engine protocol.

    Class-level declarations drive everything derived from the registry:

    ``name``
        Registry key; also the ``index.<name>.*`` gauge prefix and the
        ``repro engines`` row.
    ``stage`` / ``depends_on``
        The offline build stage this engine belongs to and the stages it
        needs finished first — the stage DAG is generated from these.
    ``category``
        ``"search"`` (rankable results, participates in federation),
        ``"navigation"``, or ``"foundation"`` (understanding stages that
        produce shared inputs, not query results).
    ``query_label``
        The query-log / SLO / metrics engine label this engine's queries
        are recorded under (several engines may share one label, e.g. the
        three join engines all log as ``"join"``).
    ``kind`` / ``items_key``
        Introspection: the index family shown by ``repro inspect`` and the
        ``stats()`` key holding the primary cardinality.
    """

    name: ClassVar[str]
    stage: ClassVar[str]
    depends_on: ClassVar[tuple[str, ...]] = ()
    category: ClassVar[str] = "search"
    query_label: ClassVar[str] = ""
    kind: ClassVar[str] = ""
    items_key: ClassVar[str | None] = None

    def __init__(self) -> None:
        self.ctx: EngineContext | None = None

    # -- offline -----------------------------------------------------------------
    @abstractmethod
    def build(self, ctx: EngineContext) -> None:
        """Build this engine's index over ``ctx.lake``.  Must be a no-op
        (leaving the engine unbuilt) when its inputs are unavailable."""

    @abstractmethod
    def is_built(self) -> bool:
        """Whether this engine can serve queries right now."""

    # -- introspection -----------------------------------------------------------
    @abstractmethod
    def stats(self) -> dict:
        """Structural introspection numbers (JSON-serializable)."""

    def items(self, stats: dict) -> int:
        """Primary cardinality for ``index_stats`` (from ``stats()``)."""
        if self.items_key is None:
            return 0
        return int(stats[self.items_key])

    def kind_of(self) -> str:
        """The index-family label (may depend on config once built)."""
        return self.kind

    def memory_object(self) -> Any:
        """The object whose deep size approximates this engine's memory."""
        return self.raw

    # -- online ------------------------------------------------------------------
    @property
    def raw(self) -> Any:
        """The underlying index object (or ``None`` before ``build``)."""
        return None

    def accepts(self, request: QueryRequest) -> bool:
        """Whether ``request`` carries enough input for this engine."""
        return False

    def query(
        self, request: QueryRequest
    ) -> tuple[list, "ExplainReport | None"]:
        """Serve one query; returns ``(hits, report-or-None)``."""
        raise LakeError(f"engine {self.name!r} does not serve queries")

    # -- snapshots ---------------------------------------------------------------
    @abstractmethod
    def to_payload(self) -> Any:
        """Pickle-ready state for the snapshot payload."""

    @abstractmethod
    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        """Restore the state produced by :meth:`to_payload`."""

    # -- description -------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Registry-level metadata for ``repro engines``."""
        return {
            "name": self.name,
            "stage": self.stage,
            "depends_on": list(self.depends_on),
            "category": self.category,
            "query_label": self.query_label,
            "kind": self.kind_of(),
        }


class EngineRegistry:
    """Ordered catalogue of engine classes; the single source the stage
    DAG, snapshots, introspection, CLI, and SLO labels derive from."""

    def __init__(self) -> None:
        self._classes: dict[str, type[Engine]] = {}

    def register(self, cls: type[Engine]) -> type[Engine]:
        name = getattr(cls, "name", None)
        if not name or not isinstance(name, str):
            raise ValueError(f"engine class {cls.__name__} has no name")
        if name in self._classes:
            raise ValueError(f"duplicate engine name {name!r}")
        if not getattr(cls, "stage", None):
            raise ValueError(f"engine {name!r} declares no build stage")
        if cls.category not in CATEGORIES:
            raise ValueError(
                f"engine {name!r} has unknown category {cls.category!r}"
            )
        if not isinstance(cls.depends_on, tuple):
            raise ValueError(f"engine {name!r}: depends_on must be a tuple")
        self._classes[name] = cls
        return cls

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[type[Engine]]:
        return iter(self._classes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def get(self, name: str) -> type[Engine]:
        try:
            return self._classes[name]
        except KeyError:
            raise KeyError(
                f"unknown engine {name!r}; registered: {sorted(self._classes)}"
            ) from None

    def all(self) -> list[type[Engine]]:
        """Every registered query-serving engine class (registration
        order) — the search and navigation engines, not the foundations."""
        return [
            c for c in self._classes.values() if c.category != "foundation"
        ]

    def foundations(self) -> list[type[Engine]]:
        """The registered foundation (understanding) stage classes."""
        return [
            c for c in self._classes.values() if c.category == "foundation"
        ]

    def names(self) -> list[str]:
        """Names of the query-serving engines, registration order."""
        return [c.name for c in self.all()]

    def create(self) -> dict[str, Engine]:
        """Fresh per-system instances of every query-serving engine."""
        return {c.name: c() for c in self.all()}

    def create_foundations(self) -> dict[str, Engine]:
        """Fresh per-system instances of every foundation stage."""
        return {c.name: c() for c in self.foundations()}

    # -- derivations --------------------------------------------------------------
    def stage_names(self) -> tuple[str, ...]:
        """Offline stage names in canonical order (first appearance over
        the registration order) — what ``STAGES`` used to hard-code."""
        seen: dict[str, None] = {}
        for cls in self._classes.values():
            seen.setdefault(cls.stage, None)
        return tuple(seen)

    def stage_deps(self) -> dict[str, tuple[str, ...]]:
        """Stage dependency edges, derived as the union of the member
        engines' ``depends_on`` — what ``STAGE_DEPS`` used to hard-code."""
        stages = set(self.stage_names())
        deps: dict[str, list[str]] = {}
        for cls in self._classes.values():
            for dep in cls.depends_on:
                if dep == cls.stage:
                    continue
                if dep not in stages:
                    raise ValueError(
                        f"engine {cls.name!r} depends on unknown stage "
                        f"{dep!r}"
                    )
                bucket = deps.setdefault(cls.stage, [])
                if dep not in bucket:
                    bucket.append(dep)
        return {stage: tuple(lst) for stage, lst in deps.items()}

    def by_stage(
        self, instances: dict[str, Engine]
    ) -> dict[str, list[Engine]]:
        """Group per-system instances by build stage, preserving the
        registration order inside each stage."""
        grouped: dict[str, list[Engine]] = {}
        for cls in self._classes.values():
            if cls.name in instances:
                grouped.setdefault(cls.stage, []).append(
                    instances[cls.name]
                )
        return grouped

    def query_labels(self) -> frozenset[str]:
        """Every query-log / SLO / metrics engine label the registered
        engines record under, plus the federated dispatcher's own."""
        labels = {
            c.query_label for c in self._classes.values() if c.query_label
        }
        labels.add(FEDERATED_LABEL)
        return frozenset(labels)


#: The process-wide registry that ``@register_engine`` populates.
REGISTRY = EngineRegistry()


def register_engine(cls: type[Engine]) -> type[Engine]:
    """Class decorator registering an :class:`Engine` in :data:`REGISTRY`."""
    return REGISTRY.register(cls)


def known_query_labels() -> frozenset[str]:
    """The valid query-log / SLO engine labels (loads the built-in engine
    adapters on first use so the registry is populated)."""
    import repro.engines  # noqa: F401  - registration side effect

    return REGISTRY.query_labels()
