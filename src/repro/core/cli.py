"""Command-line interface: table discovery over a directory of CSV files.

Usage::

    python -m repro stats     <lake_dir>
    python -m repro keyword   <lake_dir> --query "air quality" [-k 5]
    python -m repro join      <lake_dir> --table cities --column 0 [-k 5]
    python -m repro union     <lake_dir> --table cities [-k 5] [--method starmie]
    python -m repro navigate  <lake_dir> --intent "city population"
    python -m repro domains   <lake_dir>
    python -m repro profile   <lake_dir> [-o report.json] [--no-embeddings]

Every command ingests ``lake_dir`` (recursively, all ``*.csv``), runs the
offline pipeline stages it needs, and prints results to stdout.

All commands accept ``-v/--verbose`` (repeatable: ``-v`` INFO, ``-vv``
DEBUG, to stderr) and ``--profile`` (print the tracing span tree and the
metrics snapshot after the command's own output).  ``profile`` is the
batch variant: it runs the full offline pipeline with tracing on and emits
a machine-readable JSON report.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.lake import DataLake
from repro.datalake.table import ColumnRef
from repro.obs import METRICS, TRACER

log = obs.get_logger("core.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="table discovery over a directory of CSVs"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument(
            "-v",
            "--verbose",
            action="count",
            default=0,
            help="log to stderr (-v info, -vv debug)",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="print tracing spans and metrics after the command",
        )

    def lake_arg(p):
        p.add_argument("lake_dir", help="directory of CSV files")
        p.add_argument("-k", type=int, default=5, help="results to return")
        common(p)

    p = sub.add_parser("stats", help="lake statistics")
    p.add_argument("lake_dir")
    common(p)

    p = sub.add_parser("keyword", help="metadata keyword search")
    lake_arg(p)
    p.add_argument("--query", required=True)

    p = sub.add_parser("join", help="joinable column search")
    lake_arg(p)
    p.add_argument("--table", required=True)
    p.add_argument("--column", type=int, default=0)
    p.add_argument(
        "--method", choices=["exact", "containment"], default="exact"
    )

    p = sub.add_parser("union", help="unionable table search")
    lake_arg(p)
    p.add_argument("--table", required=True)
    p.add_argument(
        "--method", choices=["tus", "starmie"], default="starmie"
    )

    p = sub.add_parser("navigate", help="navigate the lake by intent")
    lake_arg(p)
    p.add_argument("--intent", required=True)

    p = sub.add_parser("domains", help="discover value domains")
    lake_arg(p)

    p = sub.add_parser(
        "profile",
        help="run the full offline pipeline and emit a JSON "
        "observability report (span tree + metrics)",
    )
    p.add_argument("lake_dir", help="directory of CSV files")
    p.add_argument(
        "-o", "--output", help="write the JSON report here instead of stdout"
    )
    p.add_argument(
        "--no-embeddings",
        action="store_true",
        help="skip the embedding stage (and everything that needs it)",
    )
    common(p)
    return parser


def _system(lake_dir: str, need_embeddings: bool, domains: bool = False):
    log.info("loading lake from %s", lake_dir)
    lake = DataLake.from_directory(lake_dir)
    config = DiscoveryConfig(
        enable_embeddings=need_embeddings,
        enable_domains=domains,
        embedding_min_count=1,
    )
    log.info("building offline pipeline (embeddings=%s)", need_embeddings)
    return DiscoverySystem(lake, config).build()


def _run_profile(args, out) -> int:
    """The ``profile`` subcommand: trace a full offline build, dump JSON."""
    obs.reset()
    obs.enable_tracing()
    try:
        lake = DataLake.from_directory(args.lake_dir)
        config = DiscoveryConfig(
            enable_embeddings=not args.no_embeddings,
            enable_domains=True,
            embedding_min_count=1,
        )
        system = DiscoverySystem(lake, config).build()
        report = obs.report(
            extra={
                "lake_dir": str(args.lake_dir),
                "lake": lake.stats(),
                "stage_seconds": system.stats.stage_seconds,
            }
        )
        text = json.dumps(report, indent=2)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as f:
                f.write(text + "\n")
            print(f"wrote {args.output}", file=out)
        else:
            print(text, file=out)
        return 0
    finally:
        obs.disable_tracing()


def _run(args, out) -> int:
    if args.command == "stats":
        lake = DataLake.from_directory(args.lake_dir)
        for key, value in lake.stats().items():
            print(f"{key:>8}: {value}", file=out)
        return 0

    if args.command == "profile":
        return _run_profile(args, out)

    if args.command == "keyword":
        system = _system(args.lake_dir, need_embeddings=False)
        for hit in system.keyword_search(args.query, k=args.k):
            print(f"{hit.table}\t{hit.score:.3f}", file=out)
        return 0

    if args.command == "join":
        system = _system(args.lake_dir, need_embeddings=False)
        ref = ColumnRef(args.table, args.column)
        for res in system.joinable_search(ref, k=args.k, method=args.method):
            print(f"{res.ref}\t{res.score:.3f}", file=out)
        return 0

    if args.command == "union":
        system = _system(
            args.lake_dir, need_embeddings=args.method == "starmie"
        )
        for res in system.unionable_search(
            args.table, k=args.k, method=args.method
        ):
            print(f"{res.table}\t{res.score:.3f}", file=out)
        return 0

    if args.command == "navigate":
        system = _system(args.lake_dir, need_embeddings=True)
        for name in system.navigate(args.intent):
            print(name, file=out)
        return 0

    if args.command == "domains":
        system = _system(args.lake_dir, need_embeddings=False, domains=True)
        for i, domain in enumerate(system.domains[: args.k]):
            sample = ", ".join(sorted(domain.values)[:5])
            print(
                f"domain {i}: {len(domain)} values "
                f"({len(domain.columns)} columns) e.g. {sample}",
                file=out,
            )
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout
    obs.configure_logging(getattr(args, "verbose", 0))
    # `profile` manages tracing itself; --profile wraps any other command.
    profiling = getattr(args, "profile", False) and args.command != "profile"
    if profiling:
        obs.reset()
        obs.enable_tracing()
    try:
        return _run(args, out)
    finally:
        if profiling:
            obs.disable_tracing()
            print("\n-- profile: spans --", file=out)
            print(TRACER.render(), file=out)
            print("\n-- profile: metrics --", file=out)
            print(METRICS.render(), file=out)
