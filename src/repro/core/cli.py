"""Command-line interface: table discovery over a directory of CSV files.

Usage::

    python -m repro stats     <lake_dir>
    python -m repro build     <lake_dir> [--jobs 4] [--save snapdir]
    python -m repro keyword   <lake_dir> --query "air quality" [-k 5]
    python -m repro join      <lake_dir> --table cities --column 0 [-k 5]
    python -m repro union     <lake_dir> --table cities [-k 5] [--method starmie]
    python -m repro query     <lake_dir> --engine join --table cities
                              [--explain] [--load snapdir]
    python -m repro navigate  <lake_dir> --intent "city population"
    python -m repro domains   <lake_dir>
    python -m repro profile   <lake_dir> [-o report.json] [--no-embeddings]
    python -m repro serve-metrics <lake_dir> [--port 9095] [--duration 60]
    python -m repro bench     <lake_dir> [-o BENCH_queries.json] [--repeat 3]
    python -m repro bench-compare old.json new.json [--threshold 0.2]
    python -m repro slo       [--log queries.jsonl | --url http://host:9095]
    python -m repro inspect   <lake_dir> [--json]
    python -m repro engines   [<lake_dir>] [--json]
    python -m repro top       --url http://host:9095 [--interval 2]

Every command ingests ``lake_dir`` (recursively, all ``*.csv``), runs the
offline pipeline stages it needs, and prints results to stdout.

All commands accept ``-v/--verbose`` (repeatable: ``-v`` INFO, ``-vv``
DEBUG, to stderr), ``--profile`` (print the tracing span tree and the
metrics snapshot after the command's own output), ``--trace-out FILE``
(write a Chrome/Perfetto trace of the run), and ``--metrics-out FILE``
(write the Prometheus text page).  ``profile`` is the batch variant: it
runs the full offline pipeline with tracing on and emits a
machine-readable JSON report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import obs
from repro.bench.harness import BenchTrajectory, compare_trajectories
from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.lake import DataLake
from repro.datalake.table import ColumnRef
from repro.obs import METRICS, TRACER
from repro.obs.server import ObservabilityServer

log = obs.get_logger("core.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="table discovery over a directory of CSVs"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument(
            "-v",
            "--verbose",
            action="count",
            default=0,
            help="log to stderr (-v info, -vv debug)",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="print tracing spans and metrics after the command",
        )
        p.add_argument(
            "--trace-out",
            metavar="FILE",
            help="write a Chrome/Perfetto trace-event JSON of the run",
        )
        p.add_argument(
            "--metrics-out",
            metavar="FILE",
            help="write the Prometheus text-exposition metrics page",
        )

    def lake_arg(p):
        p.add_argument("lake_dir", help="directory of CSV files")
        p.add_argument("-k", type=int, default=5, help="results to return")
        common(p)

    p = sub.add_parser("stats", help="lake statistics")
    p.add_argument("lake_dir")
    common(p)

    p = sub.add_parser(
        "build",
        help="run the offline pipeline (optionally in parallel over the "
        "stage DAG) and optionally save an index snapshot",
    )
    p.add_argument("lake_dir", help="directory of CSV files")
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for the stage DAG (1 = sequential)",
    )
    p.add_argument(
        "--save",
        metavar="DIR",
        help="persist the built indexes as a snapshot directory "
        "(reload with `repro query --load DIR`)",
    )
    p.add_argument(
        "--skip",
        action="append",
        default=[],
        metavar="STAGE",
        help="skip a pipeline stage by name (repeatable)",
    )
    p.add_argument(
        "--no-embeddings",
        action="store_true",
        help="skip the embedding stage (and everything that needs it)",
    )
    common(p)

    p = sub.add_parser("keyword", help="metadata keyword search")
    lake_arg(p)
    p.add_argument("--query", required=True)

    p = sub.add_parser("join", help="joinable column search")
    lake_arg(p)
    p.add_argument("--table", required=True)
    p.add_argument("--column", type=int, default=0)
    p.add_argument(
        "--method", choices=["exact", "containment"], default="exact"
    )

    p = sub.add_parser("union", help="unionable table search")
    lake_arg(p)
    p.add_argument("--table", required=True)
    p.add_argument(
        "--method", choices=["tus", "starmie"], default="starmie"
    )

    p = sub.add_parser(
        "query",
        help="run one online query against any engine; --explain prints "
        "the per-stage candidate funnel",
    )
    lake_arg(p)
    p.add_argument(
        "--engine",
        required=True,
        choices=[
            "keyword",
            "join",
            "containment",
            "fuzzy",
            "mate",
            "correlated",
            "union",
        ],
    )
    p.add_argument("--query", help="keyword text (engine=keyword)")
    p.add_argument("--table", help="query table name (all other engines)")
    p.add_argument("--column", type=int, default=0, help="query column index")
    p.add_argument(
        "--key-columns",
        default="0",
        help="comma-separated key column indexes (engine=mate)",
    )
    p.add_argument(
        "--value-column",
        type=int,
        default=1,
        help="numeric value column (engine=correlated)",
    )
    p.add_argument(
        "--method", default="starmie", help="union method (engine=union)"
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="print EXPLAIN provenance: the per-stage candidate funnel",
    )
    p.add_argument(
        "--load",
        metavar="DIR",
        help="load the indexes from a snapshot directory (written by "
        "`repro build --save`) instead of rebuilding the pipeline; the "
        "snapshot must match the lake or the query is refused",
    )

    p = sub.add_parser("navigate", help="navigate the lake by intent")
    lake_arg(p)
    p.add_argument("--intent", required=True)

    p = sub.add_parser("domains", help="discover value domains")
    lake_arg(p)

    p = sub.add_parser(
        "profile",
        help="run the full offline pipeline and emit a JSON "
        "observability report (span tree + metrics)",
    )
    p.add_argument("lake_dir", help="directory of CSV files")
    p.add_argument(
        "-o", "--output", help="write the JSON report here instead of stdout"
    )
    p.add_argument(
        "--no-embeddings",
        action="store_true",
        help="skip the embedding stage (and everything that needs it)",
    )
    common(p)

    p = sub.add_parser(
        "serve-metrics",
        help="serve /metrics (Prometheus), /health, /querylog, /trace "
        "over HTTP from a background thread",
    )
    p.add_argument(
        "lake_dir",
        nargs="?",
        help="optional: build the pipeline on this lake and run warmup "
        "queries so the endpoint has data",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9095)
    p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for N seconds then exit (default: until interrupted)",
    )
    common(p)

    p = sub.add_parser(
        "bench",
        help="time every online query path on a lake; write a "
        "BENCH_<experiment>.json trajectory",
    )
    p.add_argument("lake_dir", help="directory of CSV files")
    p.add_argument(
        "-o",
        "--output",
        default=".",
        help="output file, or a directory to get BENCH_<experiment>.json",
    )
    p.add_argument("--experiment", default="queries")
    p.add_argument("--repeat", type=int, default=3)
    common(p)

    p = sub.add_parser(
        "bench-compare",
        help="regression gate: compare two BENCH_*.json trajectories; "
        "exits 1 on latency regressions beyond the threshold",
    )
    p.add_argument("old", help="baseline trajectory JSON")
    p.add_argument("new", help="candidate trajectory JSON")
    p.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed latency growth factor (0.2 = +20%%)",
    )
    p.add_argument(
        "--report-only",
        action="store_true",
        help="print the comparison but always exit 0",
    )
    common(p)

    p = sub.add_parser(
        "slo",
        help="evaluate SLO burn rates over a query log; exits 1 on breach "
        "(cron/CI friendly)",
    )
    p.add_argument(
        "--log",
        metavar="FILE",
        help="JSONL query log (as written by the QUERY_LOG sink)",
    )
    p.add_argument(
        "--url",
        metavar="URL",
        help="fetch /querylog from a running observability server instead",
    )
    p.add_argument(
        "--objective",
        action="append",
        default=[],
        metavar="ENGINE:P95_MS:ERROR_RATE[:WINDOW_S]",
        help="objective spec (repeatable; empty field skips the signal; "
        "default: *:500:0.05:3600)",
    )
    p.add_argument(
        "--burn-threshold",
        type=float,
        default=1.0,
        help="burn rate at/above which both windows must be to breach",
    )
    p.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    common(p)

    p = sub.add_parser(
        "inspect",
        help="build the pipeline and report per-index introspection stats "
        "(sizes, skew, memory footprint)",
    )
    p.add_argument("lake_dir", help="directory of CSV files")
    p.add_argument(
        "--no-embeddings",
        action="store_true",
        help="skip the embedding stage (and the indexes that need it)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the reports as JSON"
    )
    common(p)

    p = sub.add_parser(
        "engines",
        help="list the registered discovery engines (stage, dependencies, "
        "query label, index kind); with a lake, also build it and report "
        "per-engine built status and item counts",
    )
    p.add_argument(
        "lake_dir",
        nargs="?",
        help="optional: build the pipeline on this lake and report which "
        "engines came up and how many items each indexed",
    )
    p.add_argument(
        "--no-embeddings",
        action="store_true",
        help="skip the embedding stage (and the engines that need it)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the listing as JSON"
    )
    common(p)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard over a running observability server "
        "(per-engine QPS, p50/p95, error rate, SLO burn)",
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:9095",
        help="observability server base URL",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, help="refresh period (s)"
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="render N frames then exit (default: until interrupted)",
    )
    p.add_argument(
        "--window",
        type=float,
        default=60.0,
        help="QPS window in seconds",
    )
    common(p)
    return parser


def _system(lake_dir: str, need_embeddings: bool, domains: bool = False):
    log.info("loading lake from %s", lake_dir)
    lake = DataLake.from_directory(lake_dir)
    config = DiscoveryConfig(
        enable_embeddings=need_embeddings,
        enable_domains=domains,
        embedding_min_count=1,
    )
    log.info("building offline pipeline (embeddings=%s)", need_embeddings)
    return DiscoverySystem(lake, config).build()


def _run_profile(args, out) -> int:
    """The ``profile`` subcommand: trace a full offline build, dump JSON."""
    obs.reset()
    obs.enable_tracing()
    try:
        lake = DataLake.from_directory(args.lake_dir)
        config = DiscoveryConfig(
            enable_embeddings=not args.no_embeddings,
            enable_domains=True,
            embedding_min_count=1,
        )
        system = DiscoverySystem(lake, config).build()
        report = obs.report(
            extra={
                "lake_dir": str(args.lake_dir),
                "lake": lake.stats(),
                "stage_seconds": system.stats.stage_seconds,
            }
        )
        text = json.dumps(report, indent=2)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as f:
                f.write(text + "\n")
            print(f"wrote {args.output}", file=out)
        else:
            print(text, file=out)
        return 0
    finally:
        obs.disable_tracing()


def _run_build(args, out) -> int:
    """The ``build`` subcommand: parallel offline build + snapshot save."""
    from repro.core.pipeline import pipeline_report

    lake = DataLake.from_directory(args.lake_dir)
    config = DiscoveryConfig(
        enable_embeddings=not args.no_embeddings,
        embedding_min_count=1,
        build_jobs=max(1, args.jobs),
    )
    t0 = time.perf_counter()
    system = DiscoverySystem(lake, config).build(skip=set(args.skip))
    wall_ms = (time.perf_counter() - t0) * 1000
    print(pipeline_report(system), file=out)
    print(
        f"built in {wall_ms:.1f} ms wall with {config.build_jobs} job(s) "
        f"(peak stage concurrency "
        f"{system.provenance['max_concurrent_stages']})",
        file=out,
    )
    if args.save:
        manifest = system.save(args.save)
        print(
            f"saved snapshot to {args.save} "
            f"(config {manifest.config_hash}, "
            f"lake {manifest.lake_fingerprint[:12]})",
            file=out,
        )
    return 0


def _run_query(args, out) -> int:
    """The ``query`` subcommand: one online query, optionally EXPLAINed."""
    from repro.core.errors import SnapshotError

    engine = args.engine
    if args.load:
        lake = DataLake.from_directory(args.lake_dir)
        try:
            system = DiscoverySystem.load(args.load, lake=lake)
        except SnapshotError as exc:
            raise SystemExit(f"cannot load snapshot: {exc}") from exc
    else:
        need_embeddings = engine in ("fuzzy", "union")
        system = _system(args.lake_dir, need_embeddings=need_embeddings)
    explain = args.explain

    def need_table():
        if not args.table:
            raise SystemExit(f"--table is required for engine={engine}")
        return args.table

    if engine == "keyword":
        if not args.query:
            raise SystemExit("--query is required for engine=keyword")
        res = system.keyword_search(args.query, k=args.k, explain=explain)
    elif engine in ("join", "containment"):
        ref = ColumnRef(need_table(), args.column)
        res = system.joinable_search(
            ref,
            k=args.k,
            method="exact" if engine == "join" else "containment",
            explain=explain,
        )
    elif engine == "fuzzy":
        ref = ColumnRef(need_table(), args.column)
        res = system.fuzzy_joinable_search(ref, k=args.k, explain=explain)
    elif engine == "mate":
        table = system.lake.table(need_table())
        key_cols = [int(c) for c in args.key_columns.split(",") if c != ""]
        res = system.multi_attribute_search(
            table, key_cols, k=args.k, explain=explain
        )
    elif engine == "correlated":
        res = system.correlated_search(
            need_table(),
            args.column,
            args.value_column,
            k=args.k,
            explain=explain,
        )
    else:  # union
        res = system.unionable_search(
            need_table(), k=args.k, method=args.method, explain=explain
        )

    if explain:
        hits, report = res
        print(report.render(), file=out)
    else:
        from repro.search.explain import summarize_results

        for ident, score in summarize_results(res):
            print(f"{ident}\t{score:.3f}", file=out)
    return 0


def _run_serve_metrics(args, out) -> int:
    """The ``serve-metrics`` subcommand: background HTTP telemetry."""
    if args.lake_dir:
        system = _system(args.lake_dir, need_embeddings=False)
        # Warmup queries so /metrics and /querylog have per-engine series.
        names = system.lake.table_names()
        if names:
            table = system.lake.table(names[0])
            system.keyword_search(" ".join(table.header[:2]) or "data", k=3)
            text_cols = [i for i, _ in table.text_columns()]
            if text_cols:
                system.joinable_search(
                    ColumnRef(table.name, text_cols[0]), k=3
                )
                system.multi_attribute_search(table, [text_cols[0]], k=3)
        # Publish index introspection so /indexstats has this build's data.
        system.index_stats()
    server = ObservabilityServer(args.host, args.port).start()
    print(
        f"serving {server.url}/metrics /health /querylog /trace /slo "
        "/indexstats",
        file=out,
    )
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive loop
            while True:
                time.sleep(1)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.stop()
    return 0


def _run_bench(args, out) -> int:
    """The ``bench`` subcommand: time each online query path, write a
    ``BENCH_<experiment>.json`` trajectory."""
    lake = DataLake.from_directory(args.lake_dir)
    config = DiscoveryConfig(enable_embeddings=True, embedding_min_count=1)
    traj = BenchTrajectory(
        experiment=args.experiment,
        meta={"lake": lake.stats(), "repeat": args.repeat},
    )
    t0 = time.perf_counter()
    system = DiscoverySystem(lake, config).build()
    traj.add("pipeline.build", (time.perf_counter() - t0) * 1000)

    names = system.lake.table_names()
    table = system.lake.table(names[0])
    text_cols = [i for i, _ in table.text_columns()]
    num_cols = [i for i, _ in table.numeric_columns()]
    kw = " ".join(table.header[:2]) or "data"
    cases = [("query.keyword", lambda: system.keyword_search(kw, k=5))]
    if text_cols:
        ref = ColumnRef(table.name, text_cols[0])
        cases += [
            ("query.join.exact", lambda: system.joinable_search(ref, k=5)),
            (
                "query.join.containment",
                lambda: system.joinable_search(ref, k=5, method="containment"),
            ),
            (
                "query.fuzzy_join",
                lambda: system.fuzzy_joinable_search(ref, k=5),
            ),
            (
                "query.multi_attribute",
                lambda: system.multi_attribute_search(
                    table, [text_cols[0]], k=5
                ),
            ),
        ]
        if num_cols:
            cases.append(
                (
                    "query.correlated",
                    lambda: system.correlated_search(
                        table.name, text_cols[0], num_cols[0], k=5
                    ),
                )
            )
    cases += [
        (
            "query.union.starmie",
            lambda: system.unionable_search(table.name, k=5),
        ),
        (
            "query.union.tus",
            lambda: system.unionable_search(table.name, k=5, method="tus"),
        ),
    ]
    for name, fn in cases:
        try:
            stats = traj.add_timed(name, fn, repeat=args.repeat)
            log.info("bench %s: %.3f ms", name, stats["latency_ms"])
        except Exception as exc:
            log.warning("bench %s skipped: %s", name, exc)
    path = traj.write(args.output)
    print(f"wrote {path} ({len(traj.records)} records)", file=out)
    return 0


def _run_slo(args, out) -> int:
    """The ``slo`` subcommand: the SLO burn-rate gate."""
    from repro.obs import health
    from repro.obs.querylog import QueryRecord, load_jsonl

    if args.log and args.url:
        raise SystemExit("give either --log or --url, not both")
    if args.log:
        records = load_jsonl(args.log)
    elif args.url:
        import json as _json
        import urllib.request

        with urllib.request.urlopen(
            args.url.rstrip("/") + "/querylog", timeout=10
        ) as resp:
            payload = _json.loads(resp.read().decode("utf-8"))
        records = [QueryRecord.from_dict(d) for d in payload["records"]]
    else:
        records = obs.QUERY_LOG.records()
    objectives = (
        tuple(health.SloObjective.parse(s) for s in args.objective)
        or health.DEFAULT_OBJECTIVES
    )
    report = health.evaluate(
        records, objectives, burn_threshold=args.burn_threshold
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2), file=out)
    else:
        print(report.render(), file=out)
    return 0 if report.ok else 1


def _run_inspect(args, out) -> int:
    """The ``inspect`` subcommand: per-index introspection reports."""
    system = _system(args.lake_dir, need_embeddings=not args.no_embeddings)
    reports = system.index_stats()
    if args.json:
        print(
            json.dumps([r.to_dict() for r in reports], indent=2), file=out
        )
    else:
        total = sum(r.memory_bytes for r in reports)
        print(
            f"{len(reports)} indexes, estimated {total / 1024:.1f} KiB total",
            file=out,
        )
        prov = system.provenance
        if prov:
            fields = ", ".join(
                f"{k}={v}" for k, v in sorted(prov.items()) if k != "source"
            )
            print(f"provenance: {prov.get('source', '?')} ({fields})", file=out)
        for r in reports:
            print(r.render(), file=out)
    return 0


def _run_engines(args, out) -> int:
    """The ``engines`` subcommand: the engine registry, optionally
    enriched with built status and item counts from a live build."""
    from repro.core.engine import REGISTRY

    rows: list[dict] = []
    if args.lake_dir:
        system = _system(
            args.lake_dir, need_embeddings=not args.no_embeddings
        )
        for engine in system.engines.values():
            row = engine.describe()
            row["built"] = engine.is_built()
            row["items"] = (
                engine.items(engine.stats()) if engine.is_built() else 0
            )
            rows.append(row)
    else:
        rows = [cls().describe() for cls in REGISTRY.all()]
    if args.json:
        print(json.dumps(rows, indent=2), file=out)
        return 0
    print(f"{len(rows)} registered engines", file=out)
    for row in rows:
        deps = ",".join(row["depends_on"]) or "-"
        line = (
            f"{row['name']:<12} stage={row['stage']:<17} "
            f"label={row['query_label']:<15} kind={row['kind']:<18} "
            f"deps={deps}"
        )
        if "built" in row:
            line += (
                f" built={'yes' if row['built'] else 'no':<3}"
                f" items={row['items']}"
            )
        print(line, file=out)
    return 0


def _run_top(args, out) -> int:
    """The ``top`` subcommand: the live terminal dashboard."""
    from repro.obs.top import TopDashboard

    dash = TopDashboard(args.url, window_s=args.window)
    try:
        frames = dash.run(
            iterations=args.iterations,
            interval=args.interval,
            out=out,
            clear=out.isatty() if hasattr(out, "isatty") else False,
        )
    except OSError as exc:  # URLError subclasses OSError
        raise SystemExit(f"cannot reach {args.url}: {exc}")
    return 0 if frames else 1


def _run_bench_compare(args, out) -> int:
    """The ``bench-compare`` subcommand: the latency regression gate."""
    old = BenchTrajectory.load(args.old)
    new = BenchTrajectory.load(args.new)
    cmp = compare_trajectories(old, new, threshold=args.threshold)
    print(cmp.render(), file=out)
    if args.report_only:
        return 0
    return 0 if cmp.ok else 1


def _run(args, out) -> int:
    if args.command == "stats":
        lake = DataLake.from_directory(args.lake_dir)
        for key, value in lake.stats().items():
            print(f"{key:>8}: {value}", file=out)
        return 0

    if args.command == "build":
        return _run_build(args, out)

    if args.command == "profile":
        return _run_profile(args, out)

    if args.command == "query":
        return _run_query(args, out)

    if args.command == "serve-metrics":
        return _run_serve_metrics(args, out)

    if args.command == "bench":
        return _run_bench(args, out)

    if args.command == "bench-compare":
        return _run_bench_compare(args, out)

    if args.command == "slo":
        return _run_slo(args, out)

    if args.command == "inspect":
        return _run_inspect(args, out)

    if args.command == "engines":
        return _run_engines(args, out)

    if args.command == "top":
        return _run_top(args, out)

    if args.command == "keyword":
        system = _system(args.lake_dir, need_embeddings=False)
        for hit in system.keyword_search(args.query, k=args.k):
            print(f"{hit.table}\t{hit.score:.3f}", file=out)
        return 0

    if args.command == "join":
        system = _system(args.lake_dir, need_embeddings=False)
        ref = ColumnRef(args.table, args.column)
        for res in system.joinable_search(ref, k=args.k, method=args.method):
            print(f"{res.ref}\t{res.score:.3f}", file=out)
        return 0

    if args.command == "union":
        system = _system(
            args.lake_dir, need_embeddings=args.method == "starmie"
        )
        for res in system.unionable_search(
            args.table, k=args.k, method=args.method
        ):
            print(f"{res.table}\t{res.score:.3f}", file=out)
        return 0

    if args.command == "navigate":
        system = _system(args.lake_dir, need_embeddings=True)
        for name in system.navigate(args.intent):
            print(name, file=out)
        return 0

    if args.command == "domains":
        system = _system(args.lake_dir, need_embeddings=False, domains=True)
        for i, domain in enumerate(system.domains[: args.k]):
            sample = ", ".join(sorted(domain.values)[:5])
            print(
                f"domain {i}: {len(domain)} values "
                f"({len(domain.columns)} columns) e.g. {sample}",
                file=out,
            )
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout
    obs.configure_logging(getattr(args, "verbose", 0))
    # `profile` manages tracing itself; --profile wraps any other command,
    # and --trace-out implies span collection (a trace needs spans).
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    capturing = (
        getattr(args, "profile", False) or bool(trace_out)
    ) and args.command != "profile"
    if capturing:
        obs.reset()
        obs.enable_tracing()
    try:
        return _run(args, out)
    finally:
        if capturing:
            obs.disable_tracing()
        if capturing and getattr(args, "profile", False):
            print("\n-- profile: spans --", file=out)
            print(TRACER.render(), file=out)
            print("\n-- profile: metrics --", file=out)
            print(METRICS.render(), file=out)
        if trace_out:
            with open(trace_out, "w", encoding="utf-8") as f:
                json.dump(TRACER.to_chrome_trace(), f)
                f.write("\n")
            print(f"wrote {trace_out}", file=out)
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as f:
                f.write(METRICS.to_prometheus())
            print(f"wrote {metrics_out}", file=out)
