"""Command-line interface: table discovery over a directory of CSV files.

Usage::

    python -m repro stats     <lake_dir>
    python -m repro keyword   <lake_dir> --query "air quality" [-k 5]
    python -m repro join      <lake_dir> --table cities --column 0 [-k 5]
    python -m repro union     <lake_dir> --table cities [-k 5] [--method starmie]
    python -m repro navigate  <lake_dir> --intent "city population"
    python -m repro domains   <lake_dir>

Every command ingests ``lake_dir`` (recursively, all ``*.csv``), runs the
offline pipeline stages it needs, and prints results to stdout.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.lake import DataLake
from repro.datalake.table import ColumnRef


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="table discovery over a directory of CSVs"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def lake_arg(p):
        p.add_argument("lake_dir", help="directory of CSV files")
        p.add_argument("-k", type=int, default=5, help="results to return")

    p = sub.add_parser("stats", help="lake statistics")
    p.add_argument("lake_dir")

    p = sub.add_parser("keyword", help="metadata keyword search")
    lake_arg(p)
    p.add_argument("--query", required=True)

    p = sub.add_parser("join", help="joinable column search")
    lake_arg(p)
    p.add_argument("--table", required=True)
    p.add_argument("--column", type=int, default=0)
    p.add_argument(
        "--method", choices=["exact", "containment"], default="exact"
    )

    p = sub.add_parser("union", help="unionable table search")
    lake_arg(p)
    p.add_argument("--table", required=True)
    p.add_argument(
        "--method", choices=["tus", "starmie"], default="starmie"
    )

    p = sub.add_parser("navigate", help="navigate the lake by intent")
    lake_arg(p)
    p.add_argument("--intent", required=True)

    p = sub.add_parser("domains", help="discover value domains")
    lake_arg(p)
    return parser


def _system(lake_dir: str, need_embeddings: bool, domains: bool = False):
    lake = DataLake.from_directory(lake_dir)
    config = DiscoveryConfig(
        enable_embeddings=need_embeddings,
        enable_domains=domains,
        embedding_min_count=1,
    )
    return DiscoverySystem(lake, config).build()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    if args.command == "stats":
        lake = DataLake.from_directory(args.lake_dir)
        for key, value in lake.stats().items():
            print(f"{key:>8}: {value}", file=out)
        return 0

    if args.command == "keyword":
        system = _system(args.lake_dir, need_embeddings=False)
        for hit in system.keyword_search(args.query, k=args.k):
            print(f"{hit.table}\t{hit.score:.3f}", file=out)
        return 0

    if args.command == "join":
        system = _system(args.lake_dir, need_embeddings=False)
        ref = ColumnRef(args.table, args.column)
        for res in system.joinable_search(ref, k=args.k, method=args.method):
            print(f"{res.ref}\t{res.score:.3f}", file=out)
        return 0

    if args.command == "union":
        system = _system(
            args.lake_dir, need_embeddings=args.method == "starmie"
        )
        for res in system.unionable_search(
            args.table, k=args.k, method=args.method
        ):
            print(f"{res.table}\t{res.score:.3f}", file=out)
        return 0

    if args.command == "navigate":
        system = _system(args.lake_dir, need_embeddings=True)
        for name in system.navigate(args.intent):
            print(name, file=out)
        return 0

    if args.command == "domains":
        system = _system(args.lake_dir, need_embeddings=False, domains=True)
        for i, domain in enumerate(system.domains[: args.k]):
            sample = ", ".join(sorted(domain.values)[:5])
            print(
                f"domain {i}: {len(domain)} values "
                f"({len(domain.columns)} columns) e.g. {sample}",
                file=out,
            )
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands
