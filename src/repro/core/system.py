"""The Figure-1 system: an end-to-end table discovery facade.

``DiscoverySystem`` is this repository's realization of the tutorial's
architecture diagram: a Data Lake Management System feeding Table
Understanding components (annotation, domain discovery, embeddings,
indexing), which in turn power the Table Search Engine (keyword, joinable,
unionable), Navigation Support, and Data Science / Application Support.

Offline: ``build()`` runs the understanding + indexing pipeline.
Online: ``keyword_search``, ``joinable_search``, ``unionable_search``,
``correlated_search``, ``fuzzy_joinable_search``, ``multi_attribute_search``,
``navigate`` / ``organization``, ``related_columns``, ``augment_for_ml``.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager

import numpy as np

from repro.apps.arda import ArdaAugmenter, AugmentationReport
from repro.core.config import DiscoveryConfig, PipelineStats
from repro.core.dag import Stage, StageGraph
from repro.core.errors import ConfigError, LakeError
from repro.obs import METRICS, QUERY_LOG, SAMPLER, TRACER, get_logger
from repro.obs.introspect import IndexStatsReport, deep_sizeof, publish
from repro.obs.querylog import QueryRecord
from repro.datalake.lake import DataLake
from repro.datalake.ontology import Ontology
from repro.datalake.table import Column, ColumnRef, Table
from repro.graph.aurum import EnterpriseKnowledgeGraph
from repro.graph.organize import Organization
from repro.graph.ronin import RoninExplorer
from repro.search.correlated import CorrelatedSearch
from repro.search.explain import ExplainReport, summarize_results
from repro.search.joinable import JoinableSearch, JoinSearchConfig
from repro.search.keyword import KeywordSearchEngine
from repro.search.mate import MateIndex
from repro.search.pexeso import PexesoIndex
from repro.search.union_santos import SantosUnionSearch
from repro.search.union_starmie import StarmieConfig, StarmieUnionSearch
from repro.search.union_tus import TableUnionSearch, TusConfig
from repro.understanding.annotate import OntologyAnnotator, TableAnnotation
from repro.understanding.contextual import ContextualColumnEncoder
from repro.understanding.domains import DiscoveredDomain, DomainDiscovery
from repro.understanding.embedding import EmbeddingSpace, train_embeddings

log = get_logger("core.system")

#: Offline pipeline stage names in their canonical (sequential) order.
STAGES = (
    "embeddings",
    "domains",
    "annotation",
    "keyword_index",
    "join_index",
    "union_index",
    "correlation_index",
    "mate_index",
    "navigation",
)

#: Stage dependency edges: embeddings feed the union indexes (Starmie,
#: PEXESO) and navigation; annotation feeds SANTOS inside union_index.
#: Everything else (keyword / join / correlation / MATE) is independent.
STAGE_DEPS: dict[str, tuple[str, ...]] = {
    "union_index": ("embeddings", "annotation"),
    "navigation": ("embeddings",),
}


class _QueryCapture:
    """Mutable holder threaded through ``_query_span``: the active span
    plus the result summary / EXPLAIN funnel captured for the query log."""

    __slots__ = ("span", "results", "funnel")

    def __init__(self):
        self.span = None
        self.results: list[tuple[str, float]] = []
        self.funnel: dict[str, int] = {}

    def set(self, key, value) -> "_QueryCapture":
        """Attach a span attribute (no-op span while tracing is off)."""
        self.span.set(key, value)
        return self

    def finish(self, hits: list, report: ExplainReport | None = None) -> None:
        """Record the query outcome: hit count attr, result summary, and
        (when the query ran with explain) the funnel counts."""
        self.span.set("hits", len(hits))
        self.results = summarize_results(hits)
        if report is not None:
            self.funnel = report.counts()


class DiscoverySystem:
    """End-to-end table discovery over a data lake (Figure 1)."""

    def __init__(
        self,
        lake: DataLake,
        config: DiscoveryConfig | None = None,
        ontology: Ontology | None = None,
    ):
        self.lake = lake
        self.config = (config or DiscoveryConfig()).validate()
        self.ontology = ontology
        self.stats = PipelineStats()
        self._configure_sampler()

        # Populated by build():
        self.space: EmbeddingSpace | None = None
        self.encoder: ContextualColumnEncoder | None = None
        self.domains: list[DiscoveredDomain] = []
        self.annotations: dict[str, TableAnnotation] = {}
        self._keyword: KeywordSearchEngine | None = None
        self._joinable: JoinableSearch | None = None
        self._tus: TableUnionSearch | None = None
        self._starmie: StarmieUnionSearch | None = None
        self._santos: SantosUnionSearch | None = None
        self._correlated: CorrelatedSearch | None = None
        self._pexeso: PexesoIndex | None = None
        self._mate: MateIndex | None = None
        self._ekg: EnterpriseKnowledgeGraph | None = None
        self._infogather = None  # built lazily by augment_entities
        self._org: Organization | None = None
        self._table_vectors: dict[str, np.ndarray] = {}
        self._built = False
        #: Stages explicitly skipped at build time (build(skip=...)).
        self.skipped_stages: set[str] = set()
        #: Where the built state came from: a live build or a snapshot.
        self.provenance: dict = {}

    def _configure_sampler(self) -> None:
        """Apply this config's trace-sampling knobs to the process-wide
        sampler — but only when they differ from the config defaults, so
        constructing a second system (tests, sidecars) with a default
        config does not silently clobber an earlier system's sampling."""
        flds = DiscoveryConfig.__dataclass_fields__
        cfg_defaults = (
            flds["trace_sample_rate"].default,
            flds["slow_query_ms"].default,
        )
        wanted = (self.config.trace_sample_rate, self.config.slow_query_ms)
        if wanted == cfg_defaults:
            return
        current = (SAMPLER.rate, SAMPLER.slow_ms)
        # (1.0, None) is a fresh TraceSampler; anything else was set by
        # somebody — warn before overwriting a differing configuration.
        if current not in ((1.0, None), wanted):
            log.warning(
                "overwriting non-default trace sampler config "
                "(rate=%s, slow_ms=%s) with (rate=%s, slow_ms=%s)",
                current[0],
                current[1],
                wanted[0],
                wanted[1],
            )
        SAMPLER.configure(rate=wanted[0], slow_ms=wanted[1])

    # -- offline pipeline ------------------------------------------------------------

    def _stage_graph(self, skip: set[str]) -> StageGraph:
        """The stage DAG for this build: enabled stages minus ``skip``,
        wired with the dependencies from :data:`STAGE_DEPS`."""
        cfg = self.config
        builders = {
            "embeddings": self._build_embeddings,
            "domains": self._build_domains,
            "annotation": self._build_annotations,
            "keyword_index": self._build_keyword,
            "join_index": self._build_joinable,
            "union_index": self._build_union,
            "correlation_index": self._build_correlated,
            "mate_index": self._build_mate,
            "navigation": self._build_navigation,
        }
        enabled = {
            "embeddings": cfg.enable_embeddings,
            "domains": cfg.enable_domains,
            "annotation": cfg.enable_annotation and self.ontology is not None,
        }
        stages = [
            Stage(name, builders[name], STAGE_DEPS.get(name, ()))
            for name in STAGES
            if name not in skip and enabled.get(name, True)
        ]
        return StageGraph(stages)

    def build(
        self,
        jobs: int | None = None,
        skip: set[str] | None = None,
    ) -> "DiscoverySystem":
        """Run the offline pipeline: understand, embed, index (Figure 1 left).

        ``jobs`` overrides ``config.build_jobs``: worker threads for the
        stage DAG (1 = the legacy sequential order; results are identical
        for any value).  ``skip`` disables stages by name (from
        :data:`STAGES`); online methods needing a skipped stage raise
        :class:`LakeError`.
        """
        cfg = self.config
        skip = set(skip or ())
        unknown = skip - set(STAGES)
        if unknown:
            raise ValueError(f"unknown stages to skip: {sorted(unknown)}")
        self.skipped_stages = skip
        jobs = cfg.build_jobs if jobs is None else int(jobs)
        if jobs < 1:
            raise ConfigError(f"build jobs must be >= 1, got {jobs}")
        lake_stats = self.lake.stats()
        self.stats.tables = lake_stats["tables"]
        self.stats.columns = lake_stats["columns"]
        METRICS.set_gauge("lake.tables", self.stats.tables)
        METRICS.set_gauge("lake.columns", self.stats.columns)

        graph = self._stage_graph(skip)
        with TRACER.span(
            "pipeline.build",
            force=True,
            tables=self.stats.tables,
            columns=self.stats.columns,
            jobs=jobs,
        ):
            max_concurrent = graph.run(
                jobs, run_stage=lambda s: self._stage(s.name, s.fn)
            )
        # Canonicalize stage timing order: parallel completion order is
        # nondeterministic, the report should not be.
        self.stats.stage_seconds = {
            name: self.stats.stage_seconds[name]
            for name in STAGES
            if name in self.stats.stage_seconds
        }
        METRICS.inc("pipeline.builds")
        METRICS.set_gauge("pipeline.build_jobs", jobs)
        METRICS.set_gauge("pipeline.max_concurrent_stages", max_concurrent)
        self._built = True
        self.provenance = {
            "source": "build",
            "build_jobs": jobs,
            "max_concurrent_stages": max_concurrent,
            "stages": graph.order(),
            "skipped": sorted(skip),
        }
        log.info(
            "pipeline built: %d tables, %d columns, %d stages "
            "(%d job(s), peak concurrency %d) in %.1f ms",
            self.stats.tables,
            self.stats.columns,
            len(self.stats.stage_seconds),
            jobs,
            max_concurrent,
            sum(self.stats.stage_seconds.values()) * 1000,
        )
        return self

    def _stage(self, name: str, fn) -> None:
        """Run one offline stage inside a (forced) tracer span; keep the
        legacy ``PipelineStats.stage_seconds`` populated from it."""
        with TRACER.span(f"stage.{name}", force=True) as sp:
            fn()
        self.stats.stage_seconds[name] = sp.duration_s
        METRICS.set_gauge(f"pipeline.stage_seconds.{name}", sp.duration_s)
        log.debug("stage %s finished in %.1f ms", name, sp.duration_s * 1000)

    def _build_embeddings(self) -> None:
        cfg = self.config
        self.space = train_embeddings(
            self.lake,
            dim=cfg.embedding_dim,
            min_count=cfg.embedding_min_count,
            seed=cfg.seed,
        )
        self.stats.vocabulary = len(self.space.vocab)
        METRICS.set_gauge("embedding.vocabulary", self.stats.vocabulary)
        self.encoder = ContextualColumnEncoder(
            self.space, context_weight=cfg.context_weight
        )

    def _build_domains(self) -> None:
        self.domains = DomainDiscovery().discover(self.lake)
        self.stats.domains_found = len(self.domains)

    def _build_annotations(self) -> None:
        annotator = OntologyAnnotator(self.ontology)
        for table in self.lake:
            self.annotations[table.name] = annotator.annotate(table)

    def _build_keyword(self) -> None:
        self._keyword = KeywordSearchEngine()
        self._keyword.index_lake(self.lake)

    def _build_joinable(self) -> None:
        cfg = self.config
        self._joinable = JoinableSearch(
            self.lake,
            JoinSearchConfig(
                num_perm=cfg.num_perm, num_partitions=cfg.num_partitions
            ),
        ).build()

    def _build_union(self) -> None:
        cfg = self.config
        self._tus = TableUnionSearch(
            self.lake,
            ontology=self.ontology,
            space=self.space,
            config=TusConfig(measure=cfg.union_measure, num_perm=cfg.num_perm),
        ).build()
        if self.encoder is not None:
            self._starmie = StarmieUnionSearch(
                self.lake,
                self.encoder,
                StarmieConfig(
                    index=cfg.union_index,
                    hnsw_m=cfg.hnsw_m,
                    ef_search=cfg.ef_search,
                ),
            ).build()
            if self.space is not None:
                self._pexeso = PexesoIndex(self.space).build(self.lake)
        if self.ontology is not None:
            self._santos = SantosUnionSearch(self.lake, self.ontology).build()

    def _build_correlated(self) -> None:
        self._correlated = CorrelatedSearch(
            sketch_size=self.config.qcr_sketch_size
        ).build(self.lake)

    def _build_mate(self) -> None:
        self._mate = MateIndex()
        self._mate.index_lake(self.lake)

    def _build_navigation(self) -> None:
        if self.space is None:
            return
        for table in self.lake:
            values = [
                v
                for _, col in table.text_columns()
                for v in col.non_null_values()[:50]
            ]
            self._table_vectors[table.name] = self.space.embed_set(values)
        if self._table_vectors:
            self._org = Organization.build(
                self._table_vectors,
                branching=self.config.org_branching,
                max_leaf_size=self.config.org_max_leaf,
            )

    def _require_built(self) -> None:
        if not self._built:
            raise LakeError(
                "DiscoverySystem is not built yet: call build() first"
            )

    def _require_engine(self, obj, stage: str, unavailable: str):
        """Return a built engine, or raise a clear :class:`LakeError`
        naming the skipped stage (never an ``AttributeError`` on None)."""
        if obj is not None:
            return obj
        if stage in self.skipped_stages:
            raise LakeError(
                f"stage {stage!r} was skipped at build time: {unavailable}"
            )
        raise LakeError(f"stage {stage!r} did not run: {unavailable}")

    # -- snapshots ---------------------------------------------------------------------

    def save(self, directory):
        """Persist the built state (embeddings, annotations, domains, all
        indexes) as a versioned snapshot directory; returns the
        :class:`~repro.core.snapshot.SnapshotManifest` written."""
        self._require_built()
        from repro.core.snapshot import save_snapshot

        return save_snapshot(self, directory)

    @classmethod
    def load(
        cls,
        directory,
        lake: DataLake | None = None,
        config: DiscoveryConfig | None = None,
        ontology: Ontology | None = None,
    ) -> "DiscoverySystem":
        """Reload a system from a snapshot without re-running any pipeline
        stage.  Raises :class:`~repro.core.errors.SnapshotError` when the
        snapshot is missing, corrupt, or stale for the given lake/config."""
        from repro.core.snapshot import load_snapshot

        return load_snapshot(
            directory, lake=lake, config=config, ontology=ontology
        )

    # -- index introspection ----------------------------------------------------------

    def index_stats(self) -> list[IndexStatsReport]:
        """Introspect every built index: structural stats from each engine's
        ``stats()`` hook plus an estimated memory footprint.

        Reports are published process-wide (``/indexstats`` route) and
        surfaced as ``index.<name>.{items,memory_bytes}`` gauges so a
        Prometheus scrape sees index growth between builds.
        """
        self._require_built()
        reports: list[IndexStatsReport] = []

        def add(name: str, kind: str, obj, items: int, detail: dict) -> None:
            reports.append(
                IndexStatsReport(
                    name=name,
                    kind=kind,
                    items=items,
                    memory_bytes=deep_sizeof(obj),
                    detail=detail,
                    provenance=dict(self.provenance),
                )
            )

        if self._keyword is not None:
            d = self._keyword.stats()
            add("keyword", "bm25", self._keyword, d["documents"], d)
        if self._joinable is not None:
            d = self._joinable._josie.stats()
            add("josie", "inverted+sets", self._joinable._josie, d["sets"], d)
            d = self._joinable._ensemble.stats()
            add(
                "lshensemble",
                "partitioned-lsh",
                self._joinable._ensemble,
                d["keys"],
                d,
            )
            d = self._joinable._jaccard_lsh.stats()
            add(
                "jaccard_lsh",
                "banded-lsh",
                self._joinable._jaccard_lsh,
                d["keys"],
                d,
            )
        if self._tus is not None:
            d = self._tus.stats()
            add("tus", "minhash+lsh", self._tus, d["minhashes"], d)
        if self._starmie is not None:
            d = self._starmie.stats()
            add(
                "starmie",
                f"embeddings+{self.config.union_index}",
                self._starmie,
                d["columns"],
                d,
            )
        if self._santos is not None:
            add(
                "santos",
                "semantic-graph",
                self._santos,
                self.stats.tables,
                {"tables": self.stats.tables},
            )
        if self._pexeso is not None:
            d = self._pexeso.stats()
            add("pexeso", "vector-block", self._pexeso, d["columns"], d)
        if self._mate is not None:
            d = self._mate.stats()
            add("mate", "super-key", self._mate, d["rows"], d)
        if self._correlated is not None:
            d = self._correlated.stats()
            add("qcr", "correlation-sketch", self._correlated, d["sketches"], d)
        if self._org is not None:
            add(
                "organization",
                "navigation-tree",
                self._org,
                len(self._table_vectors),
                {"tables": len(self._table_vectors)},
            )

        for r in reports:
            METRICS.set_gauge(f"index.{r.name}.items", r.items)
            METRICS.set_gauge(f"index.{r.name}.memory_bytes", r.memory_bytes)
        publish(reports)
        return reports

    @contextmanager
    def _query_span(self, engine: str, query_repr: str = "", **attrs):
        """Per-query observability: a ``query.<engine>`` span, latency
        histogram, query counter, and a structured :class:`QueryRecord`
        appended to the process-wide query log (always recorded; the span
        is a no-op when tracing is disabled).

        Each record carries resource accounting, not just latency: thread
        CPU time always, and the peak allocation delta whenever
        ``obs.enable_memory_accounting()`` has tracemalloc running."""
        t0 = time.perf_counter()
        cpu0 = time.thread_time()
        mem_on = tracemalloc.is_tracing()
        mem_base = 0
        if mem_on:
            tracemalloc.reset_peak()
            mem_base = tracemalloc.get_traced_memory()[0]
        capture = _QueryCapture()
        error: str | None = None
        try:
            with TRACER.span(f"query.{engine}", **attrs) as sp:
                capture.span = sp
                yield capture
        except Exception as exc:
            error = type(exc).__name__
            raise
        finally:
            latency_ms = (time.perf_counter() - t0) * 1000
            cpu_ms = (time.thread_time() - cpu0) * 1000
            mem_peak_kb = None
            if mem_on and tracemalloc.is_tracing():
                peak = tracemalloc.get_traced_memory()[1]
                mem_peak_kb = max(0, peak - mem_base) / 1024
            METRICS.inc(f"query.{engine}.count")
            METRICS.observe("query.latency_ms", latency_ms)
            METRICS.observe("query.cpu_ms", cpu_ms)
            METRICS.observe(f"query.{engine}.latency_ms", latency_ms)
            if error:
                METRICS.inc(f"query.{engine}.errors")
            QUERY_LOG.append(
                QueryRecord(
                    engine=engine,
                    query=query_repr,
                    k=int(attrs.get("k", 0) or 0),
                    latency_ms=latency_ms,
                    cpu_ms=cpu_ms,
                    mem_peak_kb=mem_peak_kb,
                    results=capture.results,
                    funnel=capture.funnel,
                    status="error" if error else "ok",
                    error=error,
                )
            )

    # -- online: table search engine ---------------------------------------------------

    def keyword_search(self, query: str, k: int = 10, explain: bool = False):
        """Metadata keyword search (§2.3).

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        engine = self._require_engine(
            self._keyword, "keyword_index", "keyword search unavailable"
        )
        report: ExplainReport | None = None
        with self._query_span(
            "keyword", query_repr=query, query=query, k=k
        ) as q:
            if explain:
                hits, report = engine.search(query, k, explain=True)
            else:
                hits = engine.search(query, k)
            q.finish(hits, report)
        return (hits, report) if explain else hits

    def joinable_search(
        self,
        column: Column | ColumnRef,
        k: int = 10,
        method: str = "exact",
        threshold: float | None = None,
        explain: bool = False,
    ):
        """Joinable table search (§2.4): 'exact' (JOSIE) or 'containment'
        (LSH Ensemble) over the query column.

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        engine = self._require_engine(
            self._joinable, "join_index", "joinable search unavailable"
        )
        exclude = None
        query_repr = f"column<{getattr(column, 'name', '?')}>"
        if isinstance(column, ColumnRef):
            exclude = column.table
            query_repr = str(column)
            column = self.lake.column(column)
        report: ExplainReport | None = None
        with self._query_span(
            "join", query_repr=query_repr, method=method, k=k
        ) as q:
            if method == "exact":
                if explain:
                    hits, report = engine.exact_topk(
                        column, k, exclude_table=exclude, explain=True
                    )
                else:
                    hits = engine.exact_topk(
                        column, k, exclude_table=exclude
                    )
            elif method == "containment":
                t = threshold or self.config.containment_threshold
                if explain:
                    hits, report = engine.containment(
                        column, t, exclude_table=exclude, explain=True
                    )
                    hits = hits[:k]
                    report.k = k
                    report.stage("returned", len(hits))
                    report.results = summarize_results(hits)
                else:
                    hits = engine.containment(
                        column, t, exclude_table=exclude
                    )[:k]
            else:
                raise ValueError(f"unknown join method {method!r}")
            q.finish(hits, report)
        return (hits, report) if explain else hits

    def fuzzy_joinable_search(
        self, column: Column | ColumnRef, k: int = 10, explain: bool = False
    ):
        """PEXESO-style fuzzy joinable search over embeddings (§2.4).

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        if self._pexeso is None:
            if "union_index" in self.skipped_stages:
                raise LakeError(
                    "stage 'union_index' was skipped at build time: "
                    "fuzzy join unavailable"
                )
            raise LakeError("embeddings disabled: fuzzy join unavailable")
        exclude = None
        query_repr = f"column<{getattr(column, 'name', '?')}>"
        if isinstance(column, ColumnRef):
            exclude = column.table
            query_repr = str(column)
            column = self.lake.column(column)
        report: ExplainReport | None = None
        with self._query_span("fuzzy_join", query_repr=query_repr, k=k) as q:
            if explain:
                hits, report = self._pexeso.search(
                    column, k, exclude_table=exclude, explain=True
                )
            else:
                hits = self._pexeso.search(column, k, exclude_table=exclude)
            q.finish(hits, report)
        return (hits, report) if explain else hits

    def multi_attribute_search(
        self,
        query: Table,
        key_columns: list[int],
        k: int = 10,
        explain: bool = False,
    ):
        """MATE-style composite-key joinable search (§2.4).

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        engine = self._require_engine(
            self._mate, "mate_index", "multi-attribute search unavailable"
        )
        report: ExplainReport | None = None
        with self._query_span(
            "multi_attribute",
            query_repr=f"{query.name}{key_columns}",
            key_columns=tuple(key_columns),
            k=k,
        ) as q:
            if explain:
                hits, report = engine.search(
                    query, key_columns, k, explain=True
                )
            else:
                hits = engine.search(query, key_columns, k)
            q.finish(hits, report)
        return (hits, report) if explain else hits

    def unionable_search(
        self,
        query: Table | str,
        k: int = 10,
        method: str = "starmie",
        explain: bool = False,
    ):
        """Unionable table search (§2.5): 'tus', 'santos', or 'starmie'.

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        if isinstance(query, str):
            query = self.lake.table(query)
        report: ExplainReport | None = None
        with self._query_span(
            "union", query_repr=query.name, method=method, table=query.name, k=k
        ) as q:
            if method == "tus":
                tus = self._require_engine(
                    self._tus, "union_index", "TUS unavailable"
                )
                if explain:
                    hits, report = tus.search(query, k, explain=True)
                else:
                    hits = tus.search(query, k)
            elif method == "santos":
                if self._santos is None:
                    if "union_index" in self.skipped_stages:
                        raise LakeError(
                            "stage 'union_index' was skipped at build "
                            "time: SANTOS unavailable"
                        )
                    raise LakeError("no ontology: SANTOS unavailable")
                hits = self._santos.search(query, k)
                if explain:
                    report = ExplainReport("santos", query=query.name, k=k)
                    report.stage("returned", len(hits))
                    report.results = summarize_results(hits)
            elif method == "starmie":
                if self._starmie is None:
                    if "union_index" in self.skipped_stages:
                        raise LakeError(
                            "stage 'union_index' was skipped at build "
                            "time: Starmie unavailable"
                        )
                    raise LakeError("embeddings disabled: Starmie unavailable")
                if explain:
                    hits, report = self._starmie.search(query, k, explain=True)
                else:
                    hits = self._starmie.search(query, k)
            else:
                raise ValueError(f"unknown union method {method!r}")
            q.finish(hits, report)
        return (hits, report) if explain else hits

    def correlated_search(
        self,
        query: Table | str,
        key_column: int,
        value_column: int,
        k: int = 10,
        explain: bool = False,
    ):
        """Joinable-and-correlated search via QCR sketches (§2.4).

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        if isinstance(query, str):
            query = self.lake.table(query)
        report: ExplainReport | None = None
        engine = self._require_engine(
            self._correlated,
            "correlation_index",
            "correlated search unavailable",
        )
        with self._query_span(
            "correlated",
            query_repr=f"{query.name}[{key_column},{value_column}]",
            table=query.name,
            k=k,
        ) as q:
            if explain:
                hits, report = engine.search(
                    query, key_column, value_column, k, explain=True
                )
            else:
                hits = engine.search(
                    query, key_column, value_column, k
                )
            q.finish(hits, report)
        return (hits, report) if explain else hits

    # -- online: navigation -------------------------------------------------------------

    def organization(self) -> Organization:
        """The lake-wide navigation hierarchy (§2.6)."""
        self._require_built()
        if self._org is None:
            if "navigation" in self.skipped_stages:
                raise LakeError(
                    "stage 'navigation' was skipped at build time: "
                    "navigation unavailable"
                )
            raise LakeError("embeddings disabled: navigation unavailable")
        return self._org

    def navigate(self, intent_text: str) -> list[str]:
        """Navigate the organization toward free-text intent; returns the
        tables at the reached node."""
        self._require_built()
        if self._org is None or self.space is None:
            if "navigation" in self.skipped_stages:
                raise LakeError(
                    "stage 'navigation' was skipped at build time: "
                    "navigation unavailable"
                )
            raise LakeError("embeddings disabled: navigation unavailable")
        intent = self.space.embed_set(intent_text.lower().split())
        _, tables = self._org.navigate(intent)
        return tables

    def explore_results(self, tables: list[str]) -> Organization:
        """RONIN-style online organization of a search result set (§2.6)."""
        self._require_built()
        return RoninExplorer(self._table_vectors).organize_results(tables)

    def knowledge_graph(self) -> EnterpriseKnowledgeGraph:
        """Aurum-style EKG over the lake, built lazily (§2.6)."""
        self._require_built()
        if self._ekg is None:
            self._ekg = EnterpriseKnowledgeGraph(self.lake).build()
        return self._ekg

    def related_columns(
        self, ref: ColumnRef, k: int = 10
    ) -> list[tuple[ColumnRef, float]]:
        """EKG neighbourhood of a column."""
        return self.knowledge_graph().neighbors(ref)[:k]

    # -- online: data science support ------------------------------------------------------

    def augment_for_ml(
        self, base: Table | str, key_column: int, target_column: int
    ) -> AugmentationReport:
        """ARDA-style feature augmentation for a prediction task (§2.7)."""
        self._require_built()
        if isinstance(base, str):
            base = self.lake.table(base)
        augmenter = ArdaAugmenter(self.lake).build()
        return augmenter.augment(base, key_column, target_column)

    def augment_entities(
        self,
        entities: list[str],
        attribute: str | None = None,
        examples: dict[str, str] | None = None,
    ):
        """InfoGather-style entity augmentation (§2.4): fill an attribute
        for the given entities, either by attribute name or by example."""
        self._require_built()
        if self._infogather is None:
            from repro.search.infogather import InfoGather

            self._infogather = InfoGather(self.lake).build()
        if attribute is not None:
            return self._infogather.augment_by_attribute(entities, attribute)
        if examples:
            return self._infogather.augment_by_example(entities, examples)
        raise ValueError("provide either an attribute name or examples")
