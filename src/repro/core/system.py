"""The Figure-1 system: an end-to-end table discovery facade.

``DiscoverySystem`` is this repository's realization of the tutorial's
architecture diagram: a Data Lake Management System feeding Table
Understanding components (annotation, domain discovery, embeddings,
indexing), which in turn power the Table Search Engine (keyword, joinable,
unionable), Navigation Support, and Data Science / Application Support.

Every search method lives behind the :mod:`repro.core.engine` protocol:
the offline stage DAG, the per-engine snapshot payloads, the
``index_stats()`` introspection, and the ``repro engines`` listing are all
derived from the :data:`~repro.core.engine.REGISTRY` rather than wired by
hand.  The classic ``keyword_search`` / ``joinable_search`` / ... methods
remain as thin facade shims with their historical signatures and results;
:meth:`DiscoverySystem.search` is the registry-native federated entry
point that fans one request across engines and merges the rankings.

Offline: ``build()`` runs the understanding + indexing pipeline.
Online: ``keyword_search``, ``joinable_search``, ``unionable_search``,
``correlated_search``, ``fuzzy_joinable_search``, ``multi_attribute_search``,
``search`` (federated), ``navigate`` / ``organization``,
``related_columns``, ``augment_for_ml``.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import replace

import repro.engines  # noqa: F401  - populate the engine registry
from repro.apps.arda import ArdaAugmenter, AugmentationReport
from repro.core.config import DiscoveryConfig, PipelineStats
from repro.core.dag import Stage, StageGraph
from repro.core.engine import (
    FEDERATED_LABEL,
    REGISTRY,
    EngineContext,
    FederatedHit,
    QueryRequest,
)
from repro.core.errors import ConfigError, LakeError
from repro.obs import METRICS, QUERY_LOG, SAMPLER, TRACER, get_logger
from repro.obs.introspect import IndexStatsReport, deep_sizeof, publish
from repro.obs.querylog import QueryRecord
from repro.datalake.lake import DataLake
from repro.datalake.ontology import Ontology
from repro.datalake.table import Column, ColumnRef, Table
from repro.graph.aurum import EnterpriseKnowledgeGraph
from repro.graph.organize import Organization
from repro.graph.ronin import RoninExplorer
from repro.search.explain import ExplainReport, summarize_results

log = get_logger("core.system")

#: Offline pipeline stage names in their canonical (sequential) order —
#: derived from the engine registry, no longer a hand-maintained literal.
STAGES: tuple[str, ...] = REGISTRY.stage_names()

#: Stage dependency edges, derived as the union of each stage's member
#: engines' ``depends_on`` declarations (embeddings feed the union indexes
#: and navigation; annotation feeds SANTOS inside union_index).
STAGE_DEPS: dict[str, tuple[str, ...]] = REGISTRY.stage_deps()

#: Reciprocal-rank-fusion constant for federated result merging (the
#: standard k=60 from the Cormack/Clarke/Buettcher RRF paper).
RRF_K = 60


class _QueryCapture:
    """Mutable holder threaded through ``_query_span``: the active span
    plus the result summary / EXPLAIN funnel captured for the query log."""

    __slots__ = ("span", "results", "funnel")

    def __init__(self):
        self.span = None
        self.results: list[tuple[str, float]] = []
        self.funnel: dict[str, int] = {}

    def set(self, key, value) -> "_QueryCapture":
        """Attach a span attribute (no-op span while tracing is off)."""
        self.span.set(key, value)
        return self

    def finish(self, hits: list, report: ExplainReport | None = None) -> None:
        """Record the query outcome: hit count attr, result summary, and
        (when the query ran with explain) the funnel counts."""
        self.span.set("hits", len(hits))
        self.results = summarize_results(hits)
        if report is not None:
            self.funnel = report.counts()


def _hit_table(hit) -> str:
    """Table-level identity of any engine's hit type (for federation)."""
    table = getattr(hit, "table", None)
    if table is not None:
        return str(table)
    ref = getattr(hit, "ref", None)
    if ref is not None:
        return str(ref.table)
    return str(hit)


class DiscoverySystem:
    """End-to-end table discovery over a data lake (Figure 1)."""

    def __init__(
        self,
        lake: DataLake,
        config: DiscoveryConfig | None = None,
        ontology: Ontology | None = None,
    ):
        self.lake = lake
        self.config = (config or DiscoveryConfig()).validate()
        self.ontology = ontology
        self.stats = PipelineStats()
        self._configure_sampler()

        # Understanding outputs shared across engines (populated by the
        # foundation stages):
        self.space = None
        self.encoder = None
        self.domains: list = []
        self.annotations: dict = {}

        # Engine instances: one fresh adapter per registered engine, plus
        # the foundation (understanding) stages, all sharing one context.
        self.engine_context = EngineContext(self)
        self.engines = REGISTRY.create()
        self.foundations = REGISTRY.create_foundations()
        for adapter in (*self.foundations.values(), *self.engines.values()):
            adapter.ctx = self.engine_context

        self._ekg: EnterpriseKnowledgeGraph | None = None
        self._infogather = None  # built lazily by augment_entities
        self._built = False
        #: Stages explicitly skipped at build time (build(skip=...)).
        self.skipped_stages: set[str] = set()
        #: Where the built state came from: a live build or a snapshot.
        self.provenance: dict = {}

    # -- legacy views over the engine adapters (facade back-compat) -----------------

    @property
    def _keyword(self):
        return self.engines["keyword"].raw

    @property
    def _joinable(self):
        return self.engines["josie"].raw

    @property
    def _tus(self):
        return self.engines["tus"].raw

    @property
    def _starmie(self):
        return self.engines["starmie"].raw

    @property
    def _santos(self):
        return self.engines["santos"].raw

    @property
    def _correlated(self):
        return self.engines["qcr"].raw

    @property
    def _pexeso(self):
        return self.engines["pexeso"].raw

    @property
    def _mate(self):
        return self.engines["mate"].raw

    @property
    def _org(self):
        return self.engines["organization"].organization

    @property
    def _table_vectors(self) -> dict:
        return self.engines["organization"].table_vectors

    def _configure_sampler(self) -> None:
        """Apply this config's trace-sampling knobs to the process-wide
        sampler — but only when they differ from the config defaults, so
        constructing a second system (tests, sidecars) with a default
        config does not silently clobber an earlier system's sampling."""
        flds = DiscoveryConfig.__dataclass_fields__
        cfg_defaults = (
            flds["trace_sample_rate"].default,
            flds["slow_query_ms"].default,
        )
        wanted = (self.config.trace_sample_rate, self.config.slow_query_ms)
        if wanted == cfg_defaults:
            return
        current = (SAMPLER.rate, SAMPLER.slow_ms)
        # (1.0, None) is a fresh TraceSampler; anything else was set by
        # somebody — warn before overwriting a differing configuration.
        if current not in ((1.0, None), wanted):
            log.warning(
                "overwriting non-default trace sampler config "
                "(rate=%s, slow_ms=%s) with (rate=%s, slow_ms=%s)",
                current[0],
                current[1],
                wanted[0],
                wanted[1],
            )
        SAMPLER.configure(rate=wanted[0], slow_ms=wanted[1])

    # -- offline pipeline ------------------------------------------------------------

    def _stage_enabled(self) -> dict[str, bool]:
        """Config gates for the foundation stages (index stages are gated
        only by ``skip`` — their engines self-disable when inputs are
        missing, exactly as the hand-wired stages did)."""
        cfg = self.config
        return {
            "embeddings": cfg.enable_embeddings,
            "domains": cfg.enable_domains,
            "annotation": cfg.enable_annotation and self.ontology is not None,
        }

    def _stage_graph(self, skip: set[str]) -> StageGraph:
        """The stage DAG for this build, derived from the engine registry:
        enabled stages minus ``skip``, each stage running its member
        engines' ``build(ctx)`` in registration order."""
        members = REGISTRY.by_stage(
            {**self.foundations, **self.engines}
        )
        enabled = self._stage_enabled()

        def stage_fn(engines):
            def run() -> None:
                for engine in engines:
                    engine.build(self.engine_context)

            return run

        stages = [
            Stage(name, stage_fn(members[name]), STAGE_DEPS.get(name, ()))
            for name in STAGES
            if name not in skip and enabled.get(name, True)
        ]
        return StageGraph(stages)

    def build(
        self,
        jobs: int | None = None,
        skip: set[str] | None = None,
    ) -> "DiscoverySystem":
        """Run the offline pipeline: understand, embed, index (Figure 1 left).

        ``jobs`` overrides ``config.build_jobs``: worker threads for the
        stage DAG (1 = the legacy sequential order; results are identical
        for any value).  ``skip`` disables stages by name (from
        :data:`STAGES`); online methods needing a skipped stage raise
        :class:`LakeError`.
        """
        cfg = self.config
        skip = set(skip or ())
        unknown = skip - set(STAGES)
        if unknown:
            raise ValueError(f"unknown stages to skip: {sorted(unknown)}")
        self.skipped_stages = skip
        jobs = cfg.build_jobs if jobs is None else int(jobs)
        if jobs < 1:
            raise ConfigError(f"build jobs must be >= 1, got {jobs}")
        lake_stats = self.lake.stats()
        self.stats.tables = lake_stats["tables"]
        self.stats.columns = lake_stats["columns"]
        METRICS.set_gauge("lake.tables", self.stats.tables)
        METRICS.set_gauge("lake.columns", self.stats.columns)

        self.engine_context.reset_shared()
        graph = self._stage_graph(skip)
        with TRACER.span(
            "pipeline.build",
            force=True,
            tables=self.stats.tables,
            columns=self.stats.columns,
            jobs=jobs,
        ):
            max_concurrent = graph.run(
                jobs, run_stage=lambda s: self._stage(s.name, s.fn)
            )
        # Canonicalize stage timing order: parallel completion order is
        # nondeterministic, the report should not be.
        self.stats.stage_seconds = {
            name: self.stats.stage_seconds[name]
            for name in STAGES
            if name in self.stats.stage_seconds
        }
        METRICS.inc("pipeline.builds")
        METRICS.set_gauge("pipeline.build_jobs", jobs)
        METRICS.set_gauge("pipeline.max_concurrent_stages", max_concurrent)
        self._built = True
        self.provenance = {
            "source": "build",
            "build_jobs": jobs,
            "max_concurrent_stages": max_concurrent,
            "stages": graph.order(),
            "skipped": sorted(skip),
        }
        log.info(
            "pipeline built: %d tables, %d columns, %d stages "
            "(%d job(s), peak concurrency %d) in %.1f ms",
            self.stats.tables,
            self.stats.columns,
            len(self.stats.stage_seconds),
            jobs,
            max_concurrent,
            sum(self.stats.stage_seconds.values()) * 1000,
        )
        return self

    def _stage(self, name: str, fn) -> None:
        """Run one offline stage inside a (forced) tracer span; keep the
        legacy ``PipelineStats.stage_seconds`` populated from it."""
        with TRACER.span(f"stage.{name}", force=True) as sp:
            fn()
        self.stats.stage_seconds[name] = sp.duration_s
        METRICS.set_gauge(f"pipeline.stage_seconds.{name}", sp.duration_s)
        log.debug("stage %s finished in %.1f ms", name, sp.duration_s * 1000)

    def _require_built(self) -> None:
        if not self._built:
            raise LakeError(
                "DiscoverySystem is not built yet: call build() first"
            )

    def _require_engine(self, obj, stage: str, unavailable: str):
        """Return a built engine, or raise a clear :class:`LakeError`
        naming the skipped stage (never an ``AttributeError`` on None)."""
        if obj is not None:
            return obj
        if stage in self.skipped_stages:
            raise LakeError(
                f"stage {stage!r} was skipped at build time: {unavailable}"
            )
        raise LakeError(f"stage {stage!r} did not run: {unavailable}")

    # -- snapshots ---------------------------------------------------------------------

    def save(self, directory):
        """Persist the built state (foundations plus every engine's
        payload) as a versioned snapshot directory; returns the
        :class:`~repro.core.snapshot.SnapshotManifest` written."""
        self._require_built()
        from repro.core.snapshot import save_snapshot

        return save_snapshot(self, directory)

    @classmethod
    def load(
        cls,
        directory,
        lake: DataLake | None = None,
        config: DiscoveryConfig | None = None,
        ontology: Ontology | None = None,
    ) -> "DiscoverySystem":
        """Reload a system from a snapshot without re-running any pipeline
        stage.  Raises :class:`~repro.core.errors.SnapshotError` when the
        snapshot is missing, corrupt, or stale for the given lake/config."""
        from repro.core.snapshot import load_snapshot

        return load_snapshot(
            directory, lake=lake, config=config, ontology=ontology
        )

    # -- index introspection ----------------------------------------------------------

    def index_stats(self) -> list[IndexStatsReport]:
        """Introspect every built engine in the registry: structural stats
        from the adapter's public ``stats()`` hook plus an estimated
        memory footprint.

        Reports are published process-wide (``/indexstats`` route) and
        surfaced as ``index.<name>.{items,memory_bytes}`` gauges so a
        Prometheus scrape sees index growth between builds.
        """
        self._require_built()
        reports: list[IndexStatsReport] = []
        for engine in self.engines.values():
            if not engine.is_built():
                continue
            detail = engine.stats()
            reports.append(
                IndexStatsReport(
                    name=engine.name,
                    kind=engine.kind_of(),
                    items=engine.items(detail),
                    memory_bytes=deep_sizeof(engine.memory_object()),
                    detail=detail,
                    provenance=dict(self.provenance),
                )
            )

        for r in reports:
            METRICS.set_gauge(f"index.{r.name}.items", r.items)
            METRICS.set_gauge(f"index.{r.name}.memory_bytes", r.memory_bytes)
        publish(reports)
        return reports

    @contextmanager
    def _query_span(self, engine: str, query_repr: str = "", **attrs):
        """Per-query observability: a ``query.<engine>`` span, latency
        histogram, query counter, and a structured :class:`QueryRecord`
        appended to the process-wide query log (always recorded; the span
        is a no-op when tracing is disabled).

        Each record carries resource accounting, not just latency: thread
        CPU time always, and the peak allocation delta whenever
        ``obs.enable_memory_accounting()`` has tracemalloc running."""
        t0 = time.perf_counter()
        cpu0 = time.thread_time()
        mem_on = tracemalloc.is_tracing()
        mem_base = 0
        if mem_on:
            tracemalloc.reset_peak()
            mem_base = tracemalloc.get_traced_memory()[0]
        capture = _QueryCapture()
        error: str | None = None
        try:
            with TRACER.span(f"query.{engine}", **attrs) as sp:
                capture.span = sp
                yield capture
        except Exception as exc:
            error = type(exc).__name__
            raise
        finally:
            latency_ms = (time.perf_counter() - t0) * 1000
            cpu_ms = (time.thread_time() - cpu0) * 1000
            mem_peak_kb = None
            if mem_on and tracemalloc.is_tracing():
                peak = tracemalloc.get_traced_memory()[1]
                mem_peak_kb = max(0, peak - mem_base) / 1024
            METRICS.inc(f"query.{engine}.count")
            METRICS.observe("query.latency_ms", latency_ms)
            METRICS.observe("query.cpu_ms", cpu_ms)
            METRICS.observe(f"query.{engine}.latency_ms", latency_ms)
            if error:
                METRICS.inc(f"query.{engine}.errors")
            QUERY_LOG.append(
                QueryRecord(
                    engine=engine,
                    query=query_repr,
                    k=int(attrs.get("k", 0) or 0),
                    latency_ms=latency_ms,
                    cpu_ms=cpu_ms,
                    mem_peak_kb=mem_peak_kb,
                    results=capture.results,
                    funnel=capture.funnel,
                    status="error" if error else "ok",
                    error=error,
                )
            )

    # -- online: table search engine ---------------------------------------------------

    def keyword_search(self, query: str, k: int = 10, explain: bool = False):
        """Metadata keyword search (§2.3).

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        engine = self.engines["keyword"]
        self._require_engine(
            engine.raw, "keyword_index", "keyword search unavailable"
        )
        with self._query_span(
            engine.query_label, query_repr=query, query=query, k=k
        ) as q:
            hits, report = engine.query(
                QueryRequest(text=query, k=k, explain=explain)
            )
            q.finish(hits, report)
        return (hits, report) if explain else hits

    def joinable_search(
        self,
        column: Column | ColumnRef,
        k: int = 10,
        method: str = "exact",
        threshold: float | None = None,
        explain: bool = False,
    ):
        """Joinable table search (§2.4): 'exact' (JOSIE) or 'containment'
        (LSH Ensemble) over the query column.

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        self._require_engine(
            self.engines["josie"].raw,
            "join_index",
            "joinable search unavailable",
        )
        exclude = None
        query_repr = f"column<{getattr(column, 'name', '?')}>"
        if isinstance(column, ColumnRef):
            exclude = column.table
            query_repr = str(column)
            column = self.lake.column(column)
        with self._query_span(
            "join", query_repr=query_repr, method=method, k=k
        ) as q:
            if method == "exact":
                engine = self.engines["josie"]
            elif method == "containment":
                engine = self.engines["lshensemble"]
            else:
                raise ValueError(f"unknown join method {method!r}")
            hits, report = engine.query(
                QueryRequest(
                    column=column,
                    k=k,
                    exclude_table=exclude,
                    threshold=threshold,
                    explain=explain,
                )
            )
            q.finish(hits, report)
        return (hits, report) if explain else hits

    def fuzzy_joinable_search(
        self, column: Column | ColumnRef, k: int = 10, explain: bool = False
    ):
        """PEXESO-style fuzzy joinable search over embeddings (§2.4).

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        engine = self.engines["pexeso"]
        if not engine.is_built():
            if "union_index" in self.skipped_stages:
                raise LakeError(
                    "stage 'union_index' was skipped at build time: "
                    "fuzzy join unavailable"
                )
            raise LakeError("embeddings disabled: fuzzy join unavailable")
        exclude = None
        query_repr = f"column<{getattr(column, 'name', '?')}>"
        if isinstance(column, ColumnRef):
            exclude = column.table
            query_repr = str(column)
            column = self.lake.column(column)
        with self._query_span(
            engine.query_label, query_repr=query_repr, k=k
        ) as q:
            hits, report = engine.query(
                QueryRequest(
                    column=column, k=k, exclude_table=exclude, explain=explain
                )
            )
            q.finish(hits, report)
        return (hits, report) if explain else hits

    def multi_attribute_search(
        self,
        query: Table,
        key_columns: list[int],
        k: int = 10,
        explain: bool = False,
    ):
        """MATE-style composite-key joinable search (§2.4).

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        engine = self.engines["mate"]
        self._require_engine(
            engine.raw, "mate_index", "multi-attribute search unavailable"
        )
        with self._query_span(
            engine.query_label,
            query_repr=f"{query.name}{key_columns}",
            key_columns=tuple(key_columns),
            k=k,
        ) as q:
            hits, report = engine.query(
                QueryRequest(
                    table=query,
                    key_columns=tuple(key_columns),
                    k=k,
                    explain=explain,
                )
            )
            q.finish(hits, report)
        return (hits, report) if explain else hits

    def unionable_search(
        self,
        query: Table | str,
        k: int = 10,
        method: str = "starmie",
        explain: bool = False,
    ):
        """Unionable table search (§2.5): 'tus', 'santos', or 'starmie'.

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        if isinstance(query, str):
            query = self.lake.table(query)
        with self._query_span(
            "union", query_repr=query.name, method=method, table=query.name, k=k
        ) as q:
            if method == "tus":
                engine = self.engines["tus"]
                self._require_engine(
                    engine.raw, "union_index", "TUS unavailable"
                )
            elif method == "santos":
                engine = self.engines["santos"]
                if not engine.is_built():
                    if "union_index" in self.skipped_stages:
                        raise LakeError(
                            "stage 'union_index' was skipped at build "
                            "time: SANTOS unavailable"
                        )
                    raise LakeError("no ontology: SANTOS unavailable")
            elif method == "starmie":
                engine = self.engines["starmie"]
                if not engine.is_built():
                    if "union_index" in self.skipped_stages:
                        raise LakeError(
                            "stage 'union_index' was skipped at build "
                            "time: Starmie unavailable"
                        )
                    raise LakeError(
                        "embeddings disabled: Starmie unavailable"
                    )
            else:
                raise ValueError(f"unknown union method {method!r}")
            hits, report = engine.query(
                QueryRequest(table=query, k=k, explain=explain)
            )
            q.finish(hits, report)
        return (hits, report) if explain else hits

    def correlated_search(
        self,
        query: Table | str,
        key_column: int,
        value_column: int,
        k: int = 10,
        explain: bool = False,
    ):
        """Joinable-and-correlated search via QCR sketches (§2.4).

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        if isinstance(query, str):
            query = self.lake.table(query)
        engine = self.engines["qcr"]
        self._require_engine(
            engine.raw,
            "correlation_index",
            "correlated search unavailable",
        )
        with self._query_span(
            engine.query_label,
            query_repr=f"{query.name}[{key_column},{value_column}]",
            table=query.name,
            k=k,
        ) as q:
            hits, report = engine.query(
                QueryRequest(
                    table=query,
                    key_column=key_column,
                    value_column=value_column,
                    k=k,
                    explain=explain,
                )
            )
            q.finish(hits, report)
        return (hits, report) if explain else hits

    # -- online: federated dispatch ----------------------------------------------------

    def _federated_request(self, query, k: int) -> QueryRequest:
        """Normalize a free-form query (keyword text, table name,
        :class:`Table`, :class:`Column`, or :class:`ColumnRef`) into one
        :class:`QueryRequest` each engine can inspect."""
        text = table = column = exclude = None
        if isinstance(query, str):
            text = query
            if query in self.lake.table_names():
                table = self.lake.table(query)
                exclude = query
        elif isinstance(query, Table):
            table = query
            exclude = query.name
        elif isinstance(query, ColumnRef):
            column = self.lake.column(query)
            table = self.lake.table(query.table)
            exclude = query.table
        elif isinstance(query, Column):
            column = query
        else:
            raise ValueError(
                "federated query must be a string, Table, Column, or "
                f"ColumnRef, not {type(query).__name__}"
            )
        return QueryRequest(
            k=k, text=text, table=table, column=column, exclude_table=exclude
        )

    def search(
        self,
        query,
        engines: list[str] | None = None,
        k: int = 10,
    ) -> list[FederatedHit]:
        """Federated table search: fan one request out across registered
        engines and merge the rankings with reciprocal-rank fusion.

        ``query`` may be keyword text, a table name / :class:`Table`
        (union-style engines), or a :class:`Column` / :class:`ColumnRef`
        (join-style engines); every built engine whose
        :meth:`~repro.core.engine.Engine.accepts` matches participates.
        ``engines`` restricts the fan-out to specific registry names.
        Returns :class:`FederatedHit` rows — table, fused score, and the
        per-engine ranks that produced it — best first.
        """
        self._require_built()
        if engines is None:
            selected = [
                e for e in self.engines.values() if e.category == "search"
            ]
        else:
            unknown = [n for n in engines if n not in self.engines]
            if unknown:
                raise ValueError(
                    f"unknown engines {sorted(unknown)}; registered: "
                    f"{sorted(self.engines)}"
                )
            selected = [self.engines[n] for n in engines]
        request = self._federated_request(query, k)
        scores: dict[str, float] = {}
        sources: dict[str, dict[str, int]] = {}
        with self._query_span(
            FEDERATED_LABEL, query_repr=str(query), k=k
        ) as q:
            asked = 0
            for engine in selected:
                if not engine.is_built() or not engine.accepts(request):
                    continue
                asked += 1
                with TRACER.span(f"federated.{engine.name}"):
                    hits, _ = engine.query(replace(request, explain=False))
                for rank, hit in enumerate(hits, 1):
                    table = _hit_table(hit)
                    if table == request.exclude_table:
                        continue
                    scores[table] = scores.get(table, 0.0) + 1.0 / (
                        RRF_K + rank
                    )
                    sources.setdefault(table, {})[engine.name] = rank
            q.set("engines_asked", asked)
            merged = sorted(
                FederatedHit(t, scores[t], sources[t]) for t in scores
            )[:k]
            q.finish(merged)
        return merged

    # -- online: navigation -------------------------------------------------------------

    def organization(self) -> Organization:
        """The lake-wide navigation hierarchy (§2.6)."""
        self._require_built()
        if self._org is None:
            if "navigation" in self.skipped_stages:
                raise LakeError(
                    "stage 'navigation' was skipped at build time: "
                    "navigation unavailable"
                )
            raise LakeError("embeddings disabled: navigation unavailable")
        return self._org

    def navigate(self, intent_text: str) -> list[str]:
        """Navigate the organization toward free-text intent; returns the
        tables at the reached node."""
        self._require_built()
        engine = self.engines["organization"]
        if not engine.is_built() or self.space is None:
            if "navigation" in self.skipped_stages:
                raise LakeError(
                    "stage 'navigation' was skipped at build time: "
                    "navigation unavailable"
                )
            raise LakeError("embeddings disabled: navigation unavailable")
        tables, _ = engine.query(QueryRequest(text=intent_text))
        return tables

    def explore_results(self, tables: list[str]) -> Organization:
        """RONIN-style online organization of a search result set (§2.6)."""
        self._require_built()
        return RoninExplorer(self._table_vectors).organize_results(tables)

    def knowledge_graph(self) -> EnterpriseKnowledgeGraph:
        """Aurum-style EKG over the lake, built lazily (§2.6)."""
        self._require_built()
        if self._ekg is None:
            self._ekg = EnterpriseKnowledgeGraph(self.lake).build()
        return self._ekg

    def related_columns(
        self, ref: ColumnRef, k: int = 10
    ) -> list[tuple[ColumnRef, float]]:
        """EKG neighbourhood of a column."""
        return self.knowledge_graph().neighbors(ref)[:k]

    # -- online: data science support ------------------------------------------------------

    def augment_for_ml(
        self, base: Table | str, key_column: int, target_column: int
    ) -> AugmentationReport:
        """ARDA-style feature augmentation for a prediction task (§2.7)."""
        self._require_built()
        if isinstance(base, str):
            base = self.lake.table(base)
        augmenter = ArdaAugmenter(self.lake).build()
        return augmenter.augment(base, key_column, target_column)

    def augment_entities(
        self,
        entities: list[str],
        attribute: str | None = None,
        examples: dict[str, str] | None = None,
    ):
        """InfoGather-style entity augmentation (§2.4): fill an attribute
        for the given entities, either by attribute name or by example."""
        self._require_built()
        if self._infogather is None:
            from repro.search.infogather import InfoGather

            self._infogather = InfoGather(self.lake).build()
        if attribute is not None:
            return self._infogather.augment_by_attribute(entities, attribute)
        if examples:
            return self._infogather.augment_by_example(entities, examples)
        raise ValueError("provide either an attribute name or examples")
