"""Index snapshots: persist a built ``DiscoverySystem`` and reload it
without re-running any pipeline stage.

On lakes where offline indexing dominates end-to-end cost, rebuilding
every index on process start is the single largest waste of hardware.  A
snapshot is a directory with two files:

``manifest.json``
    Human-readable provenance and compatibility gate: the snapshot format
    version, a hash of the build-relevant configuration, a fingerprint of
    the lake contents, a checksum of the payload, and the stages that ran.

``payload.pkl``
    One pickle of the complete built state: the lake, the config, and a
    per-engine payload for every registered engine (plus the foundation
    stages' shared outputs), each produced by that engine's
    ``to_payload()``.  Everything is dumped together so shared objects
    (the embedding space referenced by several indexes, the single
    ``JoinableSearch`` behind the three join engines) stay shared on
    reload via pickle's memo.

``load()`` refuses to serve anything it cannot prove matches: a format
version this code does not read, a payload whose checksum disagrees with
the manifest, a lake whose fingerprint changed since ``save()``, or a
caller config whose build-relevant hash differs.  Every refusal raises
:class:`~repro.core.errors.SnapshotError` with the reason — a stale
snapshot must fail loudly, not silently serve wrong results.  Hits and
misses are recorded in ``METRICS`` (``snapshot.load.hit`` /
``snapshot.load.miss``).

Runtime-only knobs (``build_jobs``, trace sampling, SLOs) are excluded
from the config hash: they change how or when a build runs, never what
the indexes contain, so a snapshot saved by a ``--jobs 8`` build loads
under any job count.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.config import DiscoveryConfig
from repro.core.errors import SnapshotError
from repro.obs import METRICS, TRACER, get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import DiscoverySystem
    from repro.datalake.lake import DataLake

log = get_logger("core.snapshot")

#: Bumped whenever the payload layout changes incompatibly.
#: Version 2: per-engine payloads keyed by registry name (version 1 stored
#: a fixed attribute list and is refused by this code).
FORMAT_VERSION = 2

MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.pkl"

#: Config fields that do not affect built index content.
RUNTIME_ONLY_FIELDS = frozenset(
    {"build_jobs", "trace_sample_rate", "slow_query_ms", "slos"}
)

def config_hash(config: DiscoveryConfig) -> str:
    """Stable short hash of the build-relevant configuration fields."""
    payload = {
        f.name: getattr(config, f.name)
        for f in fields(config)
        if f.name not in RUNTIME_ONLY_FIELDS
    }
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def lake_fingerprint(lake: "DataLake") -> str:
    """Content fingerprint of a lake: every table name, header, metadata
    record, and cell value, hashed in sorted-table order."""
    h = hashlib.sha256()
    for name in sorted(lake.table_names()):
        table = lake.table(name)
        h.update(b"\x00T" + name.encode("utf-8"))
        meta = getattr(table, "metadata", None)
        if meta is not None:
            h.update(b"\x00M" + repr(meta).encode("utf-8"))
        for col in table.columns:
            h.update(b"\x00C" + col.name.encode("utf-8"))
            for value in col.values:
                h.update(b"\x00v" + str(value).encode("utf-8"))
    return h.hexdigest()


@dataclass
class SnapshotManifest:
    """The versioned compatibility record stored beside the payload."""

    format_version: int
    created_at: str
    config_hash: str
    lake_fingerprint: str
    payload_sha256: str
    stages: list[str]
    skipped_stages: list[str]
    build_jobs: int
    tables: int
    columns: int
    #: Registry names of the engines whose payloads the snapshot holds.
    engines: list[str]

    def to_dict(self) -> dict[str, Any]:
        return {
            "format_version": self.format_version,
            "created_at": self.created_at,
            "config_hash": self.config_hash,
            "lake_fingerprint": self.lake_fingerprint,
            "payload_sha256": self.payload_sha256,
            "stages": list(self.stages),
            "skipped_stages": list(self.skipped_stages),
            "build_jobs": self.build_jobs,
            "tables": self.tables,
            "columns": self.columns,
            "engines": list(self.engines),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "SnapshotManifest":
        try:
            return cls(
                format_version=int(d["format_version"]),
                created_at=str(d["created_at"]),
                config_hash=str(d["config_hash"]),
                lake_fingerprint=str(d["lake_fingerprint"]),
                payload_sha256=str(d["payload_sha256"]),
                stages=list(d["stages"]),
                skipped_stages=list(d.get("skipped_stages", [])),
                build_jobs=int(d.get("build_jobs", 1)),
                tables=int(d.get("tables", 0)),
                columns=int(d.get("columns", 0)),
                engines=list(d.get("engines", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed snapshot manifest: {exc}") from exc


def read_manifest(directory: str | Path) -> SnapshotManifest:
    """Read and validate the manifest of a snapshot directory."""
    path = Path(directory) / MANIFEST_NAME
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SnapshotError(
            f"no snapshot at {directory!s}: missing {MANIFEST_NAME}"
        ) from None
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"corrupt snapshot manifest at {path}: {exc}"
        ) from exc
    return SnapshotManifest.from_dict(raw)


def save_snapshot(
    system: "DiscoverySystem", directory: str | Path
) -> SnapshotManifest:
    """Persist a built system's complete state under ``directory``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    # One payload per registered engine (built ones only) plus the
    # foundation stages' shared outputs; a single pickle dump keeps
    # structures co-owned by several engines shared on reload.
    engine_payloads = {
        name: engine.to_payload()
        for name, engine in system.engines.items()
        if engine.is_built()
    }
    payload: dict[str, Any] = {
        "config": system.config,
        "lake": system.lake,
        "ontology": system.ontology,
        "stats": system.stats,
        "skipped_stages": sorted(system.skipped_stages),
        "foundation": {
            name: foundation.to_payload()
            for name, foundation in system.foundations.items()
        },
        "engines": engine_payloads,
    }
    with TRACER.span("snapshot.save", force=True, dir=str(path)) as sp:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        manifest = SnapshotManifest(
            format_version=FORMAT_VERSION,
            created_at=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            config_hash=config_hash(system.config),
            lake_fingerprint=lake_fingerprint(system.lake),
            payload_sha256=hashlib.sha256(blob).hexdigest(),
            stages=list(system.stats.stage_seconds),
            skipped_stages=sorted(system.skipped_stages),
            build_jobs=int(system.provenance.get("build_jobs", 1)),
            tables=system.stats.tables,
            columns=system.stats.columns,
            engines=sorted(engine_payloads),
        )
        (path / PAYLOAD_NAME).write_bytes(blob)
        (path / MANIFEST_NAME).write_text(
            json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        sp.set("bytes", len(blob))
    METRICS.inc("snapshot.saves")
    METRICS.set_gauge("snapshot.payload_bytes", len(blob))
    log.info(
        "saved snapshot to %s (%d bytes, config %s, lake %s)",
        path,
        len(blob),
        manifest.config_hash,
        manifest.lake_fingerprint[:12],
    )
    return manifest


def _miss(reason: str) -> SnapshotError:
    METRICS.inc("snapshot.load.miss")
    return SnapshotError(reason)


def load_snapshot(
    directory: str | Path,
    lake: "DataLake | None" = None,
    config: DiscoveryConfig | None = None,
    ontology=None,
) -> "DiscoverySystem":
    """Reconstruct a built :class:`DiscoverySystem` from a snapshot.

    ``lake`` (optional) is the live lake the caller intends to query: its
    fingerprint must match the manifest, otherwise the snapshot is stale
    and refused.  ``config`` (optional) likewise must hash to the saved
    build config.  With neither given, the snapshot's own lake and config
    are used verbatim.
    """
    from repro.core.system import DiscoverySystem

    path = Path(directory)
    with TRACER.span("snapshot.load", force=True, dir=str(path)) as sp:
        try:
            manifest = read_manifest(path)
        except SnapshotError as exc:
            raise _miss(str(exc)) from None
        if manifest.format_version != FORMAT_VERSION:
            raise _miss(
                f"snapshot at {path} has format version "
                f"{manifest.format_version}; this build reads version "
                f"{FORMAT_VERSION} — rebuild and re-save the snapshot"
            )
        try:
            blob = (path / PAYLOAD_NAME).read_bytes()
        except FileNotFoundError:
            raise _miss(
                f"snapshot at {path} is incomplete: missing {PAYLOAD_NAME}"
            ) from None
        digest = hashlib.sha256(blob).hexdigest()
        if digest != manifest.payload_sha256:
            raise _miss(
                f"snapshot payload at {path} is corrupt: checksum "
                f"{digest[:12]} does not match manifest "
                f"{manifest.payload_sha256[:12]}"
            )
        if config is not None:
            want = config_hash(config)
            if want != manifest.config_hash:
                raise _miss(
                    f"snapshot at {path} was built with config "
                    f"{manifest.config_hash}, requested config hashes to "
                    f"{want} — rebuild with the new config or drop the "
                    "overrides"
                )
        if lake is not None:
            fp = lake_fingerprint(lake)
            if fp != manifest.lake_fingerprint:
                raise _miss(
                    f"snapshot at {path} is stale: lake fingerprint "
                    f"{fp[:12]} does not match saved "
                    f"{manifest.lake_fingerprint[:12]} — the lake changed "
                    "since the snapshot was saved; rebuild it"
                )
        try:
            payload = pickle.loads(blob)
            saved_config: DiscoveryConfig = payload["config"]
            foundation_payloads = payload["foundation"]
            engine_payloads = payload["engines"]
        except SnapshotError:
            raise
        except Exception as exc:
            raise _miss(
                f"snapshot payload at {path} cannot be decoded: {exc}"
            ) from exc

        system = DiscoverySystem(
            lake if lake is not None else payload["lake"],
            saved_config,
            ontology if ontology is not None else payload["ontology"],
        )
        system.stats = payload["stats"]
        system.skipped_stages = set(payload.get("skipped_stages", ()))
        for name, state in foundation_payloads.items():
            foundation = system.foundations.get(name)
            if foundation is None:
                log.warning(
                    "snapshot holds unknown foundation stage %r; skipping",
                    name,
                )
                continue
            foundation.from_payload(state, system.engine_context)
        for name, state in engine_payloads.items():
            engine = system.engines.get(name)
            if engine is None:
                log.warning(
                    "snapshot holds payload for unknown engine %r "
                    "(saved by a build with more engines registered); "
                    "skipping it",
                    name,
                )
                continue
            engine.from_payload(state, system.engine_context)
        system._built = True
        system.provenance = {
            "source": "snapshot",
            "path": str(path),
            "created_at": manifest.created_at,
            "format_version": manifest.format_version,
            "config_hash": manifest.config_hash,
            "lake_fingerprint": manifest.lake_fingerprint,
            "build_jobs": manifest.build_jobs,
            "stages": list(manifest.stages),
            "skipped": list(manifest.skipped_stages),
            "engines": list(manifest.engines),
        }
        sp.set("bytes", len(blob))
    METRICS.inc("snapshot.load.hit")
    log.info(
        "loaded snapshot from %s (%d tables, %d stages, saved %s)",
        path,
        manifest.tables,
        len(manifest.stages),
        manifest.created_at,
    )
    return system
