"""Core: the Figure-1 end-to-end discovery system."""

from repro.core.config import DiscoveryConfig, PipelineStats
from repro.core.dag import Stage, StageCycleError, StageGraph
from repro.core.errors import (
    ConfigError,
    CsvFormatError,
    DiscoveryError,
    LakeError,
    SchemaError,
    SnapshotError,
)
from repro.core.engine import (
    REGISTRY,
    Engine,
    EngineContext,
    EngineRegistry,
    FederatedHit,
    QueryRequest,
    register_engine,
)
from repro.core.pipeline import STAGES, pipeline_report, run_pipeline
from repro.core.snapshot import SnapshotManifest
from repro.core.system import STAGE_DEPS, DiscoverySystem

__all__ = [
    "REGISTRY",
    "STAGES",
    "STAGE_DEPS",
    "ConfigError",
    "CsvFormatError",
    "DiscoveryConfig",
    "DiscoveryError",
    "DiscoverySystem",
    "Engine",
    "EngineContext",
    "EngineRegistry",
    "FederatedHit",
    "LakeError",
    "QueryRequest",
    "register_engine",
    "PipelineStats",
    "SchemaError",
    "SnapshotError",
    "SnapshotManifest",
    "Stage",
    "StageCycleError",
    "StageGraph",
    "pipeline_report",
    "run_pipeline",
]
