"""Core: the Figure-1 end-to-end discovery system."""

from repro.core.config import DiscoveryConfig, PipelineStats
from repro.core.errors import (
    ConfigError,
    CsvFormatError,
    DiscoveryError,
    LakeError,
    SchemaError,
)
from repro.core.pipeline import STAGES, pipeline_report, run_pipeline
from repro.core.system import DiscoverySystem

__all__ = [
    "STAGES",
    "ConfigError",
    "CsvFormatError",
    "DiscoveryConfig",
    "DiscoveryError",
    "DiscoverySystem",
    "LakeError",
    "PipelineStats",
    "SchemaError",
    "pipeline_report",
    "run_pipeline",
]
