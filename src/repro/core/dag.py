"""Stage-DAG executor for the offline pipeline.

The Figure-1 offline pipeline is not a chain: embeddings feed the union
indexes and navigation, annotation feeds SANTOS, and the keyword / join /
correlation / MATE indexes are mutually independent.  :class:`StageGraph`
captures those dependencies explicitly and executes the stages either
sequentially (``jobs=1``, the legacy order) or on a
``concurrent.futures.ThreadPoolExecutor`` (``jobs>1``), scheduling a stage
the moment its dependencies complete.

Stages hold the GIL for pure-Python work, but the heavy stages spend much
of their time in numpy/scipy kernels that release it, so independent
stages genuinely overlap.  Results are deterministic regardless of
``jobs``: every stage writes disjoint state and seeds its own RNGs, so the
executor only changes *when* a stage runs, never what it computes.

A dependency naming a stage absent from the graph (disabled or skipped)
is treated as satisfied — the dependent stage must itself tolerate the
missing input, exactly as the sequential pipeline always has.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Sequence


class StageCycleError(ValueError):
    """The declared stage dependencies contain a cycle."""


@dataclass(frozen=True)
class Stage:
    """One offline pipeline stage: a name, a thunk, and its dependencies."""

    name: str
    fn: Callable[[], None]
    deps: tuple[str, ...] = ()


class StageGraph:
    """A dependency graph of named stages with a deterministic topological
    order (stable with respect to the declaration order)."""

    def __init__(self, stages: Sequence[Stage]):
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in {names}")
        self._stages: dict[str, Stage] = {s.name: s for s in stages}
        # Dependencies on stages not in the graph are trivially satisfied.
        self._deps: dict[str, tuple[str, ...]] = {
            s.name: tuple(d for d in s.deps if d in self._stages)
            for s in stages
        }
        self._order = self._toposort(names)

    def _toposort(self, names: list[str]) -> list[str]:
        remaining = list(names)
        done: set[str] = set()
        order: list[str] = []
        while remaining:
            ready = [
                n for n in remaining
                if all(d in done for d in self._deps[n])
            ]
            if not ready:
                raise StageCycleError(
                    f"dependency cycle among stages {sorted(remaining)}"
                )
            for n in ready:
                order.append(n)
                done.add(n)
                remaining.remove(n)
        return order

    def __len__(self) -> int:
        return len(self._stages)

    def order(self) -> list[str]:
        """Stage names in (deterministic) topological order."""
        return list(self._order)

    def deps(self, name: str) -> tuple[str, ...]:
        """The in-graph dependencies of a stage."""
        return self._deps[name]

    def run(
        self,
        jobs: int = 1,
        run_stage: Callable[[Stage], None] | None = None,
    ) -> int:
        """Execute every stage, respecting dependencies.

        ``run_stage(stage)`` wraps each execution (defaults to calling
        ``stage.fn()``) — the pipeline uses it to add tracer spans and
        timing around the raw stage body.  Returns the maximum number of
        stages observed running concurrently (1 for a sequential run).

        With ``jobs>1`` the first stage exception stops further
        submissions; already-running stages drain, then the exception is
        re-raised.
        """
        call = run_stage or (lambda stage: stage.fn())
        if not self._stages:
            return 0
        if jobs <= 1 or len(self._stages) == 1:
            for name in self._order:
                call(self._stages[name])
            return 1

        lock = threading.Lock()
        active = 0
        max_active = 0

        def tracked(stage: Stage) -> None:
            nonlocal active, max_active
            with lock:
                active += 1
                max_active = max(max_active, active)
            try:
                call(stage)
            finally:
                with lock:
                    active -= 1

        done: set[str] = set()
        submitted: set[str] = set()
        futures: dict = {}
        error: BaseException | None = None
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="pipeline"
        ) as pool:
            def submit_ready() -> None:
                for name in self._order:
                    if name in submitted:
                        continue
                    if all(d in done for d in self._deps[name]):
                        futures[pool.submit(tracked, self._stages[name])] = name
                        submitted.add(name)

            submit_ready()
            while futures:
                finished, _ = wait(futures, return_when=FIRST_COMPLETED)
                for fut in finished:
                    name = futures.pop(fut)
                    exc = fut.exception()
                    if exc is not None and error is None:
                        error = exc
                    done.add(name)
                if error is None:
                    submit_ready()
        if error is not None:
            raise error
        return max_active
