"""Exception hierarchy for the table discovery library."""


class DiscoveryError(Exception):
    """Base class for all library errors."""


class SchemaError(DiscoveryError):
    """A table or query violates structural expectations (ragged rows, ...)."""


class LakeError(DiscoveryError):
    """Data lake catalog errors (duplicate table names, missing tables)."""


class IndexError_(DiscoveryError):
    """An index is queried before being built or with incompatible input."""


class ConfigError(DiscoveryError):
    """Invalid configuration values."""


class SnapshotError(DiscoveryError):
    """An index snapshot is missing, corrupt, or does not match the current
    lake / configuration (stale snapshots are refused, never served)."""


class CsvFormatError(DiscoveryError):
    """Malformed CSV input."""
