"""Staged offline pipeline runner with progress reporting.

A thin orchestration layer over ``DiscoverySystem.build()`` for scripted /
CLI use: runs stages one at a time, reports per-stage timings, and can skip
stages by name (useful on very large lakes).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.core.config import DiscoveryConfig
from repro.core.system import STAGES, DiscoverySystem
from repro.datalake.lake import DataLake
from repro.datalake.ontology import Ontology

__all__ = ["STAGES", "pipeline_report", "run_pipeline"]


def run_pipeline(
    lake: DataLake,
    config: DiscoveryConfig | None = None,
    ontology: Ontology | None = None,
    skip: set[str] | None = None,
    jobs: int | None = None,
    progress: Callable[[str, float], None] | None = None,
) -> DiscoverySystem:
    """Build a DiscoverySystem, reporting each stage's duration.

    ``skip`` disables stages by name (from STAGES) — every stage,
    including the index stages; ``jobs`` overrides
    ``config.build_jobs``; ``progress(stage, seconds)`` is called after
    each stage completes.  The caller's ``config`` is never mutated: the
    pipeline works on a copy.
    """
    # Copy before touching enable_* flags — mutating the caller's config
    # object would leak this run's skips into unrelated systems.
    config = replace(config) if config is not None else DiscoveryConfig()
    skip = set(skip or ())
    unknown = skip - set(STAGES)
    if unknown:
        raise ValueError(f"unknown stages to skip: {sorted(unknown)}")
    if "embeddings" in skip:
        config.enable_embeddings = False
    if "domains" in skip:
        config.enable_domains = False
    if "annotation" in skip:
        config.enable_annotation = False

    system = DiscoverySystem(lake, config, ontology)
    system.build(jobs=jobs, skip=skip)
    if progress is not None:
        for stage, seconds in system.stats.stage_seconds.items():
            progress(stage, seconds)
    return system


def pipeline_report(system: DiscoverySystem) -> str:
    """Human-readable pipeline summary."""
    lines = [
        f"lake: {system.stats.tables} tables, {system.stats.columns} columns",
        f"vocabulary: {system.stats.vocabulary} values",
    ]
    if system.stats.domains_found:
        lines.append(f"domains discovered: {system.stats.domains_found}")
    for stage, seconds in system.stats.stage_seconds.items():
        lines.append(f"  {stage:<18} {seconds * 1000:8.1f} ms")
    return "\n".join(lines)
