"""Staged offline pipeline runner with progress reporting.

A thin orchestration layer over ``DiscoverySystem.build()`` for scripted /
CLI use: runs stages one at a time, reports per-stage timings, and can skip
stages by name (useful on very large lakes).
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.lake import DataLake
from repro.datalake.ontology import Ontology

STAGES = (
    "embeddings",
    "domains",
    "annotation",
    "keyword_index",
    "join_index",
    "union_index",
    "correlation_index",
    "mate_index",
    "navigation",
)


def run_pipeline(
    lake: DataLake,
    config: DiscoveryConfig | None = None,
    ontology: Ontology | None = None,
    skip: set[str] | None = None,
    progress: Callable[[str, float], None] | None = None,
) -> DiscoverySystem:
    """Build a DiscoverySystem, reporting each stage's duration.

    ``skip`` disables stages by name (from STAGES); ``progress(stage,
    seconds)`` is called after each stage completes.
    """
    config = config or DiscoveryConfig()
    skip = skip or set()
    unknown = skip - set(STAGES)
    if unknown:
        raise ValueError(f"unknown stages to skip: {sorted(unknown)}")
    if "embeddings" in skip:
        config.enable_embeddings = False
    if "domains" in skip:
        config.enable_domains = False
    if "annotation" in skip:
        config.enable_annotation = False

    system = DiscoverySystem(lake, config, ontology)
    system.build()
    if progress is not None:
        for stage, seconds in system.stats.stage_seconds.items():
            progress(stage, seconds)
    return system


def pipeline_report(system: DiscoverySystem) -> str:
    """Human-readable pipeline summary."""
    lines = [
        f"lake: {system.stats.tables} tables, {system.stats.columns} columns",
        f"vocabulary: {system.stats.vocabulary} values",
    ]
    if system.stats.domains_found:
        lines.append(f"domains discovered: {system.stats.domains_found}")
    for stage, seconds in system.stats.stage_seconds.items():
        lines.append(f"  {stage:<18} {seconds * 1000:8.1f} ms")
    return "\n".join(lines)
