"""Configuration for the end-to-end discovery system."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigError
from repro.obs.health import DEFAULT_OBJECTIVES, SloObjective


@dataclass
class DiscoveryConfig:
    """Knobs for the offline pipeline and online engines of Figure 1."""

    # sketches / indices
    num_perm: int = 128
    num_partitions: int = 8
    hnsw_m: int = 8
    ef_search: int = 48
    qcr_sketch_size: int = 256

    # embeddings
    embedding_dim: int = 48
    embedding_min_count: int = 2
    context_weight: float = 0.3

    # search behaviour
    containment_threshold: float = 0.5
    union_measure: str = "ensemble"
    union_index: str = "hnsw"

    # navigation
    org_branching: int = 4
    org_max_leaf: int = 4

    # pipeline stages (all on by default; understanding stages can be
    # disabled for speed on large lakes)
    enable_embeddings: bool = True
    enable_domains: bool = False
    enable_annotation: bool = True

    # offline build parallelism: worker threads for the stage DAG
    # (1 = the legacy sequential build; results are identical either way)
    build_jobs: int = 1

    # production health: head-based trace sampling (1.0 = keep every span
    # tree) with an always-keep slow-query threshold, and declarative
    # per-engine service-level objectives evaluated over the query log
    trace_sample_rate: float = 1.0
    slow_query_ms: float = 250.0
    slos: tuple[SloObjective, ...] = DEFAULT_OBJECTIVES

    seed: int = 0

    def validate(self) -> "DiscoveryConfig":
        if self.num_perm < 8:
            raise ConfigError("num_perm must be >= 8")
        for name in ("embedding_dim", "hnsw_m", "ef_search", "qcr_sketch_size"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if not 0 < self.containment_threshold <= 1:
            raise ConfigError("containment_threshold must be in (0, 1]")
        if self.union_measure not in ("set", "sem", "nl", "ensemble"):
            raise ConfigError(f"unknown union_measure {self.union_measure!r}")
        if self.union_index not in ("linear", "lsh", "hnsw"):
            raise ConfigError(f"unknown union_index {self.union_index!r}")
        if not 0 <= self.context_weight < 1:
            raise ConfigError("context_weight must be in [0, 1)")
        if self.build_jobs < 1:
            raise ConfigError(
                f"build_jobs must be >= 1, got {self.build_jobs}"
            )
        if not 0 <= self.trace_sample_rate <= 1:
            raise ConfigError("trace_sample_rate must be in [0, 1]")
        if self.slow_query_ms < 0:
            raise ConfigError("slow_query_ms must be >= 0")
        for objective in self.slos:
            try:
                objective.validate()
            except ValueError as exc:
                raise ConfigError(str(exc)) from exc
        if self.slos:
            # Lazy import: the engine registry imports this module.
            from repro.core.engine import known_query_labels

            labels = known_query_labels()
            for objective in self.slos:
                if objective.engine != "*" and objective.engine not in labels:
                    raise ConfigError(
                        f"SLO references unknown engine "
                        f"{objective.engine!r}; known engine labels: "
                        f"{sorted(labels)} (or '*' for all)"
                    )
        return self


@dataclass
class PipelineStats:
    """Timings and counters reported by the offline pipeline."""

    stage_seconds: dict[str, float] = field(default_factory=dict)
    tables: int = 0
    columns: int = 0
    vocabulary: int = 0
    domains_found: int = 0
