"""Data lake organization for navigation (Nargesian et al., SIGMOD'20).

Builds a hierarchical organization (a DAG of topic nodes over tables) so a
user can *navigate* to a table of interest instead of searching.  The
navigation model: at each node the user follows the child most similar to
their intent; the organization is good if relevant tables are reached with
high probability / few steps.  We build the hierarchy by recursive k-means
style bisection of table embedding vectors and evaluate with the expected
navigation-cost model from the paper (E11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class OrgNode:
    """A node in the organization DAG."""

    node_id: int
    tables: list[str] = field(default_factory=list)  # leaves under this node
    children: list["OrgNode"] = field(default_factory=list)
    centroid: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return not self.children


class Organization:
    """A navigation hierarchy over tables with vector representations."""

    def __init__(self, root: OrgNode):
        self.root = root

    @classmethod
    def build(
        cls,
        vectors: dict[str, np.ndarray],
        branching: int = 4,
        max_leaf_size: int = 4,
        seed: int = 0,
    ) -> "Organization":
        """Recursive k-means bisection into a ``branching``-ary hierarchy."""
        names = sorted(vectors)
        counter = [0]

        def make_node(members: list[str]) -> OrgNode:
            node = OrgNode(counter[0], tables=list(members))
            counter[0] += 1
            mat = np.vstack([vectors[m] for m in members])
            node.centroid = _unit(mat.mean(axis=0))
            if len(members) > max_leaf_size:
                groups = _kmeans_split(
                    members, vectors, min(branching, len(members)), seed + node.node_id
                )
                if len(groups) > 1:
                    node.children = [make_node(g) for g in groups]
            return node

        return cls(make_node(names))

    # -- navigation model -------------------------------------------------------------

    def navigate(
        self, intent: np.ndarray, max_steps: int = 64
    ) -> tuple[list[int], list[str]]:
        """Greedy navigation: follow the child whose centroid best matches
        the intent vector.  Returns (node path, tables at the final node)."""
        intent = _unit(intent)
        node = self.root
        path = [node.node_id]
        steps = 0
        while not node.is_leaf and steps < max_steps:
            node = max(
                node.children,
                key=lambda c: (float(np.dot(intent, c.centroid)), -c.node_id),
            )
            path.append(node.node_id)
            steps += 1
        return path, list(node.tables)

    def navigation_success(
        self, intent: np.ndarray, target: str
    ) -> tuple[bool, int]:
        """Did greedy navigation reach the target, and in how many steps?"""
        path, tables = self.navigate(intent)
        return target in tables, len(path) - 1

    def expected_cost(
        self,
        probes: list[tuple[np.ndarray, str]],
        miss_penalty: int | None = None,
    ) -> float:
        """Mean navigation cost over (intent, target) probes.

        Cost of a hit = steps taken + size of the final leaf (the user scans
        it); a miss costs ``miss_penalty`` (default: total table count, i.e.
        falling back to the flat list)."""
        total_tables = len(self.root.tables)
        miss = miss_penalty if miss_penalty is not None else total_tables
        costs = []
        for intent, target in probes:
            path, tables = self.navigate(intent)
            if target in tables:
                costs.append(len(path) - 1 + len(tables))
            else:
                costs.append(miss)
        return float(np.mean(costs)) if costs else 0.0

    def num_nodes(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            n = stack.pop()
            count += 1
            stack.extend(n.children)
        return count

    def depth(self) -> int:
        def d(node: OrgNode) -> int:
            return 1 + max((d(c) for c in node.children), default=0)

        return d(self.root)


def flat_navigation_cost(n_tables: int) -> float:
    """Expected cost of scanning a flat list (the E11 baseline): on average
    the user inspects half the lake."""
    return n_tables / 2.0


def _unit(v: np.ndarray) -> np.ndarray:
    n = np.linalg.norm(v)
    return v / n if n > 0 else v


def _kmeans_split(
    members: list[str],
    vectors: dict[str, np.ndarray],
    k: int,
    seed: int,
    iters: int = 12,
) -> list[list[str]]:
    """Spherical k-means returning non-empty groups."""
    rng = np.random.default_rng(seed)
    mat = np.vstack([_unit(vectors[m]) for m in members])
    k = min(k, len(members))
    centers = mat[rng.choice(len(members), size=k, replace=False)]
    assign = np.zeros(len(members), dtype=int)
    for _ in range(iters):
        sims = mat @ centers.T
        new_assign = sims.argmax(axis=1)
        if np.array_equal(new_assign, assign):
            break
        assign = new_assign
        for c in range(k):
            mask = assign == c
            if mask.any():
                centers[c] = _unit(mat[mask].mean(axis=0))
    groups = [
        [members[i] for i in range(len(members)) if assign[i] == c]
        for c in range(k)
    ]
    groups = [g for g in groups if g]
    if len(groups) <= 1 or any(len(g) == len(members) for g in groups):
        # Degenerate clustering: fall back to a deterministic even split.
        mid = math.ceil(len(members) / 2)
        groups = [members[:mid], members[mid:]]
        groups = [g for g in groups if g]
    return groups
