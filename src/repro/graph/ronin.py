"""RONIN: online organization of search results (Ouellette et al., VLDB'21).

RONIN bridges query-driven discovery and navigation (survey §2.6/§3): after
a search returns a set of tables, it builds an organization over just that
result set, *online*, so the user can drill into the results hierarchically
instead of reading a flat ranked list.
"""

from __future__ import annotations

import numpy as np

from repro.graph.organize import Organization


class RoninExplorer:
    """Online hierarchical exploration over a search result set."""

    def __init__(
        self,
        vectors: dict[str, np.ndarray],
        branching: int = 3,
        max_leaf_size: int = 3,
    ):
        self.vectors = vectors
        self.branching = branching
        self.max_leaf_size = max_leaf_size

    def organize_results(self, result_tables: list[str]) -> Organization:
        """Build a navigation hierarchy over the given result tables."""
        subset = {
            t: self.vectors[t] for t in result_tables if t in self.vectors
        }
        if not subset:
            raise ValueError("no vectors available for the result set")
        return Organization.build(
            subset,
            branching=self.branching,
            max_leaf_size=self.max_leaf_size,
        )

    def drill_down(
        self, organization: Organization, intent: np.ndarray, steps: int = 1
    ) -> list[str]:
        """Follow the best-matching child ``steps`` times; return the tables
        visible at the reached node (RONIN's interactive operation)."""
        node = organization.root
        v = intent / (np.linalg.norm(intent) or 1.0)
        for _ in range(steps):
            if node.is_leaf:
                break
            node = max(
                node.children,
                key=lambda c: (float(np.dot(v, c.centroid)), -c.node_id),
            )
        return list(node.tables)
