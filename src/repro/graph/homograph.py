"""DomainNet: homograph detection via graph centrality (Leventidis et al.,
EDBT'21).

A homograph is one string denoting different real-world entities in
different contexts ('jaguar': animal vs. car) — poison for value-overlap
discovery.  DomainNet builds the bipartite value-column graph of the lake
and observes that homographs are *bridges* between otherwise disconnected
domain regions, so they rank high on betweenness centrality.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.datalake.lake import DataLake


@dataclass(frozen=True)
class HomographScore:
    value: str
    score: float

    def __lt__(self, other: "HomographScore") -> bool:
        return (-self.score, self.value) < (-other.score, other.value)


class HomographDetector:
    """Betweenness-centrality homograph scoring on the value-column graph."""

    def __init__(self, max_column_values: int = 500, approx_samples: int = 200):
        self.max_column_values = max_column_values
        self.approx_samples = approx_samples

    def build_graph(self, lake: DataLake) -> nx.Graph:
        """Bipartite graph: value nodes <-> the columns containing them."""
        g = nx.Graph()
        for ref, col in lake.iter_text_columns():
            cnode = ("col", str(ref))
            for v in sorted(col.value_set())[: self.max_column_values]:
                g.add_edge(("val", v), cnode)
        return g

    def score_values(self, lake: DataLake) -> list[HomographScore]:
        """All values ranked by (approximate) betweenness centrality."""
        g = self.build_graph(lake)
        n = g.number_of_nodes()
        if n == 0:
            return []
        k = min(self.approx_samples, n)
        centrality = nx.betweenness_centrality(g, k=k, seed=7)
        out = [
            HomographScore(node[1], float(c))
            for node, c in centrality.items()
            if node[0] == "val"
        ]
        return sorted(out)

    def top_homographs(self, lake: DataLake, k: int = 20) -> list[HomographScore]:
        return self.score_values(lake)[:k]
