"""Navigation support and lake-as-graph analyses (survey §2.6/§3)."""

from repro.graph.aurum import (
    AurumConfig,
    EnterpriseKnowledgeGraph,
    EDGE_CONTENT,
    EDGE_PKFK,
    EDGE_SEMANTIC,
    EDGE_SCHEMA,
)
from repro.graph.homograph import HomographDetector, HomographScore
from repro.graph.organize import (
    Organization,
    OrgNode,
    flat_navigation_cost,
)
from repro.graph.ronin import RoninExplorer

__all__ = [
    "AurumConfig",
    "EDGE_CONTENT",
    "EDGE_PKFK",
    "EDGE_SEMANTIC",
    "EDGE_SCHEMA",
    "EnterpriseKnowledgeGraph",
    "HomographDetector",
    "HomographScore",
    "OrgNode",
    "Organization",
    "RoninExplorer",
    "flat_navigation_cost",
]
