"""Aurum-style Enterprise Knowledge Graph (Fernandez et al., ICDE'18).

Aurum models a lake as a graph whose nodes are columns and whose edges
capture relationships discovered from profiles: content similarity
(MinHash), schema/header similarity, and inclusion-dependency (PK-FK)
candidates.  Discovery queries become graph traversals: neighbours of a
column, paths between tables, and "seeping semantics" relatedness.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.datalake.lake import DataLake
from repro.datalake.table import ColumnRef, tokenize
from repro.sketch.minhash import MinHash
from repro.sketch.lsh import MinHashLSH

EDGE_CONTENT = "content"
EDGE_SCHEMA = "schema"
EDGE_PKFK = "pkfk"
EDGE_SEMANTIC = "semantic"


@dataclass
class AurumConfig:
    num_perm: int = 128
    # The EKG is a high-recall linkage graph: a low content threshold keeps
    # partially-overlapping columns connected (queries verify weights).
    content_threshold: float = 0.15
    schema_threshold: float = 0.5
    pkfk_containment: float = 0.85
    min_column_size: int = 2


class EnterpriseKnowledgeGraph:
    """Column-level knowledge graph over a data lake.

    Passing an ``EmbeddingSpace`` adds "seeping semantics" edges (Fernandez
    et al., ICDE'18b): columns whose value embeddings are close get linked
    even when their raw values never overlap.
    """

    def __init__(
        self,
        lake: DataLake,
        config: AurumConfig | None = None,
        space=None,
        semantic_threshold: float = 0.7,
    ):
        self.lake = lake
        self.config = config or AurumConfig()
        self.space = space
        self.semantic_threshold = semantic_threshold
        self.graph = nx.Graph()
        self._built = False

    def build(self) -> "EnterpriseKnowledgeGraph":
        cfg = self.config
        cols = []
        for ref, col in self.lake.iter_text_columns():
            values = col.value_set()
            if len(values) < cfg.min_column_size:
                continue
            mh = MinHash.from_values(values, num_perm=cfg.num_perm)
            cols.append((ref, col, values, mh))
            self.graph.add_node(ref, size=len(values), name=col.name)

        # Content edges via LSH (avoids all-pairs).
        lsh = MinHashLSH(threshold=cfg.content_threshold, num_perm=cfg.num_perm)
        for ref, _, _, mh in cols:
            lsh.insert(ref, mh)
        by_ref = {ref: (col, values, mh) for ref, col, values, mh in cols}
        for ref, _, values, mh in cols:
            for other, j in lsh.query_verified(mh):
                if other == ref or self.graph.has_edge(ref, other):
                    continue
                self.graph.add_edge(ref, other, kind=EDGE_CONTENT, weight=j)
                # PK-FK candidate: near-total containment one way with a
                # cardinality gap.
                o_values = by_ref[other][1]
                small, large = (
                    (values, o_values)
                    if len(values) <= len(o_values)
                    else (o_values, values)
                )
                if small and len(small & large) / len(small) >= cfg.pkfk_containment:
                    if len(large) >= 2 * len(small):
                        self.graph[ref][other]["pkfk"] = True

        # Seeping-semantics edges: embedding proximity links columns whose
        # values never overlap syntactically.
        if self.space is not None:
            import numpy as np

            embedded = [
                (ref, self.space.embed_set(values))
                for ref, _, values, _ in cols
            ]
            embedded = [
                (ref, v) for ref, v in embedded if np.linalg.norm(v) > 0
            ]
            for i in range(len(embedded)):
                ra, va = embedded[i]
                for j in range(i + 1, len(embedded)):
                    rb, vb = embedded[j]
                    if self.graph.has_edge(ra, rb):
                        continue
                    sim = float(np.dot(va, vb))
                    if sim >= self.semantic_threshold:
                        self.graph.add_edge(
                            ra, rb, kind=EDGE_SEMANTIC, weight=sim
                        )

        # Schema edges: header token Jaccard.
        headers = [(ref, set(tokenize(col.name))) for ref, col, _, _ in cols]
        for i in range(len(headers)):
            for j in range(i + 1, len(headers)):
                ra, ta = headers[i]
                rb, tb = headers[j]
                if not ta or not tb:
                    continue
                sim = len(ta & tb) / len(ta | tb)
                if sim >= self.config.schema_threshold and not self.graph.has_edge(ra, rb):
                    self.graph.add_edge(ra, rb, kind=EDGE_SCHEMA, weight=sim)
        self._built = True
        return self

    # -- discovery queries -----------------------------------------------------------

    def neighbors(
        self, ref: ColumnRef, kind: str | None = None
    ) -> list[tuple[ColumnRef, float]]:
        """Directly related columns, optionally filtered by edge kind."""
        if ref not in self.graph:
            return []
        out = []
        for other in self.graph.neighbors(ref):
            data = self.graph[ref][other]
            if kind is None or data.get("kind") == kind:
                out.append((other, float(data.get("weight", 0.0))))
        out.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return out

    def pkfk_candidates(self) -> list[tuple[ColumnRef, ColumnRef]]:
        """All inclusion-dependency candidate pairs."""
        return [
            (a, b)
            for a, b, data in self.graph.edges(data=True)
            if data.get("pkfk")
        ]

    def table_path(self, src_table: str, dst_table: str) -> list[ColumnRef]:
        """A shortest column path connecting two tables ([] if none)."""
        sources = [n for n in self.graph if n.table == src_table]
        targets = {n for n in self.graph if n.table == dst_table}
        for s in sources:
            lengths = nx.single_source_shortest_path(self.graph, s)
            best = None
            for t in targets:
                if t in lengths and (best is None or len(lengths[t]) < len(best)):
                    best = lengths[t]
            if best:
                return best
        return []

    def related_tables(self, table: str, k: int = 10) -> list[tuple[str, float]]:
        """Tables ranked by total edge weight to the given table's columns."""
        weights: dict[str, float] = {}
        for n in self.graph:
            if n.table != table:
                continue
            for other in self.graph.neighbors(n):
                if other.table != table:
                    w = float(self.graph[n][other].get("weight", 0.0))
                    weights[other.table] = weights.get(other.table, 0.0) + w
        ranked = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]
