"""Table stitching and KB completion (Ling et al. IJCAI'13; Lehmberg & Bizer
VLDB'17, survey §2.7).

Web tables arrive as many small fragments of one logical relation with
*semantically equivalent but differently named* headers.  Stitching groups
fragments by schema fingerprint (SimHash over header tokens + value-type
signature), maps each header group to a canonical predicate, unions the
fragments, and extracts (subject, predicate, object) facts — boosting KB
completion because small fragments alone lack the support to trust a fact.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.datalake.lake import DataLake
from repro.datalake.table import Column, Table
from repro.sketch.simhash import simhash, simhash_similarity


@dataclass
class StitchedRelation:
    """A stitched union table plus its header mapping."""

    tables: list[str]
    #: canonical predicate -> the raw headers mapped onto it
    header_map: dict[str, list[str]] = field(default_factory=dict)
    union: Table | None = None


class TableStitcher:
    """Stitch fragments that share a logical schema."""

    def __init__(
        self,
        schema_similarity: float = 0.8,
        subject_column: int = 0,
        min_group: int = 2,
    ):
        self.schema_similarity = schema_similarity
        self.subject_column = subject_column
        self.min_group = min_group

    def _schema_fingerprint(self, table: Table) -> int:
        """SimHash over per-column value-shape tokens (headers are noisy, so
        the fingerprint relies on column *content* shape)."""
        tokens = []
        for col in table.columns:
            tokens.append(f"dtype:{col.dtype.name}")
            for v in sorted(col.value_set())[:10]:
                prefix = "".join("9" if c.isdigit() else "a" for c in v[:6])
                tokens.append(f"shape:{prefix}")
        return simhash(tokens)

    def group_fragments(self, lake: DataLake) -> list[list[str]]:
        """Cluster tables whose schema fingerprints are near-identical and
        whose column counts match."""
        items = [
            (t.name, t.num_cols, self._schema_fingerprint(t)) for t in lake
        ]
        groups: list[list[tuple[str, int, int]]] = []
        for item in items:
            placed = False
            for g in groups:
                rep = g[0]
                if item[1] == rep[1] and (
                    simhash_similarity(item[2], rep[2]) >= self.schema_similarity
                ):
                    g.append(item)
                    placed = True
                    break
            if not placed:
                groups.append([item])
        return [
            [name for name, _, _ in g] for g in groups if len(g) >= self.min_group
        ]

    def stitch_group(self, lake: DataLake, names: list[str]) -> StitchedRelation:
        """Union a group: align columns by position, canonicalize headers by
        majority token vote within each position."""
        tables = [lake.table(n) for n in names]
        n_cols = tables[0].num_cols
        header_votes: list[Counter[str]] = [Counter() for _ in range(n_cols)]
        raw_headers: list[set[str]] = [set() for _ in range(n_cols)]
        for t in tables:
            for j, h in enumerate(t.header[:n_cols]):
                raw_headers[j].add(h)
                header_votes[j][h] += 1
        canonical = []
        for j in range(n_cols):
            if header_votes[j]:
                # Majority vote over full raw headers; ties break
                # lexicographically for determinism.
                best = max(
                    header_votes[j].items(), key=lambda kv: (kv[1], kv[0])
                )
                canonical.append(best[0])
            else:
                canonical.append(f"col_{j}")
        columns = []
        for j in range(n_cols):
            values: list[str] = []
            for t in tables:
                values.extend(t.columns[j].values)
            columns.append(Column(canonical[j], values))
        union = Table("+".join(sorted(names))[:80], columns)
        header_map = {
            canonical[j]: sorted(raw_headers[j]) for j in range(n_cols)
        }
        return StitchedRelation(list(names), header_map, union)

    def stitch_lake(self, lake: DataLake) -> list[StitchedRelation]:
        return [
            self.stitch_group(lake, names) for names in self.group_fragments(lake)
        ]


def extract_facts(
    relation: StitchedRelation, subject_column: int = 0
) -> set[tuple[str, str, str]]:
    """(subject, predicate, object) triples from a stitched union table."""
    union = relation.union
    if union is None:
        return set()
    facts = set()
    subj = union.columns[subject_column]
    for j, col in enumerate(union.columns):
        if j == subject_column:
            continue
        for s, o in zip(subj.values, col.values):
            if s.strip() and o.strip():
                facts.add((s, col.name, o))
    return facts


def kb_completion_rate(
    extracted: set[tuple[str, str, str]],
    truth: set[tuple[str, str, str]],
    predicate_aliases: dict[str, str] | None = None,
) -> float:
    """Fraction of true facts recovered (predicates canonicalized first)."""
    if not truth:
        return 0.0
    aliases = predicate_aliases or {}
    canon = {(s, aliases.get(p, p), o) for s, p, o in extracted}
    truth_canon = {(s, aliases.get(p, p), o) for s, p, o in truth}
    return len(canon & truth_canon) / len(truth_canon)
