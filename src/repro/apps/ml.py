"""Minimal numpy learners used by the data-science application modules.

ARDA and training-set discovery need a downstream model to measure
augmentation benefit; these are deliberately small, deterministic
implementations (ridge regression, logistic regression, k-NN).
"""

from __future__ import annotations

import numpy as np


class RidgeRegression:
    """Closed-form ridge regression with intercept."""

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        mu_x = x.mean(axis=0)
        mu_y = y.mean()
        xc = x - mu_x
        yc = y - mu_y
        d = x.shape[1]
        a = xc.T @ xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(a, xc.T @ yc)
        self.intercept_ = float(mu_y - mu_x @ self.coef_)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(x, dtype=float) @ self.coef_ + self.intercept_

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """R^2 on the given data."""
        y = np.asarray(y, dtype=float)
        pred = self.predict(x)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0


class LogisticRegression:
    """Binary logistic regression, full-batch gradient descent."""

    def __init__(self, n_epochs: int = 300, lr: float = 0.3, l2: float = 1e-3):
        self.n_epochs = n_epochs
        self.lr = lr
        self.l2 = l2
        self.coef_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.hstack([np.asarray(x, dtype=float), np.ones((len(x), 1))])
        y = np.asarray(y, dtype=float)
        w = np.zeros(x.shape[1])
        n = len(x)
        for _ in range(self.n_epochs):
            p = 1.0 / (1.0 + np.exp(-(x @ w)))
            grad = x.T @ (p - y) / n + self.l2 * w
            w -= self.lr * grad
        self.coef_ = w
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        x = np.hstack([np.asarray(x, dtype=float), np.ones((len(x), 1))])
        return 1.0 / (1.0 + np.exp(-(x @ self.coef_)))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(int)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y)))


def train_test_split(
    x: np.ndarray, y: np.ndarray, test_fraction: float = 0.3, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic shuffled split."""
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(x))
    cut = int(len(x) * (1 - test_fraction))
    tr, te = idx[:cut], idx[cut:]
    return x[tr], x[te], y[tr], y[te]
