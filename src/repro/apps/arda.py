"""ARDA: automatic relational data augmentation for ML (Chepurko et al.,
VLDB'20).

Given a base table with a prediction target, ARDA discovers joinable tables
in the lake, joins their columns in as candidate features, and selects the
useful ones with *random-injection* feature selection: random noise columns
are injected, a model is fitted, and only candidate features whose
importance beats the noise quantile are kept.  E12 measures the downstream
R^2 of base vs. augmented vs. augmented+selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.ml import RidgeRegression, train_test_split
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.search.josie import JosieIndex


@dataclass
class AugmentationReport:
    """What augmentation did and how the model scored."""

    base_r2: float = 0.0
    augmented_r2: float = 0.0
    selected_r2: float = 0.0
    candidate_tables: list[str] = field(default_factory=list)
    selected_features: list[str] = field(default_factory=list)


class ArdaAugmenter:
    """Join-based feature augmentation with random-injection selection."""

    def __init__(
        self,
        lake: DataLake,
        min_key_containment: float = 0.5,
        n_noise_features: int = 8,
        noise_quantile: float = 1.0,
        alpha: float = 1.0,
        seed: int = 0,
    ):
        self.lake = lake
        self.min_key_containment = min_key_containment
        self.n_noise_features = n_noise_features
        self.noise_quantile = noise_quantile
        self.alpha = alpha
        self.seed = seed
        self._josie = JosieIndex()
        self._built = False

    def build(self) -> "ArdaAugmenter":
        """Index every text column for join discovery."""
        for ref, col in self.lake.iter_text_columns():
            values = col.value_set()
            if values:
                self._josie.insert(ref, values)
        self._built = True
        return self

    # -- join discovery -------------------------------------------------------------

    def discover_joins(
        self, base: Table, key_column: int, k: int = 20
    ) -> list[tuple[str, int, float]]:
        """Candidate (table, key column index, containment) joins."""
        if not self._built:
            raise RuntimeError("call build() before discover_joins")
        qvalues = base.columns[key_column].value_set()
        hits = self._josie.topk(qvalues, k + 5)
        out = []
        for ref, overlap in hits:
            if ref.table == base.name:
                continue
            containment = overlap / max(len(qvalues), 1)
            if containment >= self.min_key_containment:
                out.append((ref.table, ref.index, containment))
        return out[:k]

    # -- augmentation ------------------------------------------------------------------

    def _joined_feature(
        self, base: Table, key_column: int, cand: Table, cand_key: int, num_col: int
    ) -> np.ndarray:
        """Left-join a candidate numeric column onto the base keys (mean of
        duplicate keys; missing keys imputed with the column mean)."""
        cand_keys = cand.columns[cand_key].values
        cand_vals = cand.columns[num_col].numeric_values()
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for key, v in zip(cand_keys, cand_vals):
            key = key.strip().lower()
            if key and np.isfinite(v):
                sums[key] = sums.get(key, 0.0) + float(v)
                counts[key] = counts.get(key, 0) + 1
        means = {key: sums[key] / counts[key] for key in sums}
        overall = float(np.mean(list(means.values()))) if means else 0.0
        out = np.empty(base.num_rows)
        for i, key in enumerate(base.columns[key_column].values):
            out[i] = means.get(key.strip().lower(), overall)
        return out

    def augment(
        self,
        base: Table,
        key_column: int,
        target_column: int,
        feature_columns: list[int] | None = None,
        max_joins: int = 20,
    ) -> AugmentationReport:
        """Run the full ARDA loop and report base/augmented/selected R^2."""
        report = AugmentationReport()
        y = base.columns[target_column].numeric_values()
        base_feats: list[np.ndarray] = []
        base_names: list[str] = []
        feature_columns = feature_columns or [
            i
            for i, c in base.numeric_columns()
            if i not in (key_column, target_column)
        ]
        for i in feature_columns:
            base_feats.append(base.columns[i].numeric_values())
            base_names.append(f"base:{base.columns[i].name}")

        # Discover joins, pull in all numeric columns of the joined tables.
        joins = self.discover_joins(base, key_column, k=max_joins)
        report.candidate_tables = [t for t, _, _ in joins]
        cand_feats: list[np.ndarray] = []
        cand_names: list[str] = []
        for tname, ckey, _cont in joins:
            cand = self.lake.table(tname)
            for ni, ncol in cand.numeric_columns():
                cand_feats.append(
                    self._joined_feature(base, key_column, cand, ckey, ni)
                )
                cand_names.append(f"{tname}:{ncol.name}")

        mask = np.isfinite(y)
        y = y[mask]

        def fit_r2(features: list[np.ndarray]) -> float:
            if not features:
                return 0.0
            x = np.vstack(features).T[mask]
            x = np.nan_to_num(x)
            xtr, xte, ytr, yte = train_test_split(x, y, seed=self.seed)
            return RidgeRegression(self.alpha).fit(xtr, ytr).score(xte, yte)

        report.base_r2 = fit_r2(base_feats)
        report.augmented_r2 = fit_r2(base_feats + cand_feats)

        # Random-injection selection.
        selected = self.random_injection_select(
            base_feats + cand_feats, base_names + cand_names, y, mask
        )
        report.selected_features = selected
        keep = [
            f
            for f, name in zip(base_feats + cand_feats, base_names + cand_names)
            if name in set(selected)
        ]
        report.selected_r2 = fit_r2(keep or base_feats)
        return report

    def random_injection_select(
        self,
        features: list[np.ndarray],
        names: list[str],
        y: np.ndarray,
        mask: np.ndarray,
    ) -> list[str]:
        """Keep features whose |standardized coefficient| exceeds the chosen
        quantile of injected random features' importances."""
        if not features:
            return []
        rng = np.random.default_rng(self.seed)
        x = np.vstack(features).T[mask]
        x = np.nan_to_num(x)
        noise = rng.normal(size=(x.shape[0], self.n_noise_features))
        x_all = np.hstack([x, noise])
        # Standardize so coefficients are comparable importances.
        mu = x_all.mean(axis=0)
        sd = x_all.std(axis=0)
        sd[sd == 0] = 1.0
        xs = (x_all - mu) / sd
        model = RidgeRegression(self.alpha).fit(xs, y)
        importance = np.abs(model.coef_)
        real, injected = importance[: x.shape[1]], importance[x.shape[1]:]
        threshold = float(np.quantile(injected, self.noise_quantile))
        return [name for name, imp in zip(names, real) if imp > threshold]
