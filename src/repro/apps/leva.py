"""Leva: relational-embedding data augmentation (Zhao & Fernandez,
SIGMOD'22; survey §2.7).

Where ARDA joins explicit feature columns, Leva learns *representations* of
entities from the whole lake's relational structure and feeds them to the
downstream model.  The reproduction builds the standard tripartite lake
graph — entity values ↔ rows ↔ columns — embeds it with random-walk
co-occurrence + PPMI + SVD (the DeepWalk factorization equivalence), and
exposes entity vectors as ML features.
"""

from __future__ import annotations

import random
from collections import Counter
from math import log

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import svds

from repro.datalake.lake import DataLake


class LakeGraphEmbedding:
    """Random-walk embeddings of the lake's value/row/column graph."""

    def __init__(
        self,
        dim: int = 32,
        walk_length: int = 8,
        walks_per_node: int = 6,
        window: int = 3,
        seed: int = 0,
    ):
        self.dim = dim
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.seed = seed
        self._vectors: dict[str, np.ndarray] = {}

    # -- graph construction -----------------------------------------------------

    def _build_adjacency(self, lake: DataLake) -> dict[str, list[str]]:
        """Tripartite adjacency: value <-> row <-> column."""
        adj: dict[str, list[str]] = {}

        def link(a: str, b: str) -> None:
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, []).append(a)

        for table in lake:
            for ri in range(table.num_rows):
                row_node = f"row:{table.name}:{ri}"
                for ci, col in table.text_columns():
                    value = col.values[ri].strip().lower()
                    if not value:
                        continue
                    col_node = f"col:{table.name}:{ci}"
                    link(f"val:{value}", row_node)
                    link(row_node, col_node)
        return adj

    # -- training ------------------------------------------------------------------

    def fit(self, lake: DataLake) -> "LakeGraphEmbedding":
        """Run walks, count windowed co-occurrences, factorize PPMI."""
        rng = random.Random(self.seed)
        adj = self._build_adjacency(lake)
        nodes = sorted(adj)
        if len(nodes) < 4:
            return self
        index = {n: i for i, n in enumerate(nodes)}

        pair_counts: Counter[tuple[int, int]] = Counter()
        for start in nodes:
            for _ in range(self.walks_per_node):
                walk = [start]
                for _ in range(self.walk_length - 1):
                    walk.append(rng.choice(adj[walk[-1]]))
                ids = [index[n] for n in walk]
                for i in range(len(ids)):
                    for j in range(i + 1, min(i + 1 + self.window, len(ids))):
                        a, b = ids[i], ids[j]
                        if a != b:
                            pair_counts[(min(a, b), max(a, b))] += 1

        total = sum(pair_counts.values()) * 2.0
        marginal = np.zeros(len(nodes))
        for (a, b), c in pair_counts.items():
            marginal[a] += c
            marginal[b] += c
        rows, cols, data = [], [], []
        for (a, b), c in pair_counts.items():
            pmi = log((c * total) / (marginal[a] * marginal[b]))
            if pmi > 0:
                rows.extend((a, b))
                cols.extend((b, a))
                data.extend((pmi, pmi))
        if not data:
            return self
        mat = coo_matrix(
            (data, (rows, cols)), shape=(len(nodes), len(nodes))
        ).tocsr()
        k = min(self.dim, len(nodes) - 1)
        u, s, _ = svds(mat, k=k, random_state=self.seed)
        vectors = u * np.sqrt(np.maximum(s, 0.0))[None, :]
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        vectors = vectors / norms
        if vectors.shape[1] < self.dim:
            vectors = np.hstack(
                [vectors, np.zeros((len(nodes), self.dim - vectors.shape[1]))]
            )
        self._vectors = {n: vectors[i] for n, i in index.items()}
        return self

    # -- lookups -----------------------------------------------------------------------

    def entity_vector(self, value: str) -> np.ndarray:
        """Embedding of an entity value (zeros when unseen)."""
        return self._vectors.get(
            f"val:{str(value).strip().lower()}", np.zeros(self.dim)
        )

    def column_vector(self, table: str, column: int) -> np.ndarray:
        return self._vectors.get(f"col:{table}:{column}", np.zeros(self.dim))

    def featurize_entities(self, values: list[str]) -> np.ndarray:
        """(n, dim) feature matrix for a list of entity values."""
        return np.vstack([self.entity_vector(v) for v in values])
