"""Training set discovery and construction from data lakes (survey §2.7,
Leva-style inter-table representation reuse, Zhao & Fernandez SIGMOD'22).

Given a labelled seed table, discover lake tables unionable with it, union
their rows in as extra training examples (with label propagation through
the alignment), and measure the downstream classifier gain — the "training
set discovery" application the tutorial highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.ml import LogisticRegression, train_test_split
from repro.datalake.table import Table
from repro.search.union_tus import TableUnionSearch


@dataclass
class TrainsetReport:
    seed_accuracy: float = 0.0
    augmented_accuracy: float = 0.0
    tables_used: list[str] = field(default_factory=list)
    rows_added: int = 0


class TrainingSetBuilder:
    """Grow a labelled training set by unioning discovered tables."""

    def __init__(self, union_search: TableUnionSearch, min_score: float = 0.3):
        self.union_search = union_search
        self.min_score = min_score

    def discover(self, seed: Table, k: int = 10) -> list[str]:
        """Names of lake tables unionable with the seed table."""
        results = self.union_search.search(seed, k=k)
        return [r.table for r in results if r.score >= self.min_score]

    def union_rows(
        self, seed: Table, table_names: list[str]
    ) -> tuple[list[list[str]], list[str]]:
        """Rows from the discovered tables aligned to the seed's columns.

        Alignment comes from the union search's per-column scores; unmatched
        seed columns are filled with empty cells.
        """
        added_rows: list[list[str]] = []
        used: list[str] = []
        for name in table_names:
            results = self.union_search.search(seed, k=len(table_names) + 5)
            match = next((r for r in results if r.table == name), None)
            if match is None:
                continue
            cand = self.union_search.lake.table(name)
            col_map = {qi: cj for qi, cj, _ in match.alignment}
            for r in range(cand.num_rows):
                row = []
                for qi in range(seed.num_cols):
                    cj = col_map.get(qi)
                    row.append(cand.columns[cj].values[r] if cj is not None else "")
                added_rows.append(row)
            used.append(name)
        return added_rows, used

    def evaluate_gain(
        self,
        seed: Table,
        label_fn,
        featurize_fn,
        k: int = 10,
        seed_rng: int = 0,
    ) -> TrainsetReport:
        """Compare classifier accuracy trained on the seed rows alone vs.
        seed + discovered rows.

        ``label_fn(row) -> 0/1`` and ``featurize_fn(row) -> vector`` supply
        the task; held-out test rows always come from the seed table.
        """
        report = TrainsetReport()
        seed_rows = seed.rows()
        x = np.vstack([featurize_fn(r) for r in seed_rows])
        y = np.array([label_fn(r) for r in seed_rows], dtype=float)
        xtr, xte, ytr, yte = train_test_split(x, y, test_fraction=0.4, seed=seed_rng)
        report.seed_accuracy = (
            LogisticRegression().fit(xtr, ytr).accuracy(xte, yte)
        )
        names = self.discover(seed, k=k)
        extra_rows, used = self.union_rows(seed, names)
        report.tables_used = used
        report.rows_added = len(extra_rows)
        if extra_rows:
            xe = np.vstack([featurize_fn(r) for r in extra_rows])
            ye = np.array([label_fn(r) for r in extra_rows], dtype=float)
            xtr2 = np.vstack([xtr, xe])
            ytr2 = np.concatenate([ytr, ye])
            report.augmented_accuracy = (
                LogisticRegression().fit(xtr2, ytr2).accuracy(xte, yte)
            )
        else:
            report.augmented_accuracy = report.seed_accuracy
        return report
