"""Data science / application support (survey §2.7)."""

from repro.apps.arda import ArdaAugmenter, AugmentationReport
from repro.apps.leva import LakeGraphEmbedding
from repro.apps.ml import LogisticRegression, RidgeRegression, train_test_split
from repro.apps.stitching import (
    StitchedRelation,
    TableStitcher,
    extract_facts,
    kb_completion_rate,
)
from repro.apps.trainset import TrainingSetBuilder, TrainsetReport

__all__ = [
    "ArdaAugmenter",
    "AugmentationReport",
    "LakeGraphEmbedding",
    "LogisticRegression",
    "RidgeRegression",
    "StitchedRelation",
    "TableStitcher",
    "TrainingSetBuilder",
    "TrainsetReport",
    "extract_facts",
    "kb_completion_rate",
    "train_test_split",
]
