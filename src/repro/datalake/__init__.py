"""Data lake substrate: tables, typing, CSV IO, catalogs, ontology, corpora."""

from repro.datalake.csvio import read_table_csv, write_table_csv
from repro.datalake.lake import DataLake
from repro.datalake.ontology import Ontology, subsample_ontology
from repro.datalake.table import (
    Column,
    ColumnRef,
    Table,
    TableMetadata,
    is_null,
    normalize_cell,
    tokenize,
)
from repro.datalake.types import DataType, infer_type, parse_float

__all__ = [
    "Column",
    "ColumnRef",
    "DataLake",
    "DataType",
    "Ontology",
    "Table",
    "TableMetadata",
    "infer_type",
    "is_null",
    "normalize_cell",
    "parse_float",
    "read_table_csv",
    "subsample_ontology",
    "tokenize",
    "write_table_csv",
]
