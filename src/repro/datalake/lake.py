"""The DataLake catalog: the collection of tables every index and search
operates over (the green "Data Lake Management System" box in Figure 1)."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

from repro.core.errors import LakeError
from repro.datalake.csvio import read_table_csv
from repro.datalake.table import Column, ColumnRef, Table


class DataLake:
    """An in-memory catalog of named tables with column-level addressing."""

    def __init__(self, tables: list[Table] | None = None):
        self._tables: dict[str, Table] = {}
        for t in tables or []:
            self.add(t)

    # -- catalog management ----------------------------------------------------

    def add(self, table: Table) -> None:
        """Register a table; table names must be unique within the lake."""
        if table.name in self._tables:
            raise LakeError(f"duplicate table name {table.name!r}")
        self._tables[table.name] = table

    def remove(self, name: str) -> None:
        if name not in self._tables:
            raise LakeError(f"no table named {name!r}")
        del self._tables[name]

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise LakeError(f"no table named {name!r}") from None

    def table_names(self) -> list[str]:
        return list(self._tables)

    # -- column addressing -----------------------------------------------------

    def column(self, ref: ColumnRef) -> Column:
        """Resolve a ColumnRef to its Column."""
        table = self.table(ref.table)
        if not 0 <= ref.index < table.num_cols:
            raise LakeError(f"{ref} out of range for {table!r}")
        return table.columns[ref.index]

    def iter_columns(self) -> Iterator[tuple[ColumnRef, Column]]:
        """Iterate every (ref, column) pair in the lake."""
        for t in self._tables.values():
            for i, c in enumerate(t.columns):
                yield ColumnRef(t.name, i), c

    def iter_text_columns(self) -> Iterator[tuple[ColumnRef, Column]]:
        for ref, col in self.iter_columns():
            if not col.is_numeric:
                yield ref, col

    def iter_numeric_columns(self) -> Iterator[tuple[ColumnRef, Column]]:
        for ref, col in self.iter_columns():
            if col.is_numeric:
                yield ref, col

    # -- statistics --------------------------------------------------------------

    def stats(self) -> dict:
        """Summary statistics of the lake (sizes, column counts, cell count)."""
        n_cols = sum(t.num_cols for t in self)
        n_rows = sum(t.num_rows for t in self)
        n_cells = sum(t.num_rows * t.num_cols for t in self)
        return {
            "tables": len(self),
            "columns": n_cols,
            "rows": n_rows,
            "cells": n_cells,
        }

    # -- ingestion ---------------------------------------------------------------


    def save_to_directory(self, directory: str | os.PathLike) -> None:
        """Write every table as ``<name>.csv`` under a directory."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        from repro.datalake.csvio import write_table_csv

        for table in self:
            write_table_csv(table, path / f"{table.name}.csv")

    @classmethod
    def from_directory(cls, directory: str | os.PathLike) -> "DataLake":
        """Ingest every ``*.csv`` file under a directory (sorted, recursive)."""
        lake = cls()
        for path in sorted(Path(directory).rglob("*.csv")):
            lake.add(read_table_csv(path))
        return lake
