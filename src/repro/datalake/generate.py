"""Synthetic benchmark-corpus generators with ground truth.

The surveyed systems are evaluated on open-data corpora (TUS benchmark,
SANTOS benchmark, WebDataCommons) that we cannot ship.  These generators
build deterministic lakes exhibiting the same phenomena — Zipfian domain
cardinalities, partial value overlap, synonym noise, unreliable metadata,
homographs — together with *exact* ground truth, which the real corpora only
approximate through manual labelling.  Every generator takes a seed and is
fully reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.datalake.lake import DataLake
from repro.datalake.ontology import Ontology
from repro.datalake.table import Column, ColumnRef, Table, TableMetadata

# ---------------------------------------------------------------------------
# Domain pool: the vocabulary substrate shared by all corpora
# ---------------------------------------------------------------------------


@dataclass
class Domain:
    """A semantic domain: a named vocabulary of string values."""

    name: str
    values: list[str]
    concept: str  # ontology class name


class DomainPool:
    """A pool of semantic domains with Zipfian cardinalities.

    Domain ``i`` gets a vocabulary of size ``max(min_size, base / (i+1)**skew)``
    — the cardinality skew that motivates containment search over Jaccard
    (survey §2.4, LSH Ensemble).
    """

    def __init__(
        self,
        n_domains: int = 30,
        base_size: int = 2000,
        min_size: int = 30,
        skew: float = 1.0,
        seed: int = 0,
    ):
        self.rng = random.Random(seed)
        self.domains: list[Domain] = []
        for i in range(n_domains):
            size = max(min_size, int(base_size / (i + 1) ** skew))
            concept = f"concept_{i:03d}"
            values = [f"d{i:03d}_v{j:05d}" for j in range(size)]
            self.domains.append(Domain(f"domain_{i:03d}", values, concept))

    def __len__(self) -> int:
        return len(self.domains)

    def domain(self, i: int) -> Domain:
        return self.domains[i % len(self.domains)]

    def sample_values(
        self, domain_idx: int, n: int, rng: random.Random | None = None
    ) -> list[str]:
        """Sample ``n`` values (with replacement) from a domain."""
        rng = rng or self.rng
        vocab = self.domain(domain_idx).values
        return [rng.choice(vocab) for _ in range(n)]

    def sample_subset(
        self, domain_idx: int, n: int, rng: random.Random | None = None
    ) -> list[str]:
        """Sample ``n`` distinct values from a domain (clipped to vocab size)."""
        rng = rng or self.rng
        vocab = self.domain(domain_idx).values
        n = min(n, len(vocab))
        return rng.sample(vocab, n)

    def build_ontology(self, relations_per_pair: int = 1) -> Ontology:
        """Build the full-coverage ontology over this pool.

        Every domain becomes a leaf class under a shared root; consecutive
        domain pairs get a typed binary relation (used by SANTOS-style
        relationship matching).
        """
        onto = Ontology()
        onto.add_class("thing")
        for d in self.domains:
            onto.add_class(d.concept, parent="thing")
            for v in d.values:
                onto.add_value(v, d.concept)
        for i in range(len(self.domains) - 1):
            a = self.domains[i].concept
            b = self.domains[i + 1].concept
            for r in range(relations_per_pair):
                onto.add_relation(f"rel_{i:03d}_{r}", a, b)
        return onto


def _numeric_column(name: str, n: int, rng: random.Random) -> Column:
    return Column(name, [f"{rng.uniform(0, 1000):.2f}" for _ in range(n)])


def _pad_table(
    name: str,
    key_values: list[str],
    pool: DomainPool,
    rng: random.Random,
    extra_text_cols: int = 1,
    extra_num_cols: int = 1,
    key_name: str = "key",
    meta: TableMetadata | None = None,
) -> Table:
    """Wrap a key column with filler text/numeric columns into a table."""
    n = len(key_values)
    cols = [Column(key_name, key_values)]
    for j in range(extra_text_cols):
        dom = rng.randrange(len(pool))
        cols.append(Column(f"attr_{j}", pool.sample_values(dom, n, rng)))
    for j in range(extra_num_cols):
        cols.append(_numeric_column(f"num_{j}", n, rng))
    return Table(name, cols, meta)


# ---------------------------------------------------------------------------
# E2/E3: joinable table search corpus (containment-controlled)
# ---------------------------------------------------------------------------


@dataclass
class JoinQuery:
    """One joinable-search query with exact containment ground truth."""

    column: ColumnRef  # the query column (lives in the lake too)
    #: candidate column -> containment of query values in the candidate
    containments: dict[ColumnRef, float] = field(default_factory=dict)

    def relevant(self, threshold: float) -> set[ColumnRef]:
        return {
            ref
            for ref, c in self.containments.items()
            if c >= threshold and ref != self.column
        }


@dataclass
class JoinCorpus:
    lake: DataLake
    pool: DomainPool
    queries: list[JoinQuery]


def make_join_corpus(
    n_tables: int = 120,
    n_queries: int = 10,
    base_size: int = 1500,
    skew: float = 1.0,
    seed: int = 0,
) -> JoinCorpus:
    """Build a lake where candidate columns contain controlled fractions of
    each query column's values, under Zipfian cardinality skew.

    For each query we plant candidates at containment levels spread over
    [0.1, 1.0]; remaining tables draw from unrelated domains (near-zero
    containment).  Ground truth containment is computed exactly afterwards.
    """
    rng = random.Random(seed)
    pool = DomainPool(
        n_domains=max(10, n_tables // 4),
        base_size=base_size,
        skew=skew,
        seed=seed,
    )
    lake = DataLake()
    query_specs: list[tuple[str, list[str]]] = []

    # Query tables: one per query, drawn from the n_queries largest domains.
    for q in range(n_queries):
        values = pool.sample_subset(q, min(200, len(pool.domain(q).values)), rng)
        name = f"query_{q:03d}"
        lake.add(_pad_table(name, values, pool, rng, key_name=f"qkey_{q}"))
        query_specs.append((name, values))

    # Planted candidates: containment level l means the candidate includes
    # ~l of the query's values plus noise from another domain.
    levels = [0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0]
    tid = 0
    for q, (_, qvalues) in enumerate(query_specs):
        for li, level in enumerate(levels):
            take = max(1, int(level * len(qvalues)))
            overlap = rng.sample(qvalues, take)
            noise_dom = len(pool) - 1 - (tid % (len(pool) // 2))
            noise = pool.sample_subset(noise_dom, max(5, take // 2), rng)
            cand_values = overlap + [v for v in noise if v not in set(overlap)]
            rng.shuffle(cand_values)
            name = f"cand_{q:03d}_{li}"
            lake.add(_pad_table(name, cand_values, pool, rng, key_name="id"))
            tid += 1

    # Background tables from unrelated domains.
    while len(lake) < n_tables:
        dom = rng.randrange(n_queries, len(pool))
        values = pool.sample_subset(dom, rng.randint(20, 300), rng)
        lake.add(_pad_table(f"bg_{len(lake):04d}", values, pool, rng))

    # Exact ground truth: containment of query set in every text column.
    queries = []
    for q, (qname, qvalues) in enumerate(query_specs):
        qset = set(qvalues)
        query = JoinQuery(ColumnRef(qname, 0))
        for ref, col in lake.iter_text_columns():
            if ref.table == qname:
                continue
            inter = len(qset & col.value_set())
            if inter:
                query.containments[ref] = inter / len(qset)
        queries.append(query)
    return JoinCorpus(lake, pool, queries)


# ---------------------------------------------------------------------------
# E4/E6/E17: unionable table search corpus (TUS-style groups)
# ---------------------------------------------------------------------------


@dataclass
class UnionCorpus:
    lake: DataLake
    pool: DomainPool
    ontology: Ontology
    #: group id -> table names; tables in the same group are unionable
    groups: dict[int, list[str]]
    #: query table name -> set of unionable table names (ground truth)
    truth: dict[str, set[str]]


def make_union_corpus(
    n_groups: int = 12,
    tables_per_group: int = 8,
    cols_per_table: int = 4,
    rows_per_table: int = 60,
    value_overlap: float = 0.3,
    seed: int = 0,
) -> UnionCorpus:
    """Build TUS-style unionable groups.

    Each group fixes a tuple of domains (one per column position); member
    tables draw *mostly disjoint* slices of those domains (controlled by
    ``value_overlap``), so pure set-overlap ranks intra-group tables only
    moderately while semantic measures (ontology / embeddings) recover them.
    Column orders are shuffled per table, headers are noisy.
    """
    rng = random.Random(seed)
    pool = DomainPool(
        n_domains=max(n_groups * cols_per_table, 20),
        base_size=rows_per_table * tables_per_group * 2,
        min_size=rows_per_table * 2,
        skew=0.4,
        seed=seed,
    )
    onto = pool.build_ontology()
    lake = DataLake()
    groups: dict[int, list[str]] = {}

    for g in range(n_groups):
        domains = [g * cols_per_table + c for c in range(cols_per_table)]
        # Partition each domain's vocabulary into per-table slices + a shared
        # slice realizing the desired overlap.
        members = []
        for m in range(tables_per_group):
            cols = []
            order = list(range(cols_per_table))
            rng.shuffle(order)
            for c in order:
                dom = domains[c]
                vocab = pool.domain(dom).values
                shared_n = int(value_overlap * rows_per_table)
                shared = vocab[:shared_n]
                lo = shared_n + m * rows_per_table
                own = vocab[lo : lo + rows_per_table - shared_n]
                vals = (shared + own)[:rows_per_table]
                while len(vals) < rows_per_table:
                    vals.append(rng.choice(vocab))
                rng.shuffle(vals)
                header = f"{pool.domain(dom).concept}_{rng.randrange(100)}"
                cols.append(Column(header, vals))
            name = f"union_g{g:02d}_t{m:02d}"
            meta = TableMetadata(title=f"group {g} table {m}")
            lake.add(Table(name, cols, meta))
            members.append(name)
        groups[g] = members

    truth = {
        name: set(members) - {name}
        for members in groups.values()
        for name in members
    }
    return UnionCorpus(lake, pool, onto, groups, truth)


# ---------------------------------------------------------------------------
# E5: SANTOS-style relationship corpus
# ---------------------------------------------------------------------------


@dataclass
class RelationshipCorpus:
    lake: DataLake
    pool: DomainPool
    ontology: Ontology
    #: query table -> truly unionable tables (same column *relationships*)
    truth: dict[str, set[str]]
    #: query table -> confounders (same column domains, different pairing)
    confounders: dict[str, set[str]]


def make_relationship_corpus(
    n_queries: int = 6,
    positives_per_query: int = 6,
    confounders_per_query: int = 6,
    rows_per_table: int = 50,
    seed: int = 0,
) -> RelationshipCorpus:
    """Corpus where *column relationships*, not column domains, define
    unionability (the SANTOS insight).

    A query table pairs domains (A, B) row-wise through KB facts.  Positive
    tables pair the same (A, B) relationship; confounders contain columns
    from domains A and B but pair A with values of B drawn independently
    (breaking the fact-level relationship), so column-only matching cannot
    separate them while relationship-aware matching can.
    """
    rng = random.Random(seed)
    n_dom_pairs = n_queries
    pool = DomainPool(
        n_domains=2 * n_dom_pairs + 4,
        base_size=rows_per_table * 20,
        min_size=rows_per_table * 10,
        skew=0.2,
        seed=seed,
    )
    onto = pool.build_ontology()

    # Instance-level facts: value i of domain 2q maps to value i of domain
    # 2q+1 (a functional relationship, e.g. city -> country).
    fact_maps: list[dict[str, str]] = []
    for q in range(n_dom_pairs):
        a_vals = pool.domain(2 * q).values
        b_vals = pool.domain(2 * q + 1).values
        rel = f"factrel_{q:03d}"
        onto.add_relation(rel, pool.domain(2 * q).concept, pool.domain(2 * q + 1).concept)
        fmap = {}
        for i, av in enumerate(a_vals):
            bv = b_vals[i % len(b_vals)]
            fmap[av] = bv
            onto.add_fact(av, bv, rel)
        fact_maps.append(fmap)

    lake = DataLake()
    truth: dict[str, set[str]] = {}
    confounders: dict[str, set[str]] = {}

    def relationship_table(name: str, q: int, respect_facts: bool) -> Table:
        a_vals = pool.sample_subset(2 * q, rows_per_table, rng)
        if respect_facts:
            b_vals = [fact_maps[q][a] for a in a_vals]
        else:
            b_vals = pool.sample_values(2 * q + 1, rows_per_table, rng)
            # Ensure the pairing really is broken for most rows.
            b_vals = [
                bv if bv != fact_maps[q][a] else pool.domain(2 * q + 1).values[-1]
                for a, bv in zip(a_vals, b_vals)
            ]
        cols = [
            Column(f"a_{rng.randrange(100)}", a_vals),
            Column(f"b_{rng.randrange(100)}", b_vals),
            _numeric_column("metric", rows_per_table, rng),
        ]
        return Table(name, cols)

    for q in range(n_queries):
        qname = f"relq_{q:02d}"
        lake.add(relationship_table(qname, q, respect_facts=True))
        pos, neg = set(), set()
        for p in range(positives_per_query):
            name = f"relpos_{q:02d}_{p:02d}"
            lake.add(relationship_table(name, q, respect_facts=True))
            pos.add(name)
        for c in range(confounders_per_query):
            name = f"relneg_{q:02d}_{c:02d}"
            lake.add(relationship_table(name, q, respect_facts=False))
            neg.add(name)
        truth[qname] = pos
        confounders[qname] = neg

    return RelationshipCorpus(lake, pool, onto, truth, confounders)


# ---------------------------------------------------------------------------
# E9: correlated-join corpus (QCR)
# ---------------------------------------------------------------------------


@dataclass
class CorrelationCorpus:
    lake: DataLake
    query_table: str
    query_key: int
    query_value: int
    #: candidate table name -> true post-join |Pearson r| with the query column
    truth: dict[str, float]


def make_correlation_corpus(
    n_candidates: int = 40,
    n_keys: int = 400,
    seed: int = 0,
) -> CorrelationCorpus:
    """Query table (key, y); candidates (key subset, x) where x is correlated
    with y at planted levels r in {0, .2, .., 1.0} over the joined rows."""
    rng = random.Random(seed)
    keys = [f"k{j:05d}" for j in range(n_keys)]
    y = {k: rng.gauss(0, 1) for k in keys}
    lake = DataLake()
    qname = "corr_query"
    lake.add(
        Table(
            qname,
            [
                Column("key", keys),
                Column("y", [f"{y[k]:.6f}" for k in keys]),
            ],
        )
    )
    truth: dict[str, float] = {}
    levels = [0.0, 0.2, 0.4, 0.6, 0.8, 0.95]
    for i in range(n_candidates):
        r = levels[i % len(levels)]
        sub = rng.sample(keys, rng.randint(n_keys // 2, n_keys))
        xs = []
        for k in sub:
            noise = rng.gauss(0, 1)
            x = r * y[k] + math.sqrt(max(0.0, 1 - r * r)) * noise
            xs.append(x)
        name = f"corr_cand_{i:03d}"
        lake.add(
            Table(
                name,
                [
                    Column("key", list(sub)),
                    Column("x", [f"{v:.6f}" for v in xs]),
                ],
            )
        )
        # Exact truth over the joined rows.
        n = len(sub)
        xv = xs
        yv = [y[k] for k in sub]
        mx = sum(xv) / n
        my = sum(yv) / n
        cov = sum((a - mx) * (b - my) for a, b in zip(xv, yv))
        vx = sum((a - mx) ** 2 for a in xv)
        vy = sum((b - my) ** 2 for b in yv)
        truth[name] = abs(cov / math.sqrt(vx * vy)) if vx > 0 and vy > 0 else 0.0
    return CorrelationCorpus(lake, qname, 0, 1, truth)


# ---------------------------------------------------------------------------
# E13: homograph corpus
# ---------------------------------------------------------------------------


@dataclass
class HomographCorpus:
    lake: DataLake
    homographs: set[str]  # values planted in two unrelated domains
    unambiguous: set[str]


def make_homograph_corpus(
    n_tables: int = 60,
    n_homographs: int = 15,
    rows_per_table: int = 40,
    seed: int = 0,
) -> HomographCorpus:
    """Lake where a few values appear across *unrelated* domains (homographs,
    e.g. 'jaguar' the animal vs. the car), à la DomainNet."""
    rng = random.Random(seed)
    pool = DomainPool(n_domains=12, base_size=120, min_size=60, skew=0.3, seed=seed)
    homographs = {f"homo_{h:03d}" for h in range(n_homographs)}
    lake = DataLake()
    tables_values: list[list[str]] = []
    table_domain: list[int] = []
    for t in range(n_tables):
        dom = t % len(pool)
        vals = pool.sample_subset(dom, rows_per_table, rng)
        tables_values.append(vals)
        table_domain.append(dom)
    # Plant each homograph into a FEW tables of two distinct domains: a
    # homograph is a *bridge*, not a hub — its degree stays ordinary while
    # its betweenness (the DomainNet signal) is high.
    for h in sorted(homographs):
        d1, d2 = rng.sample(range(len(pool)), 2)
        for dom in (d1, d2):
            hosts = [t for t in range(n_tables) if table_domain[t] == dom]
            for t in rng.sample(hosts, min(2, len(hosts))):
                tables_values[t][rng.randrange(rows_per_table)] = h
    for t in range(n_tables):
        lake.add(
            _pad_table(
                f"homo_t{t:03d}", tables_values[t], pool, rng, key_name="entity"
            )
        )
    unambiguous = set()
    for d in range(len(pool)):
        unambiguous.update(pool.domain(d).values[:20])
    return HomographCorpus(lake, homographs, unambiguous)


# ---------------------------------------------------------------------------
# E7: semantic-type corpus (Sherlock / Sato)
# ---------------------------------------------------------------------------

SEMANTIC_TYPES = [
    "email",
    "phone",
    "url",
    "date",
    "year",
    "price",
    "percentage",
    "zipcode",
    "city",
    "country",
    "person_name",
    "company",
    "gene",
    "color",
    "isbn",
    "coordinates",
    "temperature",
    "duration",
    "rating",
    "identifier",
]

_FIRST = ["alice", "bob", "carol", "david", "erin", "frank", "grace", "henry"]
_LAST = ["smith", "jones", "chen", "garcia", "patel", "kim", "mueller", "rossi"]
_CITY = ["springfield", "rivertown", "lakeside", "hillview", "oakdale", "mapleton"]
_COUNTRY = ["freedonia", "sylvania", "osterlich", "latveria", "genosha", "wakanda"]
_COMPANY_SFX = ["inc", "llc", "corp", "gmbh", "ltd"]
_COLOR = ["red", "blue", "green", "teal", "mauve", "ochre", "violet", "amber"]
_GENE = ["brca", "tp", "egfr", "kras", "myc", "pten"]
_TOPIC_HINTS = {
    # Sato-style context: types co-occur with topical sibling types.
    "email": "contact",
    "phone": "contact",
    "url": "contact",
    "person_name": "contact",
    "city": "geo",
    "country": "geo",
    "zipcode": "geo",
    "coordinates": "geo",
    "price": "commerce",
    "percentage": "commerce",
    "rating": "commerce",
    "company": "commerce",
    "date": "time",
    "year": "time",
    "duration": "time",
    "temperature": "science",
    "gene": "science",
    "isbn": "science",
    "color": "misc",
    "identifier": "misc",
}


# Cross-topic pairs that render identically when "ambiguous": per-column
# features cannot separate them, only table context can (the Sato effect).
AMBIGUOUS_RENDER = {
    "price": "decimal",
    "temperature": "decimal",
    "zipcode": "code5",
    "identifier": "code5",
    "rating": "smallint",
    "duration": "smallint",
}


def generate_typed_values(
    sem_type: str, n: int, rng: random.Random, ambiguous: bool = False
) -> list[str]:
    """Generate ``n`` realistic-looking cells of a semantic type.

    With ``ambiguous=True``, types in AMBIGUOUS_RENDER are rendered as bare
    numbers drawn from a shared distribution, so that the column alone does
    not identify the type.
    """
    if ambiguous and sem_type in AMBIGUOUS_RENDER:
        style = AMBIGUOUS_RENDER[sem_type]
        if style == "decimal":
            return [f"{rng.uniform(0, 100):.1f}" for _ in range(n)]
        if style == "code5":
            return [str(rng.randint(10000, 99999)) for _ in range(n)]
        return [str(rng.randint(1, 10)) for _ in range(n)]
    out = []
    for _ in range(n):
        if sem_type == "email":
            out.append(
                f"{rng.choice(_FIRST)}.{rng.choice(_LAST)}@{rng.choice(['mail', 'corp', 'uni'])}.com"
            )
        elif sem_type == "phone":
            out.append(
                f"({rng.randint(200, 999)}) {rng.randint(200, 999)}-{rng.randint(1000, 9999)}"
            )
        elif sem_type == "url":
            out.append(f"https://www.{rng.choice(_LAST)}{rng.randint(1, 99)}.org/page")
        elif sem_type == "date":
            out.append(
                f"{rng.randint(1990, 2023)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
            )
        elif sem_type == "year":
            out.append(str(rng.randint(1900, 2023)))
        elif sem_type == "price":
            out.append(f"${rng.uniform(1, 5000):.2f}")
        elif sem_type == "percentage":
            out.append(f"{rng.uniform(0, 100):.1f}%")
        elif sem_type == "zipcode":
            out.append(f"{rng.randint(10000, 99999)}")
        elif sem_type == "city":
            out.append(rng.choice(_CITY))
        elif sem_type == "country":
            out.append(rng.choice(_COUNTRY))
        elif sem_type == "person_name":
            out.append(f"{rng.choice(_FIRST)} {rng.choice(_LAST)}")
        elif sem_type == "company":
            out.append(f"{rng.choice(_LAST)} {rng.choice(_COMPANY_SFX)}")
        elif sem_type == "gene":
            out.append(f"{rng.choice(_GENE)}{rng.randint(1, 99)}")
        elif sem_type == "color":
            out.append(rng.choice(_COLOR))
        elif sem_type == "isbn":
            out.append(f"978-{rng.randint(0, 9)}-{rng.randint(10, 99)}-{rng.randint(100000, 999999)}-{rng.randint(0, 9)}")
        elif sem_type == "coordinates":
            out.append(f"{rng.uniform(-90, 90):.4f},{rng.uniform(-180, 180):.4f}")
        elif sem_type == "temperature":
            out.append(f"{rng.uniform(-30, 45):.1f}C")
        elif sem_type == "duration":
            out.append(f"{rng.randint(0, 9)}h{rng.randint(0, 59)}m")
        elif sem_type == "rating":
            out.append(f"{rng.randint(1, 5)}/5")
        elif sem_type == "identifier":
            out.append(f"id-{rng.getrandbits(32):08x}")
        else:
            raise ValueError(f"unknown semantic type {sem_type!r}")
    return out


@dataclass
class TypedCorpus:
    lake: DataLake
    #: column ref -> semantic type label
    labels: dict[ColumnRef, str]


def make_typed_corpus(
    n_tables: int = 80,
    cols_per_table: int = 5,
    rows_per_table: int = 40,
    ambiguity: float = 0.6,
    seed: int = 0,
) -> TypedCorpus:
    """Tables whose columns carry known semantic types; columns within a
    table are drawn from the same topic (so table context is informative,
    the Sato effect).  ``ambiguity`` is the probability that a type with an
    ambiguous rendering (see AMBIGUOUS_RENDER) is rendered as bare numbers —
    indistinguishable per-column from its cross-topic twin."""
    rng = random.Random(seed)
    topics: dict[str, list[str]] = {}
    for t, topic in _TOPIC_HINTS.items():
        topics.setdefault(topic, []).append(t)
    topic_names = sorted(topics)
    lake = DataLake()
    labels: dict[ColumnRef, str] = {}
    for t in range(n_tables):
        topic = topic_names[t % len(topic_names)]
        # Mostly same-topic columns with some cross-topic noise.
        cols = []
        for c in range(cols_per_table):
            if rng.random() < 0.9:
                sem = rng.choice(topics[topic])
            else:
                sem = rng.choice(SEMANTIC_TYPES)
            ambiguous = rng.random() < ambiguity
            values = generate_typed_values(sem, rows_per_table, rng, ambiguous)
            cols.append((sem, Column(f"col_{c}", values)))
        name = f"typed_{t:03d}"
        lake.add(Table(name, [c for _, c in cols]))
        for i, (sem, _) in enumerate(cols):
            labels[ColumnRef(name, i)] = sem
    return TypedCorpus(lake, labels)


# ---------------------------------------------------------------------------
# E15: keyword/metadata corpus
# ---------------------------------------------------------------------------


@dataclass
class KeywordCorpus:
    lake: DataLake
    #: query string -> relevant table names
    truth: dict[str, set[str]]


def make_keyword_corpus(
    n_topics: int = 8,
    tables_per_topic: int = 10,
    seed: int = 0,
) -> KeywordCorpus:
    """Tables with topical metadata using inconsistent vocabularies: each
    topic has several synonym phrasings, so naive exact matching misses
    relevant tables while BM25 over all metadata text recovers them."""
    rng = random.Random(seed)
    topics = {
        f"topic{t}": [f"topic{t}", f"syn{t}a", f"syn{t}b"] for t in range(n_topics)
    }
    pool = DomainPool(n_domains=n_topics + 2, base_size=300, seed=seed)
    lake = DataLake()
    truth: dict[str, set[str]] = {f"topic{t}": set() for t in range(n_topics)}
    for t in range(n_topics):
        names = topics[f"topic{t}"]
        for m in range(tables_per_topic):
            phrase = names[m % len(names)]
            # Vocabulary inconsistency: titles use whichever synonym the
            # publisher picked, while the long description sometimes names
            # the canonical series — exactly the messy metadata BM25-over-
            # everything exploits and exact title matching cannot.
            canonical_hint = f"({names[0]} series)" if m % 3 else ""
            meta = TableMetadata(
                title=f"{phrase} annual report {2000 + m}",
                description=(
                    f"records about {phrase} {canonical_hint} "
                    f"collected by agency {m}"
                ),
                tags=[phrase, "open-data"],
            )
            values = pool.sample_subset(t, 30, rng)
            name = f"kw_{t:02d}_{m:02d}"
            lake.add(_pad_table(name, values, pool, rng, meta=meta))
            truth[f"topic{t}"].add(name)
    return KeywordCorpus(lake, truth)


# ---------------------------------------------------------------------------
# E12: ML augmentation corpus (ARDA)
# ---------------------------------------------------------------------------


@dataclass
class MLCorpus:
    lake: DataLake
    base_table: str
    target_column: str
    key_column: str
    #: table names whose numeric column truly contributes to the target
    informative: set[str]
    noise: set[str]


def make_ml_corpus(
    n_rows: int = 300,
    n_informative: int = 4,
    n_noise: int = 8,
    noise_level: float = 0.3,
    seed: int = 0,
) -> MLCorpus:
    """Regression task whose signal lives in *other* joinable tables.

    The base table holds (key, weak_feature, target); the target is a linear
    function of hidden features stored in ``n_informative`` candidate tables
    (plus noise); ``n_noise`` candidates hold irrelevant numbers.  ARDA-style
    augmentation should recover the informative joins and reject the noise.
    """
    rng = random.Random(seed)
    keys = [f"e{j:05d}" for j in range(n_rows)]
    hidden = [[rng.gauss(0, 1) for _ in range(n_rows)] for _ in range(n_informative)]
    weights = [rng.uniform(0.5, 2.0) for _ in range(n_informative)]
    weak = [rng.gauss(0, 1) for _ in range(n_rows)]
    target = [
        0.3 * weak[i]
        + sum(w * hidden[f][i] for f, w in enumerate(weights))
        + rng.gauss(0, noise_level)
        for i in range(n_rows)
    ]
    lake = DataLake()
    base = Table(
        "ml_base",
        [
            Column("key", keys),
            Column("weak_feature", [f"{v:.6f}" for v in weak]),
            Column("target", [f"{v:.6f}" for v in target]),
        ],
    )
    lake.add(base)
    informative, noise = set(), set()
    for f in range(n_informative):
        name = f"ml_info_{f:02d}"
        keep = sorted(rng.sample(range(n_rows), int(0.9 * n_rows)))
        lake.add(
            Table(
                name,
                [
                    Column("key", [keys[i] for i in keep]),
                    Column("feature", [f"{hidden[f][i]:.6f}" for i in keep]),
                ],
            )
        )
        informative.add(name)
    for f in range(n_noise):
        name = f"ml_noise_{f:02d}"
        keep = sorted(rng.sample(range(n_rows), int(0.9 * n_rows)))
        lake.add(
            Table(
                name,
                [
                    Column("key", [keys[i] for i in keep]),
                    Column("feature", [f"{rng.gauss(0, 1):.6f}" for _ in keep]),
                ],
            )
        )
        noise.add(name)
    return MLCorpus(lake, "ml_base", "target", "key", informative, noise)


# ---------------------------------------------------------------------------
# E18: stitching / KB completion corpus
# ---------------------------------------------------------------------------


@dataclass
class StitchCorpus:
    lake: DataLake
    #: all true (subject, predicate, object) facts spread across tables
    facts: set[tuple[str, str, str]]
    #: predicate -> the synonym headers it hides behind
    header_synonyms: dict[str, list[str]]


def make_stitch_corpus(
    n_fragments: int = 30,
    rows_per_fragment: int = 12,
    n_predicates: int = 3,
    seed: int = 0,
) -> StitchCorpus:
    """Many small web-table fragments of one logical relation, with synonym
    headers (Lehmberg & Bizer).  Stitching them enables KB completion."""
    rng = random.Random(seed)
    predicates = [f"pred_{p}" for p in range(n_predicates)]
    header_synonyms = {
        p: [p, p.replace("pred", "attr"), p.replace("pred", "field")]
        for p in predicates
    }
    subjects = [f"entity_{e:04d}" for e in range(n_fragments * rows_per_fragment)]
    facts = set()
    lake = DataLake()
    si = 0
    for f in range(n_fragments):
        rows = []
        subs = subjects[si : si + rows_per_fragment]
        si += rows_per_fragment
        for s in subs:
            row = [s]
            for p in predicates:
                o = f"{p}_val_{rng.randrange(200):04d}"
                facts.add((s, p, o))
                row.append(o)
            rows.append(row)
        header = ["entity"] + [
            rng.choice(header_synonyms[p]) for p in predicates
        ]
        lake.add(Table(f"stitch_{f:03d}", *_cols_from_rows(header, rows)))
    return StitchCorpus(lake, facts, header_synonyms)


def _cols_from_rows(header: list[str], rows: list[list[str]]):
    cols = [
        Column(h, [row[j] for row in rows]) for j, h in enumerate(header)
    ]
    return (cols,)


# ---------------------------------------------------------------------------
# E14: composite-key corpus (MATE)
# ---------------------------------------------------------------------------


@dataclass
class CompositeKeyCorpus:
    lake: DataLake
    query_table: str
    key_columns: tuple[int, int]
    #: candidate -> fraction of query composite keys it contains
    truth: dict[str, float]


def make_composite_key_corpus(
    n_candidates: int = 30,
    n_rows: int = 200,
    seed: int = 0,
) -> CompositeKeyCorpus:
    """Joins are only valid on the *pair* (first, second): single columns
    overlap heavily across all candidates, composite keys discriminate."""
    rng = random.Random(seed)
    firsts = [f"f{j:03d}" for j in range(40)]
    seconds = [f"s{j:03d}" for j in range(40)]
    qpairs = [(rng.choice(firsts), rng.choice(seconds)) for _ in range(n_rows)]
    lake = DataLake()
    lake.add(
        Table(
            "mate_query",
            [
                Column("first", [a for a, _ in qpairs]),
                Column("second", [b for _, b in qpairs]),
                Column("val", [str(i) for i in range(n_rows)]),
            ],
        )
    )
    truth = {}
    qset = set(qpairs)
    levels = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    for i in range(n_candidates):
        level = levels[i % len(levels)]
        take = int(level * len(qset))
        pairs = rng.sample(sorted(qset), take)
        # Fill with pairs sharing single values but not the combination.
        while len(pairs) < n_rows:
            p = (rng.choice(firsts), rng.choice(seconds))
            if p not in qset:
                pairs.append(p)
        rng.shuffle(pairs)
        name = f"mate_cand_{i:03d}"
        lake.add(
            Table(
                name,
                [
                    Column("first", [a for a, _ in pairs]),
                    Column("second", [b for _, b in pairs]),
                    Column("extra", [str(j) for j in range(len(pairs))]),
                ],
            )
        )
        truth[name] = len(set(pairs) & qset) / len(qset)
    return CompositeKeyCorpus(lake, "mate_query", (0, 1), truth)
