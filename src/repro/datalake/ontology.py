"""Synthetic ontology / knowledge base substrate.

Surveyed systems (Das Sarma et al., TUS's semantic measure, SANTOS) consume
an external KB such as YAGO: a class hierarchy, a value->class map, and typed
binary relations between classes.  Real KBs are proprietary or too large to
ship, so we build a deterministic synthetic ontology over the lake's value
vocabulary.  The essential behaviour is preserved: lookups are
high-precision, but *coverage* is partial — the ``coverage`` knob controls
the fraction of values the KB knows about, reproducing the KB-precision vs.
LM-recall trade-off that §3 of the tutorial highlights.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class OntologyClass:
    """A class (semantic type) in the hierarchy."""

    name: str
    parent: str | None = None
    values: set[str] = field(default_factory=set)


class Ontology:
    """Class hierarchy + value->class map + typed binary relations."""

    def __init__(self):
        self._classes: dict[str, OntologyClass] = {}
        self._value_to_class: dict[str, str] = {}
        # relation name -> set of (subject class, object class)
        self._relations: dict[str, set[tuple[str, str]]] = {}
        # (subject value, object value) -> relation name (instance-level facts)
        self._facts: dict[tuple[str, str], str] = {}

    # -- construction ----------------------------------------------------------

    def add_class(self, name: str, parent: str | None = None) -> None:
        if parent is not None and parent not in self._classes:
            raise KeyError(f"unknown parent class {parent!r}")
        self._classes[name] = OntologyClass(name, parent)

    def add_value(self, value: str, cls: str) -> None:
        if cls not in self._classes:
            raise KeyError(f"unknown class {cls!r}")
        value = str(value).lower()
        self._value_to_class[value] = cls
        self._classes[cls].values.add(value)

    def add_relation(self, name: str, subject_cls: str, object_cls: str) -> None:
        self._relations.setdefault(name, set()).add((subject_cls, object_cls))

    def add_fact(self, subject: str, obj: str, relation: str) -> None:
        self._facts[(str(subject).lower(), str(obj).lower())] = relation

    # -- lookups -----------------------------------------------------------------

    def classes(self) -> list[str]:
        return list(self._classes)

    def class_of(self, value: str) -> str | None:
        """The (leaf) class a value belongs to, or None if uncovered."""
        return self._value_to_class.get(str(value).lower())

    def ancestors(self, cls: str) -> list[str]:
        """The class and all its ancestors, leaf first."""
        out = []
        cur: str | None = cls
        while cur is not None:
            out.append(cur)
            cur = self._classes[cur].parent
        return out

    def classes_of(self, value: str, with_ancestors: bool = True) -> set[str]:
        """All classes a value belongs to (optionally expanding the hierarchy)."""
        leaf = self.class_of(value)
        if leaf is None:
            return set()
        return set(self.ancestors(leaf)) if with_ancestors else {leaf}

    def relation_between_classes(self, a: str, b: str) -> str | None:
        """A relation name declared between classes a and b (either direction)."""
        for name, pairs in self._relations.items():
            if (a, b) in pairs or (b, a) in pairs:
                return name
        return None

    def relation_between_values(self, a: str, b: str) -> str | None:
        """Instance-level fact lookup, falling back to class-level relations."""
        fact = self._facts.get((str(a).lower(), str(b).lower()))
        if fact is None:
            fact = self._facts.get((str(b).lower(), str(a).lower()))
        if fact is not None:
            return fact
        ca, cb = self.class_of(a), self.class_of(b)
        if ca is None or cb is None:
            return None
        return self.relation_between_classes(ca, cb)

    def coverage_of(self, values: list[str]) -> float:
        """Fraction of the given values the ontology knows about."""
        if not values:
            return 0.0
        known = sum(1 for v in values if self.class_of(v) is not None)
        return known / len(values)

    def num_facts(self) -> int:
        return len(self._facts)

    # -- annotation --------------------------------------------------------------

    def annotate_column(
        self, values: list[str], min_support: float = 0.5
    ) -> str | None:
        """Majority-vote class annotation of a column (Limaye/Venetis style).

        Returns the class covering the largest share of covered values if that
        share (among *all* values) reaches ``min_support`` times coverage.
        """
        votes: dict[str, int] = {}
        for v in values:
            c = self.class_of(v)
            if c is not None:
                votes[c] = votes.get(c, 0) + 1
        if not votes:
            return None
        best, n = max(votes.items(), key=lambda kv: kv[1])
        covered = sum(votes.values())
        if covered == 0 or n < min_support * covered:
            return None
        return best


def subsample_ontology(
    onto: Ontology, coverage: float, seed: int = 0,
    granularity: str = "value",
) -> Ontology:
    """Return a copy of the ontology knowing only a ``coverage`` fraction of
    values (classes, hierarchy, and class-level relations are kept).

    ``granularity`` controls *how* coverage fails, modelling two real-KB
    failure modes: "value" drops individual values uniformly (sparse
    annotation), while "class" drops entire leaf classes (whole lake
    domains absent from the KB — the common case for lake-specific
    vocabulary, and the mode that actually hurts semantic discovery).
    """
    if granularity not in ("value", "class"):
        raise ValueError(f"unknown granularity {granularity!r}")
    rng = random.Random(seed)
    kept_classes: set[str] | None = None
    if granularity == "class":
        kept_classes = {
            name for name in onto._classes if rng.random() < coverage
        }
    out = Ontology()
    # Re-add classes respecting parent order.
    added: set[str] = set()

    def add_with_parents(name: str) -> None:
        if name in added:
            return
        parent = onto._classes[name].parent
        if parent is not None:
            add_with_parents(parent)
        out.add_class(name, parent)
        added.add(name)

    for name in onto._classes:
        add_with_parents(name)
    for name, pairs in onto._relations.items():
        for a, b in pairs:
            out.add_relation(name, a, b)
    for value, cls in onto._value_to_class.items():
        if kept_classes is not None:
            if cls in kept_classes:
                out.add_value(value, cls)
        elif rng.random() < coverage:
            out.add_value(value, cls)
    for (s, o), rel in onto._facts.items():
        if out.class_of(s) is not None and out.class_of(o) is not None:
            out.add_fact(s, o, rel)
    return out
