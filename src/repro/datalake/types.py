"""Data type inference for raw string columns.

Data lake tables arrive as untyped CSV; every discovery technique first needs
to know which columns are numeric, which are dates, and which are textual
domains (survey §2.2, "domain discovery ... beyond standard DB data types").
"""

from __future__ import annotations

import math
import re
from enum import Enum

_INT_RE = re.compile(r"^[+-]?\d{1,18}$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")
_DATE_RES = (
    re.compile(r"^\d{4}-\d{1,2}-\d{1,2}$"),
    re.compile(r"^\d{1,2}/\d{1,2}/\d{2,4}$"),
    re.compile(r"^\d{4}/\d{1,2}/\d{1,2}$"),
)
_NULLISH = frozenset({"", "na", "n/a", "nan", "null", "none", "-", "?"})


class DataType(Enum):
    """Coarse column types used throughout the library."""

    INTEGER = "integer"
    FLOAT = "float"
    DATE = "date"
    TEXT = "text"
    EMPTY = "empty"


def parse_float(value: str) -> float:
    """Parse a cell as float; return NaN for nulls and unparseable text."""
    s = str(value).strip().replace(",", "")
    if s.lower() in _NULLISH:
        return math.nan
    try:
        return float(s)
    except ValueError:
        return math.nan


def classify_value(value: str) -> DataType:
    """Classify a single non-null cell."""
    s = str(value).strip()
    if s.lower() in _NULLISH:
        return DataType.EMPTY
    if _INT_RE.match(s):
        return DataType.INTEGER
    if _FLOAT_RE.match(s.replace(",", "")):
        return DataType.FLOAT
    for rx in _DATE_RES:
        if rx.match(s):
            return DataType.DATE
    return DataType.TEXT


def infer_type(values: list[str], threshold: float = 0.9) -> DataType:
    """Infer the dominant type of a column of raw cells.

    A type wins if at least ``threshold`` of the non-null cells match it;
    INTEGER degrades to FLOAT when mixed with floats; anything else is TEXT.
    """
    counts = {t: 0 for t in DataType}
    non_null = 0
    for v in values:
        t = classify_value(v)
        counts[t] += 1
        if t is not DataType.EMPTY:
            non_null += 1
    if non_null == 0:
        return DataType.EMPTY
    numeric = counts[DataType.INTEGER] + counts[DataType.FLOAT]
    if counts[DataType.INTEGER] >= threshold * non_null:
        return DataType.INTEGER
    if numeric >= threshold * non_null:
        return DataType.FLOAT
    if counts[DataType.DATE] >= threshold * non_null:
        return DataType.DATE
    return DataType.TEXT
