"""Core table model for the data lake substrate.

Tables in data lakes are typically shared in primitive formats such as CSV
with unreliable or missing metadata (survey §2.1).  We therefore model a
table as a named, column-oriented collection of string cells plus an
optional, possibly-empty metadata record.  Typed views (numeric arrays) are
derived lazily from the raw strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import SchemaError
from repro.datalake.types import DataType, infer_type, parse_float

# Underscores are separators: headers like "customer_id" must match the
# query term "customer" (standard IR tokenization for schema text).
_WORD_RE = re.compile(r"[A-Za-z0-9]+")

# Values treated as missing when normalizing cells.
NULL_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "-", "?"})


def normalize_cell(value: str) -> str:
    """Normalize a raw cell: strip, lowercase, collapse inner whitespace."""
    return " ".join(str(value).strip().lower().split())


def is_null(value: str) -> bool:
    """Return True if a normalized cell should be treated as missing."""
    return normalize_cell(value) in NULL_TOKENS


def tokenize(text: str) -> list[str]:
    """Split text into lowercase word tokens (letters, digits, underscore)."""
    return [m.group(0).lower() for m in _WORD_RE.finditer(str(text))]


@dataclass(frozen=True)
class ColumnRef:
    """Stable address of a column inside a lake: (table name, column index)."""

    table: str
    index: int

    def __str__(self) -> str:
        return f"{self.table}[{self.index}]"


class Column:
    """A single table column: a header plus an ordered list of string cells."""

    def __init__(self, name: str, values: list[str]):
        self.name = str(name)
        self.values = [str(v) for v in values]
        self._dtype: DataType | None = None
        self._value_set: frozenset[str] | None = None

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, n={len(self.values)}, dtype={self.dtype.name})"

    @property
    def dtype(self) -> DataType:
        """Inferred data type of this column (cached)."""
        if self._dtype is None:
            self._dtype = infer_type(self.values)
        return self._dtype

    @property
    def is_numeric(self) -> bool:
        return self.dtype in (DataType.INTEGER, DataType.FLOAT)

    def non_null_values(self) -> list[str]:
        """Normalized cells with nulls removed (order preserved)."""
        out = []
        for v in self.values:
            nv = normalize_cell(v)
            if nv not in NULL_TOKENS:
                out.append(nv)
        return out

    def value_set(self) -> frozenset[str]:
        """The distinct set of normalized non-null cells (cached)."""
        if self._value_set is None:
            self._value_set = frozenset(self.non_null_values())
        return self._value_set

    def distinct_count(self) -> int:
        return len(self.value_set())

    def null_fraction(self) -> float:
        if not self.values:
            return 0.0
        nulls = sum(1 for v in self.values if is_null(v))
        return nulls / len(self.values)

    def numeric_values(self) -> np.ndarray:
        """Parse cells as floats; unparseable/missing cells become NaN."""
        out = np.empty(len(self.values), dtype=np.float64)
        for i, v in enumerate(self.values):
            out[i] = parse_float(v)
        return out

    def tokens(self) -> list[str]:
        """Word tokens across all non-null cells (for text indexing)."""
        toks: list[str] = []
        for v in self.non_null_values():
            toks.extend(tokenize(v))
        return toks


@dataclass
class TableMetadata:
    """Optional, often unreliable metadata attached to a lake table."""

    title: str = ""
    description: str = ""
    tags: list[str] = field(default_factory=list)
    source: str = ""

    def text(self) -> str:
        """All metadata text concatenated (for keyword indexing)."""
        return " ".join([self.title, self.description, " ".join(self.tags)])


class Table:
    """A named, column-oriented table.

    Columns must share the same length.  Cell access is column-major because
    every discovery technique in the survey operates on columns.
    """

    def __init__(
        self,
        name: str,
        columns: list[Column],
        metadata: TableMetadata | None = None,
    ):
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(
                f"table {name!r}: ragged columns with lengths {sorted(lengths)}"
            )
        self.name = str(name)
        self.columns = list(columns)
        self.metadata = metadata or TableMetadata()

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        header: list[str],
        rows: list[list[str]],
        metadata: TableMetadata | None = None,
    ) -> "Table":
        """Build a table from a header and row-major cells."""
        ncols = len(header)
        cols: list[list[str]] = [[] for _ in range(ncols)]
        for row in rows:
            if len(row) != ncols:
                raise SchemaError(
                    f"table {name!r}: row width {len(row)} != header width {ncols}"
                )
            for j, cell in enumerate(row):
                cols[j].append(str(cell))
        columns = [Column(h, c) for h, c in zip(header, cols)]
        return cls(name, columns, metadata)

    @classmethod
    def from_dict(
        cls,
        name: str,
        data: dict[str, list],
        metadata: TableMetadata | None = None,
    ) -> "Table":
        """Build a table from a {column name: values} mapping."""
        columns = [Column(k, [str(v) for v in vs]) for k, vs in data.items()]
        return cls(name, columns, metadata)

    # -- basic accessors -------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_cols(self) -> int:
        return len(self.columns)

    @property
    def header(self) -> list[str]:
        return [c.name for c in self.columns]

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.num_rows}x{self.num_cols})"

    def column(self, key: int | str) -> Column:
        """Look a column up by index or (first-match) header name."""
        if isinstance(key, int):
            return self.columns[key]
        for c in self.columns:
            if c.name == key:
                return c
        raise KeyError(f"table {self.name!r} has no column {key!r}")

    def column_index(self, name: str) -> int:
        for i, c in enumerate(self.columns):
            if c.name == name:
                return i
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    def rows(self) -> list[list[str]]:
        """Materialize row-major cells."""
        return [
            [c.values[i] for c in self.columns] for i in range(self.num_rows)
        ]

    def row(self, i: int) -> list[str]:
        return [c.values[i] for c in self.columns]

    def project(self, keys: list[int | str], name: str | None = None) -> "Table":
        """Return a new table with only the selected columns."""
        cols = [self.column(k) for k in keys]
        return Table(name or self.name, cols, self.metadata)

    def text_columns(self) -> list[tuple[int, Column]]:
        """Indices and columns whose dtype is textual/categorical."""
        return [
            (i, c) for i, c in enumerate(self.columns) if not c.is_numeric
        ]

    def numeric_columns(self) -> list[tuple[int, Column]]:
        return [(i, c) for i, c in enumerate(self.columns) if c.is_numeric]
