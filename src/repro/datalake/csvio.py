"""From-scratch CSV reading/writing for lake tables.

Implements RFC-4180-style quoting (double quotes, doubled escapes, embedded
newlines) without relying on pandas; data lakes overwhelmingly consist of
CSV files (survey §2.1).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.errors import CsvFormatError
from repro.datalake.table import Table, TableMetadata


def parse_csv_text(text: str, delimiter: str = ",") -> list[list[str]]:
    """Parse CSV text into rows of cells, honoring quoted fields."""
    rows: list[list[str]] = []
    field: list[str] = []
    row: list[str] = []
    in_quotes = False
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if in_quotes:
            if ch == '"':
                if i + 1 < n and text[i + 1] == '"':
                    field.append('"')
                    i += 1
                else:
                    in_quotes = False
            else:
                field.append(ch)
        else:
            if ch == '"':
                if field:
                    raise CsvFormatError(
                        f"unexpected quote mid-field at offset {i}"
                    )
                in_quotes = True
            elif ch == delimiter:
                row.append("".join(field))
                field = []
            elif ch == "\n":
                row.append("".join(field))
                rows.append(row)
                field, row = [], []
            elif ch == "\r":
                pass  # normalized away; \r\n handled by the \n branch
            else:
                field.append(ch)
        i += 1
    if in_quotes:
        raise CsvFormatError("unterminated quoted field at end of input")
    if field or row:
        row.append("".join(field))
        rows.append(row)
    return rows


def format_csv_cell(cell: str, delimiter: str = ",") -> str:
    """Quote a cell if it contains the delimiter, quotes, or newlines."""
    s = str(cell)
    if delimiter in s or '"' in s or "\n" in s or "\r" in s:
        return '"' + s.replace('"', '""') + '"'
    return s


def rows_to_csv_text(rows: list[list[str]], delimiter: str = ",") -> str:
    """Serialize row-major cells to CSV text."""
    return "".join(
        delimiter.join(format_csv_cell(c, delimiter) for c in row) + "\n"
        for row in rows
    )


def read_table_csv(
    path: str | os.PathLike,
    name: str | None = None,
    delimiter: str = ",",
) -> Table:
    """Read a CSV file as a Table (first row is the header).

    Short rows are padded with empty cells and long rows truncated, mirroring
    the tolerant ingestion real lake loaders need for messy open data.
    """
    path = Path(path)
    with open(path, encoding="utf-8") as f:
        raw = parse_csv_text(f.read(), delimiter)
    if not raw:
        raise CsvFormatError(f"{path}: empty CSV file")
    header, body = raw[0], raw[1:]
    width = len(header)
    fixed = [
        (row + [""] * width)[:width] for row in body if any(c.strip() for c in row)
    ]
    return Table.from_rows(
        name or path.stem, header, fixed, TableMetadata(source=str(path))
    )


def write_table_csv(
    table: Table, path: str | os.PathLike, delimiter: str = ","
) -> None:
    """Write a Table to a CSV file, header first."""
    rows = [table.header] + table.rows()
    with open(path, "w", encoding="utf-8") as f:
        f.write(rows_to_csv_text(rows, delimiter))
