"""Benchmark substrate: metrics, workloads, and the experiment harness."""

from repro.bench.harness import (
    BenchComparison,
    BenchTrajectory,
    ExperimentTable,
    compare_trajectories,
    time_call,
)
from repro.bench.metrics import (
    average_precision,
    classification_report,
    f1_score,
    kendall_tau,
    mean_absolute_error,
    mean_average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.bench.workloads import JoinWorkload, UnionWorkload

__all__ = [
    "BenchComparison",
    "BenchTrajectory",
    "ExperimentTable",
    "JoinWorkload",
    "UnionWorkload",
    "compare_trajectories",
    "time_call",
    "average_precision",
    "classification_report",
    "f1_score",
    "kendall_tau",
    "mean_absolute_error",
    "mean_average_precision",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
]
