"""Experiment harness: run experiments, print paper-style ASCII tables,
assert qualitative shapes, and persist performance trajectories.

Each bench module builds an ``ExperimentTable`` with the same rows/series
the original paper reports, prints it (captured into bench output), and
asserts the expected *shape* (who wins, rough factors, crossovers).

:class:`BenchTrajectory` persists a run's latency records to
``BENCH_<experiment>.json`` so performance is comparable across commits;
:func:`compare_trajectories` is the regression gate behind
``repro bench-compare`` (non-zero exit when a record slows down by more
than the threshold factor).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class ExperimentTable:
    """A printable result table for one experiment."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} != header width {len(self.columns)}"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def attach_metrics(self, snapshot: dict, match: str | None = None) -> None:
        """Attach a ``MetricsRegistry.snapshot()`` as note lines.

        ``match`` filters metric names by substring (e.g. ``"josie"``), so a
        bench can surface just the counters its experiment exercises.
        """

        def keep(name: str) -> bool:
            return match is None or match in name

        for name, value in snapshot.get("counters", {}).items():
            if keep(name):
                self.note(f"metric {name} = {value:g}")
        for name, value in snapshot.get("gauges", {}).items():
            if keep(name):
                self.note(f"metric {name} = {value:g}")
        for name, hist in snapshot.get("histograms", {}).items():
            if keep(name) and hist["count"]:
                mean = hist["sum"] / hist["count"]
                self.note(
                    f"metric {name}: count={hist['count']} "
                    f"mean={mean:.3f} max={hist['max']:g}"
                )

    def render(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        cells = [self.columns] + [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append(sep)
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")

    def column_values(self, name: str) -> list:
        i = self.columns.index(name)
        return [row[i] for row in self.rows]


# -- performance trajectories -------------------------------------------------------


def time_call(fn: Callable[[], Any], repeat: int = 3) -> dict[str, float]:
    """Run ``fn`` ``repeat`` times; return best/mean wall-clock in ms."""
    runs = []
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        fn()
        runs.append((time.perf_counter() - t0) * 1000)
    return {
        "latency_ms": round(sum(runs) / len(runs), 4),
        "best_ms": round(min(runs), 4),
        "runs": len(runs),
    }


@dataclass
class BenchTrajectory:
    """One benchmark run's named latency records, persisted as JSON.

    The on-disk convention is ``BENCH_<experiment>.json``; ``write`` applies
    it automatically when handed a directory.
    """

    experiment: str
    meta: dict[str, Any] = field(default_factory=dict)
    records: list[dict[str, Any]] = field(default_factory=list)

    def add(self, name: str, latency_ms: float, **extra: Any) -> None:
        self.records.append(
            {"name": name, "latency_ms": round(float(latency_ms), 4), **extra}
        )

    def add_timed(
        self, name: str, fn: Callable[[], Any], repeat: int = 3, **extra: Any
    ) -> dict[str, float]:
        """Time ``fn`` and append the record; returns the timing stats."""
        stats = time_call(fn, repeat)
        self.records.append({"name": name, **stats, **extra})
        return stats

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "meta": dict(self.meta),
            "records": list(self.records),
        }

    def write(self, path: str) -> str:
        """Write the trajectory JSON; a directory path gets the
        ``BENCH_<experiment>.json`` filename appended.  Returns the path."""
        if os.path.isdir(path):
            path = os.path.join(path, f"BENCH_{self.experiment}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    @staticmethod
    def load(path: str) -> dict[str, Any]:
        with open(path, encoding="utf-8") as f:
            return json.load(f)


@dataclass
class BenchComparison:
    """Old-vs-new trajectory comparison: per-record ratios + verdict."""

    threshold: float
    rows: list[dict[str, Any]] = field(default_factory=list)

    @property
    def regressions(self) -> list[dict[str, Any]]:
        return [r for r in self.rows if r["status"] == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"bench-compare: threshold=+{self.threshold * 100:.0f}% latency"
        ]
        for r in self.rows:
            old = f"{r['old_ms']:.3f}" if r["old_ms"] is not None else "-"
            new = f"{r['new_ms']:.3f}" if r["new_ms"] is not None else "-"
            ratio = f"{r['ratio']:.2f}x" if r["ratio"] is not None else "-"
            lines.append(
                f"  {r['status']:<10} {r['name']:<28} "
                f"old={old} ms  new={new} ms  ({ratio})"
            )
        verdict = (
            "OK: no latency regressions"
            if self.ok
            else f"FAIL: {len(self.regressions)} record(s) regressed"
        )
        lines.append(verdict)
        return "\n".join(lines)


def compare_trajectories(
    old: dict[str, Any], new: dict[str, Any], threshold: float = 0.2
) -> BenchComparison:
    """Match records by name; flag any whose latency grew by more than
    ``threshold`` (0.2 = 20%).  Records present on only one side are
    reported but never fail the gate."""
    cmp = BenchComparison(threshold=threshold)
    old_by_name = {r["name"]: r for r in old.get("records", [])}
    new_by_name = {r["name"]: r for r in new.get("records", [])}
    for name in sorted(set(old_by_name) | set(new_by_name)):
        o, n = old_by_name.get(name), new_by_name.get(name)
        if o is None or n is None:
            cmp.rows.append(
                {
                    "name": name,
                    "old_ms": o["latency_ms"] if o else None,
                    "new_ms": n["latency_ms"] if n else None,
                    "ratio": None,
                    "status": "removed" if n is None else "added",
                }
            )
            continue
        old_ms, new_ms = float(o["latency_ms"]), float(n["latency_ms"])
        ratio = new_ms / old_ms if old_ms > 0 else float("inf")
        if ratio > 1 + threshold:
            status = "regression"
        elif ratio < 1 - threshold:
            status = "improved"
        else:
            status = "ok"
        cmp.rows.append(
            {
                "name": name,
                "old_ms": old_ms,
                "new_ms": new_ms,
                "ratio": round(ratio, 4),
                "status": status,
            }
        )
    return cmp
