"""Experiment harness: run experiments, print paper-style ASCII tables,
and assert qualitative shapes.

Each bench module builds an ``ExperimentTable`` with the same rows/series
the original paper reports, prints it (captured into bench output), and
asserts the expected *shape* (who wins, rough factors, crossovers).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentTable:
    """A printable result table for one experiment."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row width {len(values)} != header width {len(self.columns)}"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def attach_metrics(self, snapshot: dict, match: str | None = None) -> None:
        """Attach a ``MetricsRegistry.snapshot()`` as note lines.

        ``match`` filters metric names by substring (e.g. ``"josie"``), so a
        bench can surface just the counters its experiment exercises.
        """

        def keep(name: str) -> bool:
            return match is None or match in name

        for name, value in snapshot.get("counters", {}).items():
            if keep(name):
                self.note(f"metric {name} = {value:g}")
        for name, value in snapshot.get("gauges", {}).items():
            if keep(name):
                self.note(f"metric {name} = {value:g}")
        for name, hist in snapshot.get("histograms", {}).items():
            if keep(name) and hist["count"]:
                mean = hist["sum"] / hist["count"]
                self.note(
                    f"metric {name}: count={hist['count']} "
                    f"mean={mean:.3f} max={hist['max']:g}"
                )

    def render(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.3f}"
            return str(v)

        cells = [self.columns] + [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append(sep)
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")

    def column_values(self, name: str) -> list:
        i = self.columns.index(name)
        return [row[i] for row in self.rows]
