"""Query workload builders over the generated corpora.

Convenience wrappers used by benchmarks and integration tests: they turn a
generated corpus into (query, ground truth) pairs in the exact form each
search engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalake.generate import (
    JoinCorpus,
    RelationshipCorpus,
    UnionCorpus,
)
from repro.datalake.table import Column, ColumnRef


@dataclass
class JoinWorkload:
    """Column queries with containment-threshold relevance sets."""

    queries: list[tuple[Column, ColumnRef, dict[ColumnRef, float]]]

    @classmethod
    def from_corpus(cls, corpus: JoinCorpus) -> "JoinWorkload":
        out = []
        for q in corpus.queries:
            col = corpus.lake.column(q.column)
            out.append((col, q.column, dict(q.containments)))
        return cls(out)

    def relevant(self, idx: int, threshold: float) -> set[ColumnRef]:
        _, ref, containments = self.queries[idx]
        return {
            r
            for r, c in containments.items()
            if c >= threshold and r.table != ref.table
        }


@dataclass
class UnionWorkload:
    """Table queries with unionable-group relevance sets."""

    queries: list[tuple[str, set[str]]]

    @classmethod
    def from_corpus(
        cls, corpus: UnionCorpus, queries_per_group: int = 1
    ) -> "UnionWorkload":
        out = []
        for members in corpus.groups.values():
            for name in members[:queries_per_group]:
                out.append((name, corpus.truth[name]))
        return cls(out)

    @classmethod
    def from_relationship_corpus(
        cls, corpus: RelationshipCorpus
    ) -> "UnionWorkload":
        return cls([(q, set(t)) for q, t in sorted(corpus.truth.items())])
