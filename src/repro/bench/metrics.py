"""Retrieval and estimation metrics used across the benchmark suite."""

from __future__ import annotations

import math
from typing import Hashable, Sequence


def precision_at_k(retrieved: Sequence[Hashable], relevant: set, k: int) -> float:
    """Fraction of the top-k retrieved items that are relevant."""
    if k <= 0:
        return 0.0
    top = list(retrieved)[:k]
    if not top:
        return 0.0
    return sum(1 for r in top if r in relevant) / min(k, len(top))


def recall_at_k(retrieved: Sequence[Hashable], relevant: set, k: int) -> float:
    """Fraction of relevant items found in the top-k."""
    if not relevant:
        return 1.0
    top = set(list(retrieved)[:k])
    return len(top & relevant) / len(relevant)


def f1_score(precision: float, recall: float) -> float:
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def average_precision(retrieved: Sequence[Hashable], relevant: set) -> float:
    """AP of a ranked list against a relevance set."""
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for i, item in enumerate(retrieved, start=1):
        if item in relevant:
            hits += 1
            total += hits / i
    return total / min(len(relevant), len(retrieved)) if retrieved else 0.0


def mean_average_precision(
    runs: list[tuple[Sequence[Hashable], set]]
) -> float:
    """MAP over (retrieved, relevant) pairs."""
    if not runs:
        return 0.0
    return sum(average_precision(r, rel) for r, rel in runs) / len(runs)


def ndcg_at_k(
    retrieved: Sequence[Hashable], gains: dict[Hashable, float], k: int
) -> float:
    """Normalized discounted cumulative gain with graded relevance."""
    top = list(retrieved)[:k]
    dcg = sum(
        gains.get(item, 0.0) / math.log2(i + 2) for i, item in enumerate(top)
    )
    ideal = sorted(gains.values(), reverse=True)[:k]
    idcg = sum(g / math.log2(i + 2) for i, g in enumerate(ideal))
    return dcg / idcg if idcg > 0 else 0.0


def kendall_tau(a: Sequence[float], b: Sequence[float]) -> float:
    """Kendall rank correlation between two equally-long score sequences."""
    n = len(a)
    if n != len(b) or n < 2:
        return 0.0
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            s = (a[i] - a[j]) * (b[i] - b[j])
            if s > 0:
                concordant += 1
            elif s < 0:
                discordant += 1
    total = n * (n - 1) / 2
    return (concordant - discordant) / total if total else 0.0


def mean_absolute_error(estimates: Sequence[float], truths: Sequence[float]) -> float:
    if not estimates:
        return 0.0
    return sum(abs(e - t) for e, t in zip(estimates, truths)) / len(estimates)


def classification_report(
    predictions: Sequence[str], labels: Sequence[str]
) -> dict[str, float]:
    """Accuracy plus macro precision/recall/F1 over string labels."""
    classes = sorted(set(labels) | set(predictions))
    accuracy = (
        sum(1 for p, l in zip(predictions, labels) if p == l) / len(labels)
        if labels
        else 0.0
    )
    precisions, recalls, f1s = [], [], []
    for c in classes:
        tp = sum(1 for p, l in zip(predictions, labels) if p == c and l == c)
        fp = sum(1 for p, l in zip(predictions, labels) if p == c and l != c)
        fn = sum(1 for p, l in zip(predictions, labels) if p != c and l == c)
        prec = tp / (tp + fp) if tp + fp else 0.0
        rec = tp / (tp + fn) if tp + fn else 0.0
        precisions.append(prec)
        recalls.append(rec)
        f1s.append(f1_score(prec, rec))
    return {
        "accuracy": accuracy,
        "macro_precision": sum(precisions) / len(classes) if classes else 0.0,
        "macro_recall": sum(recalls) / len(classes) if classes else 0.0,
        "macro_f1": sum(f1s) / len(classes) if classes else 0.0,
    }
