"""Keyword search over table metadata (survey §2.3).

BM25 ranking over the concatenation of title, description, tags, and column
headers — the GOODS / Google Dataset Search setting where only metadata is
indexed, not cell data.  OCTOPUS-style clustering groups hits sharing a
schema so the user sees one cluster per logical relation.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.datalake.lake import DataLake
from repro.datalake.table import tokenize
from repro.obs import METRICS, TRACER
from repro.search.explain import ExplainReport, summarize_results


@dataclass(frozen=True)
class KeywordHit:
    table: str
    score: float

    def __lt__(self, other: "KeywordHit") -> bool:
        return (-self.score, self.table) < (-other.score, other.table)


class KeywordSearchEngine:
    """BM25 metadata search with schema clustering of results."""

    def __init__(
        self,
        k1: float = 1.5,
        b: float = 0.75,
        include_headers: bool = True,
        include_values: bool = False,
        max_value_tokens: int = 200,
    ):
        self.k1 = k1
        self.b = b
        self.include_headers = include_headers
        # OCTOPUS mode: index (a sample of) cell tokens too, so keyword
        # search can reach tables whose metadata never mentions the topic.
        self.include_values = include_values
        self.max_value_tokens = max_value_tokens
        self._docs: dict[str, Counter[str]] = {}
        self._doc_len: dict[str, int] = {}
        self._df: Counter[str] = Counter()
        self._avg_len = 0.0
        self._schemas: dict[str, tuple[str, ...]] = {}

    def index_lake(self, lake: DataLake) -> None:
        """Index every table's metadata text (and headers)."""
        for table in lake:
            text = table.metadata.text()
            tokens = tokenize(text)
            if self.include_headers:
                for h in table.header:
                    tokens.extend(tokenize(h))
            if self.include_values:
                budget = self.max_value_tokens
                for _, col in table.text_columns():
                    for value in col.non_null_values():
                        value_tokens = tokenize(value)
                        tokens.extend(value_tokens[:budget])
                        budget -= len(value_tokens)
                        if budget <= 0:
                            break
                    if budget <= 0:
                        break
            counts = Counter(tokens)
            self._docs[table.name] = counts
            self._doc_len[table.name] = sum(counts.values())
            for t in counts:
                self._df[t] += 1
            self._schemas[table.name] = tuple(sorted(h.lower() for h in table.header))
        n = len(self._docs)
        self._avg_len = (sum(self._doc_len.values()) / n) if n else 0.0
        METRICS.inc("index.keyword.tables_indexed", n)

    def stats(self) -> dict:
        """Introspection: corpus size, vocabulary, and document-length skew."""
        from repro.obs.introspect import summarize_distribution

        return {
            "documents": len(self._docs),
            "vocabulary": len(self._df),
            "avg_doc_len": round(self._avg_len, 3),
            "doc_len": summarize_distribution(self._doc_len.values()),
        }

    def _idf(self, token: str) -> float:
        n = len(self._docs)
        df = self._df.get(token, 0)
        return math.log(1 + (n - df + 0.5) / (df + 0.5))

    def search(self, query: str, k: int = 10, explain: bool = False):
        """Top-k tables by BM25 score for a keyword query.

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        q_tokens = tokenize(query)
        hits = []
        for name, counts in self._docs.items():
            score = 0.0
            dl = self._doc_len[name]
            for t in q_tokens:
                tf = counts.get(t, 0)
                if tf == 0:
                    continue
                denom = tf + self.k1 * (
                    1 - self.b + self.b * dl / max(self._avg_len, 1e-9)
                )
                score += self._idf(t) * tf * (self.k1 + 1) / denom
            if score > 0:
                hits.append(KeywordHit(name, score))
        out = sorted(hits)[:k]
        METRICS.inc("search.keyword.queries")
        METRICS.inc("search.keyword.docs_scored", len(self._docs))
        METRICS.inc("search.keyword.hits_returned", len(out))
        sp = TRACER.current()
        sp.set("keyword.docs_scored", len(self._docs))
        sp.set("keyword.candidates", len(hits))
        if explain:
            report = ExplainReport(
                "keyword",
                query=query,
                k=k,
                params={"k1": self.k1, "b": self.b},
            )
            report.stage("documents_indexed", len(self._docs))
            report.stage("matched", len(hits), query_tokens=len(q_tokens))
            report.stage("returned", len(out))
            report.results = summarize_results(out)
            return out, report
        return out

    def search_clustered(
        self, query: str, k: int = 10
    ) -> list[list[KeywordHit]]:
        """OCTOPUS-style: top-k hits grouped by identical schema signature."""
        hits = self.search(query, k)
        clusters: dict[tuple[str, ...], list[KeywordHit]] = {}
        order: list[tuple[str, ...]] = []
        for h in hits:
            sig = self._schemas.get(h.table, ())
            if sig not in clusters:
                clusters[sig] = []
                order.append(sig)
            clusters[sig].append(h)
        return [clusters[sig] for sig in order]
