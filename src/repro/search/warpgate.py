"""WarpGate: semantic join discovery for cloud warehouses (Cong et al.,
2022; survey §2.4).

PEXESO matches individual *values*; WarpGate works one level up — it embeds
whole columns and retrieves the top-k semantically joinable columns from a
vector index.  The reproduction embeds columns as sampled-value centroids
(optionally contextualized), indexes them in HNSW, and ranks candidates by
cosine, with an optional exact-overlap re-check emulating WarpGate's
verification stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datalake.lake import DataLake
from repro.datalake.table import Column, ColumnRef
from repro.search.results import ColumnResult
from repro.sketch.hnsw import HNSW
from repro.understanding.embedding import EmbeddingSpace


@dataclass
class WarpGateConfig:
    k_candidates: int = 32
    ef_search: int = 64
    hnsw_m: int = 8
    min_column_size: int = 2
    #: blend weight of exact overlap in the final score (0 = pure semantic)
    overlap_weight: float = 0.25


class WarpGateJoinDiscovery:
    """Column-embedding join discovery over a data lake."""

    def __init__(self, lake: DataLake, space: EmbeddingSpace,
                 config: WarpGateConfig | None = None):
        self.lake = lake
        self.space = space
        self.config = config or WarpGateConfig()
        self._index: HNSW | None = None
        self._vectors: dict[ColumnRef, np.ndarray] = {}
        self._values: dict[ColumnRef, frozenset[str]] = {}

    def build(self) -> "WarpGateJoinDiscovery":
        cfg = self.config
        self._index = HNSW(dim=self.space.dim, m=cfg.hnsw_m, metric="cosine")
        for ref, col in self.lake.iter_text_columns():
            values = col.value_set()
            if len(values) < cfg.min_column_size:
                continue
            vec = self.space.embed_set(values)
            if np.linalg.norm(vec) == 0:
                continue
            self._vectors[ref] = vec
            self._values[ref] = values
            self._index.add(ref, vec)
        return self

    def search(
        self, column: Column, k: int = 10, exclude_table: str | None = None
    ) -> list[ColumnResult]:
        """Top-k semantically joinable columns for the query column."""
        if self._index is None:
            raise RuntimeError("call build() before searching")
        cfg = self.config
        q_values = column.value_set()
        q_vec = self.space.embed_set(q_values)
        if np.linalg.norm(q_vec) == 0:
            return []
        hits = self._index.search(
            q_vec, k=cfg.k_candidates, ef=cfg.ef_search
        )
        out = []
        for ref, dist in hits:
            if exclude_table is not None and ref.table == exclude_table:
                continue
            semantic = max(0.0, 1.0 - dist)
            overlap = 0.0
            if q_values:
                overlap = len(q_values & self._values[ref]) / len(q_values)
            score = (
                (1 - cfg.overlap_weight) * semantic
                + cfg.overlap_weight * overlap
            )
            out.append(ColumnResult(ref, score))
        return sorted(out)[:k]
