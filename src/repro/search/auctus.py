"""Auctus-style dataset search (Castelo et al., VLDB'21; survey §2.6).

Auctus serves open-data portals by *profiling* every dataset (temporal
coverage, numeric ranges, entity columns) and answering faceted queries
that combine keywords with coverage constraints and an augmentation intent
("joinable with my table").  The reproduction profiles lake tables and
supports those query facets over the profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.datalake.types import DataType
from repro.search.keyword import KeywordSearchEngine


@dataclass
class DatasetProfile:
    """Per-dataset profile: what Auctus computes at ingestion time."""

    table: str
    num_rows: int = 0
    num_cols: int = 0
    #: (min iso date, max iso date) over all date columns, if any
    temporal_coverage: tuple[str, str] | None = None
    #: column name -> (min, max) for numeric columns
    numeric_ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: names of candidate entity (high-distinct text) columns
    entity_columns: list[str] = field(default_factory=list)

    def covers_dates(self, start: str, end: str) -> bool:
        """Does the dataset's temporal coverage intersect [start, end]?"""
        if self.temporal_coverage is None:
            return False
        lo, hi = self.temporal_coverage
        return lo <= end and start <= hi


def profile_table(table: Table) -> DatasetProfile:
    """Compute the Auctus-style profile of one table."""
    profile = DatasetProfile(
        table=table.name, num_rows=table.num_rows, num_cols=table.num_cols
    )
    dates: list[str] = []
    for i, col in enumerate(table.columns):
        if col.dtype is DataType.DATE:
            dates.extend(v.strip() for v in col.non_null_values())
        elif col.is_numeric:
            nums = col.numeric_values()
            nums = nums[np.isfinite(nums)]
            if len(nums):
                profile.numeric_ranges[col.name] = (
                    float(nums.min()),
                    float(nums.max()),
                )
        else:
            n = max(len(col), 1)
            if col.distinct_count() / n >= 0.6 and col.distinct_count() >= 3:
                profile.entity_columns.append(col.name)
    if dates:
        profile.temporal_coverage = (min(dates), max(dates))
    return profile


@dataclass
class AuctusHit:
    table: str
    score: float
    profile: DatasetProfile

    def __lt__(self, other: "AuctusHit") -> bool:
        return (-self.score, self.table) < (-other.score, other.table)


class AuctusSearch:
    """Faceted dataset search over profiles + metadata keywords."""

    def __init__(self, lake: DataLake):
        self.lake = lake
        self._profiles: dict[str, DatasetProfile] = {}
        self._keyword = KeywordSearchEngine()
        self._built = False

    def build(self) -> "AuctusSearch":
        for table in self.lake:
            self._profiles[table.name] = profile_table(table)
        self._keyword.index_lake(self.lake)
        self._built = True
        return self

    def profile(self, table_name: str) -> DatasetProfile:
        if not self._built:
            raise RuntimeError("call build() before querying")
        return self._profiles[table_name]

    def search(
        self,
        keywords: str | None = None,
        date_range: tuple[str, str] | None = None,
        numeric_column: str | None = None,
        joinable_with: Table | None = None,
        join_key: int = 0,
        min_join_containment: float = 0.3,
        k: int = 10,
    ) -> list[AuctusHit]:
        """Faceted search: all facets are conjunctive filters; keyword score
        (when given) ranks the survivors, otherwise profile size does."""
        if not self._built:
            raise RuntimeError("call build() before querying")
        scores: dict[str, float] = {}
        if keywords:
            for hit in self._keyword.search(keywords, k=len(self._profiles)):
                scores[hit.table] = hit.score
            candidates = set(scores)
        else:
            candidates = set(self._profiles)

        if joinable_with is not None:
            q_values = joinable_with.columns[join_key].value_set()
            joined = set()
            for name in candidates:
                if name == joinable_with.name or not q_values:
                    continue
                table = self.lake.table(name)
                best = 0.0
                for _, col in table.text_columns():
                    inter = len(q_values & col.value_set())
                    best = max(best, inter / len(q_values))
                if best >= min_join_containment:
                    joined.add(name)
                    scores[name] = scores.get(name, 0.0) + best
            candidates = joined

        out = []
        for name in candidates:
            profile = self._profiles[name]
            if date_range is not None and not profile.covers_dates(*date_range):
                continue
            if (
                numeric_column is not None
                and numeric_column not in profile.numeric_ranges
            ):
                continue
            score = scores.get(name, 0.0) or profile.num_rows / 1000.0
            out.append(AuctusHit(name, score, profile))
        return sorted(out)[:k]
