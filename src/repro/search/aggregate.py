"""Column-score -> table-score aggregation via bipartite matching.

Unionable table search scores pairs of (query column, candidate column) and
must aggregate them into one table-level score under a one-to-one alignment
(survey §2.5, TUS and Starmie both do this).  Two matchers: exact Hungarian
(scipy) and the greedy matcher Starmie uses for speed.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment


def hungarian_alignment(
    scores: np.ndarray,
) -> tuple[float, list[tuple[int, int, float]]]:
    """Optimal one-to-one alignment maximizing total score.

    ``scores[i, j]`` is the similarity of query column i and candidate
    column j.  Returns (total score, [(i, j, score)]).
    """
    scores = np.asarray(scores, dtype=float)
    if scores.size == 0:
        return 0.0, []
    rows, cols = linear_sum_assignment(-scores)
    pairs = [
        (int(i), int(j), float(scores[i, j]))
        for i, j in zip(rows, cols)
        if scores[i, j] > 0
    ]
    return float(sum(p[2] for p in pairs)), pairs


def greedy_alignment(
    scores: np.ndarray,
) -> tuple[float, list[tuple[int, int, float]]]:
    """Greedy matcher: repeatedly take the highest unmatched pair."""
    scores = np.asarray(scores, dtype=float)
    if scores.size == 0:
        return 0.0, []
    entries = [
        (float(scores[i, j]), i, j)
        for i in range(scores.shape[0])
        for j in range(scores.shape[1])
        if scores[i, j] > 0
    ]
    entries.sort(key=lambda e: (-e[0], e[1], e[2]))
    used_q: set[int] = set()
    used_c: set[int] = set()
    pairs = []
    for s, i, j in entries:
        if i in used_q or j in used_c:
            continue
        used_q.add(i)
        used_c.add(j)
        pairs.append((i, j, s))
    return float(sum(p[2] for p in pairs)), pairs


def table_unionability(
    scores: np.ndarray, method: str = "hungarian", normalize: bool = True
) -> tuple[float, list[tuple[int, int, float]]]:
    """Aggregate a column-score matrix to a table score in [0, 1].

    Normalization divides by the query column count so tables that align
    *all* query columns outrank tables matching only a few.
    """
    if method == "hungarian":
        total, pairs = hungarian_alignment(scores)
    elif method == "greedy":
        total, pairs = greedy_alignment(scores)
    else:
        raise ValueError(f"unknown alignment method {method!r}")
    if normalize and scores.size:
        total /= scores.shape[0]
    return total, pairs
