"""EXPLAIN provenance: per-stage candidate funnels for search queries.

Every engine can answer *why* a query returned what it did: how many
candidates each internal stage generated, how many each filter pruned, and
what thresholds were in force.  Engines accept ``explain=True`` and return
``(results, ExplainReport)``; the report is a strictly shrinking funnel —
each stage's count is at most the previous stage's — so consumers (tests,
the CLI, the query log) can check internal consistency mechanically.

The report is JSON-ready (``to_dict``) and renders as an ASCII funnel
(``render``) for ``repro query --explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


def summarize_results(hits: list, limit: int = 20) -> list[tuple[str, float]]:
    """Uniform ``(identifier, score)`` pairs for any engine's hit type.

    Understands ``KeywordHit``/``TableResult``/``MateHit`` (``.table``),
    ``ColumnResult`` (``.ref``), and ``CorrelatedHit`` (``.correlation``
    instead of ``.score``).
    """
    out: list[tuple[str, float]] = []
    for hit in hits[:limit]:
        ident = getattr(hit, "table", None)
        if ident is None:
            ident = str(getattr(hit, "ref", hit))
        elif getattr(hit, "key_column", None) is not None:
            ident = f"{ident}[{hit.key_column},{hit.value_column}]"
        score = getattr(hit, "score", None)
        if score is None:
            score = getattr(hit, "correlation", 0.0)
        out.append((str(ident), round(float(score), 6)))
    return out


@dataclass
class FunnelStage:
    """One stage of the candidate funnel: a name, a count, and details."""

    name: str
    count: int
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"stage": self.name, "count": self.count}
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


@dataclass
class ExplainReport:
    """A per-query provenance report: parameters, funnel, results."""

    engine: str
    query: str = ""
    k: int = 0
    params: dict[str, Any] = field(default_factory=dict)
    stages: list[FunnelStage] = field(default_factory=list)
    results: list[tuple[str, float]] = field(default_factory=list)

    def stage(self, name: str, count: int, **detail: Any) -> "ExplainReport":
        """Append one funnel stage; returns self for chaining."""
        self.stages.append(FunnelStage(name, int(count), detail))
        return self

    def counts(self) -> dict[str, int]:
        """``{stage name: count}`` in funnel order."""
        return {s.name: s.count for s in self.stages}

    def is_monotone(self) -> bool:
        """True iff every stage's count is <= the previous stage's."""
        counts = [s.count for s in self.stages]
        return all(b <= a for a, b in zip(counts, counts[1:]))

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "query": self.query,
            "k": self.k,
            "params": dict(self.params),
            "funnel": [s.to_dict() for s in self.stages],
            "results": [list(r) for r in self.results],
        }

    def render(self) -> str:
        """ASCII funnel: stage bars scaled to the first stage's count."""
        lines = [f"EXPLAIN {self.engine}  query={self.query!r}  k={self.k}"]
        if self.params:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
            lines.append(f"params: {inner}")
        top = max((s.count for s in self.stages), default=0)
        width = max(len(s.name) for s in self.stages) if self.stages else 0
        for s in self.stages:
            bar = "#" * (round(30 * s.count / top) if top else 0)
            detail = ""
            if s.detail:
                inner = ", ".join(f"{k}={v}" for k, v in sorted(s.detail.items()))
                detail = f"  ({inner})"
            lines.append(f"  {s.name:<{width}} {s.count:>8}  {bar}{detail}")
        if self.results:
            lines.append("results:")
            for ident, score in self.results:
                lines.append(f"  {ident}\t{score:.3f}")
        return "\n".join(lines)
