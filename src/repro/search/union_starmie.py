"""Starmie: contextualized-embedding unionable table search (Fan et al., 2022).

Columns are encoded with table-context-aware representations
(``ContextualColumnEncoder``); an ANN index (HNSW, LSH over random
hyperplanes, or linear scan — the E6 ablation axis) retrieves similar
columns, and per-column cosines are aggregated into table scores with the
greedy matcher.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.datalake.lake import DataLake
from repro.datalake.table import ColumnRef, Table
from repro.obs import METRICS, TRACER
from repro.search.aggregate import table_unionability
from repro.search.explain import ExplainReport, summarize_results
from repro.search.results import TableResult
from repro.sketch.hashing import stable_hash64
from repro.sketch.hnsw import HNSW
from repro.understanding.contextual import ContextualColumnEncoder

INDEX_KINDS = ("linear", "lsh", "hnsw")


@dataclass
class StarmieConfig:
    index: str = "hnsw"
    candidates_per_column: int = 20
    alignment: str = "greedy"
    hnsw_m: int = 8
    ef_search: int = 48
    lsh_planes: int = 16
    lsh_tables: int = 8


class _RandomHyperplaneLSH:
    """Cosine LSH: sign patterns under random hyperplanes, multiple tables."""

    def __init__(self, dim: int, planes: int, tables: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        self._planes = [
            rng.normal(size=(planes, dim)) for _ in range(tables)
        ]
        self._buckets: list[dict[int, list[ColumnRef]]] = [
            defaultdict(list) for _ in range(tables)
        ]

    def _sig(self, t: int, v: np.ndarray) -> int:
        bits = (self._planes[t] @ v) > 0
        out = 0
        for b in bits:
            out = (out << 1) | int(b)
        return out

    def insert(self, key: ColumnRef, v: np.ndarray) -> None:
        for t, buckets in enumerate(self._buckets):
            buckets[self._sig(t, v)].append(key)

    def query(self, v: np.ndarray) -> list[ColumnRef]:
        seen, out = set(), []
        for t, buckets in enumerate(self._buckets):
            for key in buckets.get(self._sig(t, v), ()):
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out


class StarmieUnionSearch:
    """Contextual column embeddings + ANN retrieval + greedy aggregation."""

    def __init__(
        self,
        lake: DataLake,
        encoder: ContextualColumnEncoder,
        config: StarmieConfig | None = None,
    ):
        self.lake = lake
        self.encoder = encoder
        self.config = config or StarmieConfig()
        if self.config.index not in INDEX_KINDS:
            raise ValueError(f"unknown index kind {self.config.index!r}")
        self._vectors: dict[ColumnRef, np.ndarray] = {}
        self._hnsw: HNSW | None = None
        self._lsh: _RandomHyperplaneLSH | None = None
        self._built = False

    # -- offline -----------------------------------------------------------------

    def build(self) -> "StarmieUnionSearch":
        cfg = self.config
        dim = self.encoder.space.dim
        for table in self.lake:
            vecs = self.encoder.encode_table(table)
            for i, col in enumerate(table.columns):
                if col.is_numeric or np.linalg.norm(vecs[i]) == 0:
                    continue
                self._vectors[ColumnRef(table.name, i)] = vecs[i]
        if cfg.index == "hnsw":
            seed = stable_hash64("starmie") % (2**31)
            self._hnsw = HNSW(dim=dim, m=cfg.hnsw_m, metric="cosine", seed=seed)
            for ref, v in self._vectors.items():
                self._hnsw.add(ref, v)
        elif cfg.index == "lsh":
            self._lsh = _RandomHyperplaneLSH(dim, cfg.lsh_planes, cfg.lsh_tables)
            for ref, v in self._vectors.items():
                self._lsh.insert(ref, v)
        self._built = True
        METRICS.inc("index.starmie.columns_indexed", len(self._vectors))
        return self

    def stats(self) -> dict:
        """Introspection: embedded column store plus the ANN index behind it."""
        out = {
            "columns": len(self._vectors),
            "index": self.config.index,
            "dim": self.encoder.space.dim,
        }
        if self._hnsw is not None:
            out["hnsw"] = self._hnsw.stats()
        if self._lsh is not None:
            out["lsh_tables"] = len(self._lsh._buckets)
            out["lsh_buckets"] = sum(len(b) for b in self._lsh._buckets)
        return out

    # -- retrieval -------------------------------------------------------------------

    def _column_candidates(self, v: np.ndarray) -> list[tuple[ColumnRef, float]]:
        cfg = self.config
        if cfg.index == "hnsw":
            hits = self._hnsw.search(v, k=cfg.candidates_per_column, ef=cfg.ef_search)
            return [(ref, 1.0 - d) for ref, d in hits]
        if cfg.index == "lsh":
            refs = self._lsh.query(v)
            scored = [
                (ref, float(np.dot(v, self._vectors[ref]))) for ref in refs
            ]
            scored.sort(key=lambda kv: (-kv[1], str(kv[0])))
            return scored[: cfg.candidates_per_column]
        # linear scan
        scored = [
            (ref, float(np.dot(v, u))) for ref, u in self._vectors.items()
        ]
        scored.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return scored[: cfg.candidates_per_column]

    def search(self, query: Table, k: int = 10, explain: bool = False):
        """Top-k unionable tables by aggregated contextual-cosine alignment.

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        if not self._built:
            raise RuntimeError("call build() before searching")
        qvecs = self.encoder.encode_table(query)
        qcols = [
            (i, qvecs[i])
            for i, col in enumerate(query.columns)
            if not col.is_numeric and np.linalg.norm(qvecs[i]) > 0
        ]
        if not qcols:
            if explain:
                return [], ExplainReport(
                    "starmie", query=query.name, k=k
                )
            return []
        # Gather per-table candidate column sets from per-column retrieval.
        table_cols: dict[str, set[int]] = defaultdict(set)
        candidates_examined = 0
        for _, v in qcols:
            for ref, _score in self._column_candidates(v):
                candidates_examined += 1
                if ref.table != query.name:
                    table_cols[ref.table].add(ref.index)
        results = []
        for name, col_ids in table_cols.items():
            cols = sorted(col_ids)
            scores = np.zeros((len(qcols), len(cols)))
            for qi, (_, v) in enumerate(qcols):
                for cj, ci in enumerate(cols):
                    u = self._vectors.get(ColumnRef(name, ci))
                    if u is not None:
                        scores[qi, cj] = max(0.0, float(np.dot(v, u)))
            total, pairs = table_unionability(
                scores, method=self.config.alignment
            )
            if total > 0:
                alignment = tuple((qi, cols[cj], s) for qi, cj, s in pairs)
                results.append(TableResult(name, total, alignment))
        METRICS.inc("search.starmie.queries")
        METRICS.inc("search.starmie.candidates_examined", candidates_examined)
        METRICS.inc("search.starmie.tables_scored", len(table_cols))
        sp = TRACER.current()
        sp.set("starmie.candidates_examined", candidates_examined)
        sp.set("starmie.tables_scored", len(table_cols))
        out = sorted(results)[:k]
        if explain:
            report = ExplainReport(
                "starmie",
                query=query.name,
                k=k,
                params={
                    "index": self.config.index,
                    "candidates_per_column": self.config.candidates_per_column,
                    "query_columns": len(qcols),
                },
            )
            report.stage("candidate_probes", candidates_examined)
            report.stage("tables_scored", len(table_cols))
            report.stage("positive_alignment", len(results))
            report.stage("returned", len(out))
            report.results = summarize_results(out)
            return out, report
        return out
