"""Result types shared by every search engine in the library."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalake.table import ColumnRef


@dataclass(frozen=True)
class ColumnResult:
    """A ranked column-level hit."""

    ref: ColumnRef
    score: float

    def __lt__(self, other: "ColumnResult") -> bool:
        return (-self.score, str(self.ref)) < (-other.score, str(other.ref))


@dataclass(frozen=True)
class TableResult:
    """A ranked table-level hit with optional per-column alignment detail."""

    table: str
    score: float
    #: query column index -> (candidate column index, column score)
    alignment: tuple[tuple[int, int, float], ...] = field(default_factory=tuple)

    def __lt__(self, other: "TableResult") -> bool:
        return (-self.score, self.table) < (-other.score, other.table)


def top_k(results: list, k: int) -> list:
    """Deterministically sorted top-k (score desc, then name asc)."""
    return sorted(results)[:k]
