"""Valentine-style schema matching evaluation (Koutras et al., ICDE'21).

The survey (§2.1) cites Valentine as the framework that systematized
dataset-discovery *matching*: given two tables, produce ranked column
correspondences, and evaluate matchers against ground truth.  This module
implements the framework — a matcher interface, four matchers spanning
Valentine's schema-based/instance-based axes, and its evaluation metrics
(precision/recall at sizes, recall@ground-truth).

Matchers:
* ``HeaderMatcher``        — schema-based: header token Jaccard;
* ``ValueOverlapMatcher``  — instance-based: value-set Jaccard;
* ``DistributionMatcher``  — instance-based: numeric distribution similarity;
* ``EmbeddingMatcher``     — instance-based: embedding cosine;
* ``CompositeMatcher``     — weighted combination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datalake.table import Column, Table, tokenize
from repro.understanding.embedding import EmbeddingSpace


@dataclass(frozen=True)
class Correspondence:
    """One ranked column correspondence between two tables."""

    source: int  # column index in the source table
    target: int  # column index in the target table
    score: float

    def __lt__(self, other: "Correspondence") -> bool:
        return (-self.score, self.source, self.target) < (
            -other.score,
            other.source,
            other.target,
        )


class Matcher:
    """Interface: score one column pair in [0, 1]."""

    name = "matcher"

    def score(self, a: Column, b: Column) -> float:
        raise NotImplementedError

    def match(self, source: Table, target: Table) -> list[Correspondence]:
        """All positive-scoring pairs, ranked by score."""
        out = []
        for i, a in enumerate(source.columns):
            for j, b in enumerate(target.columns):
                s = self.score(a, b)
                if s > 0:
                    out.append(Correspondence(i, j, s))
        return sorted(out)


class HeaderMatcher(Matcher):
    """Schema-based: Jaccard over header tokens."""

    name = "header"

    def score(self, a: Column, b: Column) -> float:
        ta, tb = set(tokenize(a.name)), set(tokenize(b.name))
        if not ta or not tb:
            return 0.0
        return len(ta & tb) / len(ta | tb)


class ValueOverlapMatcher(Matcher):
    """Instance-based: Jaccard over distinct values (text columns)."""

    name = "value-overlap"

    def score(self, a: Column, b: Column) -> float:
        va, vb = a.value_set(), b.value_set()
        if not va or not vb:
            return 0.0
        return len(va & vb) / len(va | vb)


class DistributionMatcher(Matcher):
    """Instance-based: similarity of numeric distributions (mean/std/range
    overlap); 0 for non-numeric pairs."""

    name = "distribution"

    def score(self, a: Column, b: Column) -> float:
        if not (a.is_numeric and b.is_numeric):
            return 0.0
        xa = a.numeric_values()
        xb = b.numeric_values()
        xa = xa[np.isfinite(xa)]
        xb = xb[np.isfinite(xb)]
        if len(xa) < 2 or len(xb) < 2:
            return 0.0
        lo = max(float(xa.min()), float(xb.min()))
        hi = min(float(xa.max()), float(xb.max()))
        span = max(float(xa.max()), float(xb.max())) - min(
            float(xa.min()), float(xb.min())
        )
        range_overlap = max(0.0, hi - lo) / span if span > 0 else 1.0
        scale = max(float(np.std(xa)), float(np.std(xb)), 1e-9)
        mean_sim = 1.0 / (1.0 + abs(float(np.mean(xa) - np.mean(xb))) / scale)
        return 0.5 * range_overlap + 0.5 * mean_sim


class EmbeddingMatcher(Matcher):
    """Instance-based: cosine of mean value embeddings (text columns)."""

    name = "embedding"

    def __init__(self, space: EmbeddingSpace):
        self.space = space

    def score(self, a: Column, b: Column) -> float:
        if a.is_numeric or b.is_numeric:
            return 0.0
        va = self.space.embed_set(a.value_set())
        vb = self.space.embed_set(b.value_set())
        return max(0.0, float(np.dot(va, vb)))


class CompositeMatcher(Matcher):
    """Weighted max-combination of component matchers."""

    name = "composite"

    def __init__(self, matchers: list[tuple[Matcher, float]]):
        if not matchers:
            raise ValueError("composite matcher needs at least one component")
        self.matchers = matchers

    def score(self, a: Column, b: Column) -> float:
        return max(w * m.score(a, b) for m, w in self.matchers)


# -- evaluation (Valentine's metrics) -----------------------------------------


def precision_at_size(
    ranked: list[Correspondence],
    truth: set[tuple[int, int]],
    size: int,
) -> float:
    """Fraction of the top-``size`` correspondences that are true matches."""
    if size <= 0:
        return 0.0
    top = ranked[:size]
    if not top:
        return 0.0
    hits = sum(1 for c in top if (c.source, c.target) in truth)
    return hits / len(top)


def recall_at_ground_truth(
    ranked: list[Correspondence], truth: set[tuple[int, int]]
) -> float:
    """Valentine's headline metric: recall within the top-|truth| ranks."""
    if not truth:
        return 1.0
    top = ranked[: len(truth)]
    hits = sum(1 for c in top if (c.source, c.target) in truth)
    return hits / len(truth)


def evaluate_matcher(
    matcher: Matcher,
    pairs: list[tuple[Table, Table, set[tuple[int, int]]]],
) -> dict[str, float]:
    """Mean precision@|truth| and recall@ground-truth over table pairs."""
    precisions, recalls = [], []
    for source, target, truth in pairs:
        ranked = matcher.match(source, target)
        precisions.append(precision_at_size(ranked, truth, len(truth)))
        recalls.append(recall_at_ground_truth(ranked, truth))
    n = max(len(pairs), 1)
    return {
        "precision": sum(precisions) / n,
        "recall_at_gt": sum(recalls) / n,
    }
