"""InfoGather-style entity augmentation (Yakout et al., SIGMOD'12).

The earliest joinable-search flavour the survey covers (§2.4): given a
query table's entity column, *augment* it —

* **by attribute name**: find lake columns whose header matches a requested
  attribute and whose table joins on the entities, then fill values;
* **by example**: given a few (entity, value) examples, find lake column
  pairs consistent with them and extend the mapping to the other entities.

Holistic matching is approximated by voting across all supporting tables,
which is the mechanism InfoGather's PPR propagation ultimately feeds.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.datalake.lake import DataLake
from repro.datalake.table import tokenize


def _header_similarity(a: str, b: str) -> float:
    ta, tb = set(tokenize(a)), set(tokenize(b))
    if not ta or not tb:
        return 0.0
    return len(ta & tb) / len(ta | tb)


@dataclass
class Augmentation:
    """Result of an augmentation request."""

    #: entity -> predicted value (majority vote across supporting tables)
    values: dict[str, str] = field(default_factory=dict)
    #: entity -> number of supporting (table, column) pairs
    support: dict[str, int] = field(default_factory=dict)
    #: tables that contributed at least one value
    sources: list[str] = field(default_factory=list)

    def coverage(self, entities: list[str]) -> float:
        if not entities:
            return 0.0
        hit = sum(1 for e in entities if e.strip().lower() in self.values)
        return hit / len(entities)


class InfoGather:
    """Entity augmentation over a data lake."""

    def __init__(self, lake: DataLake, min_header_similarity: float = 0.5):
        self.lake = lake
        self.min_header_similarity = min_header_similarity
        #: value -> [(table, column index, row)] occurrences of entities
        self._entity_index: dict[str, list[tuple[str, int, int]]] = defaultdict(list)
        self._built = False

    def build(self) -> "InfoGather":
        """Index every text cell for entity lookup."""
        for table in self.lake:
            for ci, col in table.text_columns():
                for ri, raw in enumerate(col.values):
                    v = raw.strip().lower()
                    if v:
                        self._entity_index[v].append((table.name, ci, ri))
        self._built = True
        return self

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("call build() before augmenting")

    # -- augmentation by attribute name ------------------------------------------

    def augment_by_attribute(
        self, entities: list[str], attribute: str
    ) -> Augmentation:
        """Fill ``attribute`` for each entity by majority vote over lake
        tables that contain the entity and a matching-header column."""
        self._require_built()
        votes: dict[str, Counter[str]] = defaultdict(Counter)
        sources: set[str] = set()
        for raw_entity in entities:
            entity = raw_entity.strip().lower()
            for tname, ci, ri in self._entity_index.get(entity, ()):
                table = self.lake.table(tname)
                for cj, col in enumerate(table.columns):
                    if cj == ci:
                        continue
                    if (
                        _header_similarity(col.name, attribute)
                        < self.min_header_similarity
                    ):
                        continue
                    value = col.values[ri].strip()
                    if value:
                        votes[entity][value.lower()] += 1
                        sources.add(tname)
        out = Augmentation(sources=sorted(sources))
        for entity, counter in votes.items():
            value, n = counter.most_common(1)[0]
            out.values[entity] = value
            out.support[entity] = sum(counter.values())
        return out

    # -- augmentation by example ---------------------------------------------------

    def augment_by_example(
        self,
        entities: list[str],
        examples: dict[str, str],
        min_example_hits: int = 2,
    ) -> Augmentation:
        """Extend a partial (entity -> value) mapping.

        Finds (table, entity column, value column) triples consistent with
        >= ``min_example_hits`` of the examples, then applies them to the
        remaining entities with majority voting.
        """
        self._require_built()
        examples = {
            k.strip().lower(): v.strip().lower() for k, v in examples.items()
        }
        # Score candidate column pairs by example agreement.
        pair_hits: Counter[tuple[str, int, int]] = Counter()
        for entity, expected in examples.items():
            for tname, ci, ri in self._entity_index.get(entity, ()):
                table = self.lake.table(tname)
                for cj, col in enumerate(table.columns):
                    if cj == ci:
                        continue
                    if col.values[ri].strip().lower() == expected:
                        pair_hits[(tname, ci, cj)] += 1
        good_pairs = [
            pair for pair, hits in pair_hits.items() if hits >= min_example_hits
        ]
        votes: dict[str, Counter[str]] = defaultdict(Counter)
        sources: set[str] = set()
        for tname, ci, cj in good_pairs:
            table = self.lake.table(tname)
            ecol = table.columns[ci]
            vcol = table.columns[cj]
            for ri in range(table.num_rows):
                entity = ecol.values[ri].strip().lower()
                value = vcol.values[ri].strip().lower()
                if entity and value:
                    # Weight by how many examples this pair explained.
                    votes[entity][value] += pair_hits[(tname, ci, cj)]
                    sources.add(tname)
        wanted = {e.strip().lower() for e in entities}
        out = Augmentation(sources=sorted(sources))
        for entity, counter in votes.items():
            if entity in wanted and entity not in examples:
                value, _ = counter.most_common(1)[0]
                out.values[entity] = value
                out.support[entity] = sum(counter.values())
        return out
