"""MATE: multi-attribute joinable table search (Esmailoghli et al., VLDB'22).

Single-attribute overlap search cannot find tables joinable on *composite*
keys: candidates may share many values of each individual column without
containing the combinations.  MATE hashes each row into a fixed-width
*super key* — a bitmap OR of the hashes of the row's cell values — so a
candidate row can be cheaply tested for "may contain all query key cells"
before exact verification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.obs import METRICS, TRACER
from repro.search.explain import ExplainReport, summarize_results
from repro.sketch.hashing import stable_hash64


def _cell_mask(value: str, bits: int) -> int:
    """Bitmap with ``k`` bits set derived from the cell's hash (k = 2)."""
    h = stable_hash64(str(value).strip().lower(), seed=29)
    b1 = h % bits
    b2 = (h >> 32) % bits
    return (1 << b1) | (1 << b2)


def row_super_key(cells: list[str], bits: int = 64) -> int:
    """OR-aggregate the cell masks of a row into its super key."""
    key = 0
    for cell in cells:
        if str(cell).strip():
            key |= _cell_mask(cell, bits)
    return key


@dataclass(frozen=True)
class MateHit:
    table: str
    matched: int
    total: int

    @property
    def score(self) -> float:
        return self.matched / self.total if self.total else 0.0

    def __lt__(self, other: "MateHit") -> bool:
        return (-self.score, self.table) < (-other.score, other.table)


class MateIndex:
    """Super-key index over every table's rows (text cells only)."""

    def __init__(self, bits: int = 64):
        self.bits = bits
        #: table -> list of (super key, normalized text cells of the row)
        self._rows: dict[str, list[tuple[int, frozenset[str]]]] = {}

    def index_lake(self, lake: DataLake) -> None:
        for table in lake:
            self.index_table(table)

    def index_table(self, table: Table) -> None:
        text_cols = [c for _, c in table.text_columns()]
        rows = []
        for i in range(table.num_rows):
            cells = [c.values[i].strip().lower() for c in text_cols]
            cells = [c for c in cells if c]
            rows.append((row_super_key(cells, self.bits), frozenset(cells)))
        self._rows[table.name] = rows
        METRICS.inc("index.mate.rows_indexed", len(rows))

    def stats(self) -> dict:
        """Introspection: indexed row counts per table (super-key store)."""
        from repro.obs.introspect import summarize_distribution

        return {
            "tables": len(self._rows),
            "rows": sum(len(r) for r in self._rows.values()),
            "bits": self.bits,
            "rows_per_table": summarize_distribution(
                len(r) for r in self._rows.values()
            ),
        }

    def search(
        self,
        query: Table,
        key_columns: list[int],
        k: int = 10,
        exclude: str | None = None,
        explain: bool = False,
    ):
        """Top-k tables by fraction of query composite keys matched.

        A query key (tuple of cells) matches a candidate row if the row's
        super key covers all cell masks (filter) and the row actually
        contains every cell (verification).  With ``explain=True`` returns
        ``(hits, ExplainReport)``.
        """
        qkeys = []
        for i in range(query.num_rows):
            cells = tuple(
                query.columns[c].values[i].strip().lower() for c in key_columns
            )
            if all(cells):
                mask = 0
                for cell in cells:
                    mask |= _cell_mask(cell, self.bits)
                qkeys.append((cells, mask))
        if not qkeys:
            if explain:
                return [], ExplainReport(
                    "mate", query="<no usable query keys>", k=k
                )
            return []
        distinct = {}
        for cells, mask in qkeys:
            distinct[cells] = mask
        hits = []
        rows_checked = 0
        rows_passed_filter = 0
        keys_matched = 0
        for name, rows in self._rows.items():
            if name == (exclude or query.name):
                continue
            matched = 0
            for cells, mask in distinct.items():
                found = False
                for super_key, row_cells in rows:
                    rows_checked += 1
                    if (super_key & mask) != mask:
                        continue  # filter: row cannot contain all cells
                    rows_passed_filter += 1
                    if all(c in row_cells for c in cells):
                        found = True
                        break
                if found:
                    matched += 1
            if matched:
                keys_matched += matched
                hits.append(MateHit(name, matched, len(distinct)))
        out = sorted(hits)[:k]
        METRICS.inc("search.mate.queries")
        METRICS.inc("search.mate.rows_checked", rows_checked)
        METRICS.inc("search.mate.rows_passed_filter", rows_passed_filter)
        METRICS.inc("search.mate.keys_matched", keys_matched)
        METRICS.inc("search.mate.tables_matched", len(hits))
        sp = TRACER.current()
        sp.set("mate.rows_checked", rows_checked)
        sp.set("mate.rows_passed_filter", rows_passed_filter)
        if explain:
            report = ExplainReport(
                "mate",
                query=f"composite<{len(distinct)} keys>",
                k=k,
                params={"bits": self.bits, "key_columns": str(key_columns)},
            )
            report.stage(
                "rows_checked",
                rows_checked,
                query_keys=len(distinct),
                tables=len(self._rows),
            )
            report.stage("rows_passed_filter", rows_passed_filter)
            report.stage("keys_matched", keys_matched)
            report.stage("tables_matched", len(hits))
            report.stage("returned", len(out))
            report.results = summarize_results(out)
            return out, report
        return out

    def filter_stats(self, query: Table, key_columns: list[int]) -> dict:
        """How many rows the super-key filter prunes before verification."""
        qkeys = set()
        for i in range(query.num_rows):
            cells = tuple(
                query.columns[c].values[i].strip().lower() for c in key_columns
            )
            if all(cells):
                qkeys.add(cells)
        checked = passed = 0
        for cells in qkeys:
            mask = 0
            for cell in cells:
                mask |= _cell_mask(cell, self.bits)
            for name, rows in self._rows.items():
                if name == query.name:
                    continue
                for super_key, _ in rows:
                    checked += 1
                    if (super_key & mask) == mask:
                        passed += 1
        return {"rows_checked": checked, "rows_passed_filter": passed}
