"""Joinable table search facade (survey §2.4).

Wires the sketches and JOSIE over a DataLake's text columns and exposes the
three classic strategies side by side:

* ``exact_topk``        — JOSIE: exact top-k by overlap;
* ``containment``       — LSH Ensemble: approximate containment threshold;
* ``jaccard_baseline``  — plain MinHash-LSH on Jaccard, the measure shown to
  be biased against large columns (the motivation for LSH Ensemble).

Also provides Das Sarma-style schema-complement scoring of the joined pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalake.lake import DataLake
from repro.datalake.table import Column, ColumnRef
from repro.obs import METRICS, TRACER
from repro.search.explain import ExplainReport, summarize_results
from repro.search.josie import JosieIndex
from repro.search.results import ColumnResult
from repro.sketch.lsh import MinHashLSH
from repro.sketch.lshensemble import LSHEnsemble
from repro.sketch.minhash import MinHash


@dataclass
class JoinSearchConfig:
    num_perm: int = 128
    num_partitions: int = 8
    lsh_threshold: float = 0.5
    min_column_size: int = 2


class JoinableSearch:
    """Column-level joinable search over all text columns of a lake."""

    def __init__(self, lake: DataLake, config: JoinSearchConfig | None = None):
        self.lake = lake
        self.config = config or JoinSearchConfig()
        self._josie = JosieIndex()
        self._minhashes: dict[ColumnRef, MinHash] = {}
        self._sizes: dict[ColumnRef, int] = {}
        self._ensemble: LSHEnsemble | None = None
        self._jaccard_lsh: MinHashLSH | None = None
        self._built = False

    # -- offline ----------------------------------------------------------------

    def build(self) -> "JoinableSearch":
        """Index every text column: JOSIE sets, MinHashes, LSH structures."""
        cfg = self.config
        entries = []
        for ref, col in self.lake.iter_text_columns():
            values = col.value_set()
            if len(values) < cfg.min_column_size:
                continue
            self._josie.insert(ref, values)
            mh = MinHash.from_values(values, num_perm=cfg.num_perm)
            self._minhashes[ref] = mh
            self._sizes[ref] = len(values)
            entries.append((ref, mh, len(values)))
        self._ensemble = LSHEnsemble(
            num_partitions=cfg.num_partitions, num_perm=cfg.num_perm
        )
        self._ensemble.index(entries)
        self._jaccard_lsh = MinHashLSH(
            threshold=cfg.lsh_threshold, num_perm=cfg.num_perm
        )
        for ref, mh, _ in entries:
            self._jaccard_lsh.insert(ref, mh)
        self._built = True
        METRICS.inc("index.minhash.signatures_built", len(entries))
        return self

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("call build() before querying")

    # Public views over the three underlying indexes, so introspection and
    # the engine adapters never reach into private attributes.
    @property
    def josie(self) -> JosieIndex:
        """The JOSIE exact-overlap index."""
        return self._josie

    @property
    def ensemble(self) -> LSHEnsemble | None:
        """The LSH Ensemble containment filter (built)."""
        return self._ensemble

    @property
    def jaccard_lsh(self) -> MinHashLSH | None:
        """The plain Jaccard MinHash-LSH baseline index (built)."""
        return self._jaccard_lsh

    @property
    def indexed_columns(self) -> int:
        """Number of text columns indexed by all three structures."""
        return len(self._sizes)

    def stats(self) -> dict:
        """Introspection over the three join indexes this facade holds."""
        self._require_built()
        return {
            "columns": len(self._sizes),
            "josie": self._josie.stats(),
            "lshensemble": self._ensemble.stats(),
            "jaccard_lsh": self._jaccard_lsh.stats(),
        }

    @staticmethod
    def _query_values(column: Column) -> set[str]:
        return set(column.value_set())

    # -- online -------------------------------------------------------------------

    def exact_topk(
        self,
        column: Column,
        k: int = 10,
        exclude_table: str | None = None,
        explain: bool = False,
    ):
        """JOSIE exact top-k joinable columns by overlap with the query.

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        values = self._query_values(column)
        raw, stats = self._josie.topk_with_stats(values, k + 8)
        out = [
            ColumnResult(ref, overlap / max(len(values), 1))
            for ref, overlap in raw
            if exclude_table is None or ref.table != exclude_table
        ]
        out = sorted(out)[:k]
        if explain:
            report = ExplainReport(
                "josie",
                query=f"column<{len(values)} values>",
                k=k,
                params={
                    "query_tokens": stats["query_tokens"],
                    "posting_lists_read": stats["posting_lists_read"],
                    "posting_entries_read": stats["posting_entries_read"],
                },
            )
            report.stage("indexed_sets", len(self._josie))
            report.stage("candidates_examined", stats["candidates_examined"])
            report.stage("verified", stats["sets_verified"])
            report.stage("positive_overlap", len(raw))
            report.stage("returned", len(out))
            report.results = summarize_results(out)
            return out, report
        return out

    def containment(
        self,
        column: Column,
        threshold: float = 0.5,
        exclude_table: str | None = None,
        explain: bool = False,
    ):
        """LSH Ensemble candidates verified to containment >= threshold.

        The ensemble is the filter; verification is *exact* against the
        stored value sets (the standard filter-verify architecture), so
        precision is 1.0 and recall is bounded only by the filter.
        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        self._require_built()
        values = self._query_values(column)
        mh = MinHash.from_values(values, num_perm=self.config.num_perm)
        candidates = list(self._ensemble.query(mh, len(values), threshold))
        out = []
        checked = 0
        for ref in candidates:
            if exclude_table is not None and ref.table == exclude_table:
                continue
            checked += 1
            containment = len(values & self._josie.set_of(ref)) / max(
                len(values), 1
            )
            if containment >= threshold:
                out.append(ColumnResult(ref, containment))
        METRICS.inc("search.containment.candidates_checked", checked)
        METRICS.inc("search.containment.candidates_pruned", checked - len(out))
        sp = TRACER.current()
        sp.set("containment.candidates_checked", checked)
        sp.set("containment.results", len(out))
        out = sorted(out)
        if explain:
            report = ExplainReport(
                "lshensemble",
                query=f"column<{len(values)} values>",
                k=0,
                params={
                    "threshold": threshold,
                    "num_perm": self.config.num_perm,
                    "num_partitions": self.config.num_partitions,
                },
            )
            report.stage("indexed_columns", len(self._sizes))
            report.stage("candidates", len(candidates))
            report.stage("checked", checked)
            report.stage("passed_threshold", len(out))
            report.results = summarize_results(out)
            return out, report
        return out

    def containment_candidates(
        self, column: Column, threshold: float = 0.5
    ) -> list[ColumnRef]:
        """Unverified LSH Ensemble candidate set (recall measurement)."""
        self._require_built()
        values = self._query_values(column)
        mh = MinHash.from_values(values, num_perm=self.config.num_perm)
        return list(self._ensemble.query(mh, len(values), threshold))

    def jaccard_baseline(
        self, column: Column, exclude_table: str | None = None
    ) -> list[ColumnResult]:
        """Plain Jaccard-threshold LSH (the biased baseline of E2)."""
        self._require_built()
        values = self._query_values(column)
        mh = MinHash.from_values(values, num_perm=self.config.num_perm)
        hits = self._jaccard_lsh.query_verified(mh)
        return [
            ColumnResult(ref, score)
            for ref, score in hits
            if exclude_table is None or ref.table != exclude_table
        ]

    # -- schema complement ------------------------------------------------------------

    def schema_complement_score(
        self, query_table_name: str, candidate: ColumnRef
    ) -> float:
        """Das Sarma-style benefit of joining: how many *new* attributes the
        candidate table adds, weighted by join-key coverage."""
        self._require_built()
        query_table = self.lake.table(query_table_name)
        cand_table = self.lake.table(candidate.table)
        query_headers = {h.lower() for h in query_table.header}
        new_attrs = sum(
            1 for h in cand_table.header if h.lower() not in query_headers
        )
        return new_attrs / max(cand_table.num_cols, 1)
