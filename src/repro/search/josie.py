"""JOSIE: exact top-k overlap set similarity search (Zhu et al., SIGMOD'19).

Given a query set of values, return the k indexed columns with the largest
exact overlap |Q ∩ X|.  The algorithm processes the query tokens'
posting lists in ascending document-frequency order (rare first) and
interleaves *candidate verification* (reading a candidate's full value set)
with *list probing*, terminating early once no unverified candidate's upper
bound — current partial count plus remaining unprocessed tokens — can beat
the k-th best verified overlap.  Results are exact; early termination only
skips work that provably cannot change the answer.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable

from repro.core.errors import IndexError_
from repro.obs import METRICS, TRACER
from repro.sketch.inverted import InvertedIndex


class JosieIndex:
    """Inverted index + stored sets supporting exact top-k overlap search."""

    def __init__(self):
        self._inv = InvertedIndex()
        self._sets: dict[Hashable, frozenset[str]] = {}

    def __len__(self) -> int:
        return len(self._sets)

    def insert(self, key: Hashable, values: Iterable[str]) -> None:
        if key in self._sets:
            raise IndexError_(f"duplicate key {key!r}")
        vset = frozenset(str(v) for v in values)
        self._sets[key] = vset
        self._inv.insert(key, vset)
        METRICS.inc("index.josie.sets_indexed")
        METRICS.inc("index.josie.values_indexed", len(vset))

    def set_of(self, key: Hashable) -> frozenset[str]:
        return self._sets[key]

    def stats(self) -> dict:
        """Introspection: set-size skew plus the inverted index's posting
        distribution (the two drivers of JOSIE's probe/verify cost)."""
        from repro.obs.introspect import summarize_distribution

        out = self._inv.stats()
        out["sets"] = len(self._sets)
        out["set_size"] = summarize_distribution(
            len(s) for s in self._sets.values()
        )
        return out

    # -- baseline -------------------------------------------------------------------

    def full_merge_topk(
        self, query: Iterable[str], k: int = 10
    ) -> list[tuple[Hashable, int]]:
        """Exact top-k by merging *all* posting lists (the MergeList baseline
        JOSIE compares against)."""
        counts = self._inv.overlaps(set(query))
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[:k]

    # -- JOSIE ------------------------------------------------------------------------

    def topk(
        self, query: Iterable[str], k: int = 10
    ) -> list[tuple[Hashable, int]]:
        """Exact top-k overlap search with early termination.

        Returns [(key, overlap)] sorted by overlap desc; ties by key.
        """
        stats = self.topk_with_stats(query, k)
        return stats[0]

    def topk_with_stats(
        self, query: Iterable[str], k: int = 10
    ) -> tuple[list[tuple[Hashable, int]], dict]:
        """As ``topk`` but also reports probe/verification work counters."""
        qset = set(str(v) for v in query)
        # Rare tokens first: smallest posting lists shrink candidates fastest.
        tokens = sorted(
            (t for t in qset if self._inv.document_frequency(t) > 0),
            key=lambda t: (self._inv.document_frequency(t), t),
        )
        total = len(tokens)
        partial: dict[Hashable, int] = {}
        posting_lists_read = 0
        posting_entries_read = 0
        remaining = total

        # Phase 1 — probe posting lists until no *unseen* candidate can still
        # reach the top-k: the kth largest partial count (a lower bound on
        # exact overlap) must beat `remaining` (an upper bound for unseen).
        for i, token in enumerate(tokens):
            remaining = total - i - 1
            postings = self._inv.postings(token)
            posting_lists_read += 1
            posting_entries_read += len(postings)
            for key in postings:
                partial[key] = partial.get(key, 0) + 1
            if len(partial) >= k:
                kth_lower = heapq.nlargest(k, partial.values())[-1]
                # Strict: an unseen candidate reaching exactly `remaining`
                # could otherwise tie with the kth result and win the
                # deterministic key tie-break.
                if kth_lower > remaining:
                    break

        # Phase 2 — verify candidates in upper-bound order; stop when the
        # next upper bound cannot beat the kth best verified exact overlap.
        order = sorted(
            partial.items(), key=lambda kv: (-(kv[1] + remaining), str(kv[0]))
        )
        verified: dict[Hashable, int] = {}
        best: list[tuple[int, str]] = []  # min-heap of top-k exact overlaps
        sets_verified = 0
        for key, cnt in order:
            upper = cnt + remaining
            if len(best) >= k and upper < best[0][0]:
                break  # no later candidate can beat or tie the kth verified
            overlap = len(qset & self._sets[key])
            verified[key] = overlap
            sets_verified += 1
            heapq.heappush(best, (overlap, str(key)))
            if len(best) > k:
                heapq.heappop(best)

        ranked = sorted(
            verified.items(), key=lambda kv: (-kv[1], str(kv[0]))
        )[:k]
        ranked = [(key, ov) for key, ov in ranked if ov > 0]
        stats = {
            "posting_lists_read": posting_lists_read,
            "posting_entries_read": posting_entries_read,
            "candidates_examined": len(partial),
            "sets_verified": sets_verified,
            "query_tokens": total,
        }
        METRICS.inc("search.josie.queries")
        for name, value in stats.items():
            METRICS.inc(f"search.josie.{name}", value)
            TRACER.current().set(f"josie.{name}", value)
        return ranked, stats
