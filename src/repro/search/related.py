"""Finding related tables (Das Sarma et al., SIGMOD'12) — the seminal
formulation the survey's §2.1 starts from.

Two relatedness flavours, both anchored on a *subject attribute* (the
entity column that explains the table):

* **entity complement (EC)** — a candidate extends the query with new
  *entities*: same subject domain, consistent schema, mostly-new subject
  values (a precursor of unionable search);
* **schema complement (SC)** — a candidate extends the query's entities
  with new *attributes*: high subject overlap and attributes the query
  lacks (a precursor of joinable search).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalake.lake import DataLake
from repro.datalake.table import Table, tokenize


def detect_subject_column(table: Table) -> int | None:
    """Heuristic subject-attribute detection: the leftmost text column with
    the highest distinct ratio (entities are near-unique identifiers)."""
    best, best_score = None, -1.0
    for i, col in table.text_columns():
        n = max(len(col), 1)
        score = col.distinct_count() / n - 0.05 * i  # prefer left columns
        if score > best_score:
            best, best_score = i, score
    return best


def _schema_similarity(a: Table, b: Table) -> float:
    """Token-level Jaccard between the two tables' header vocabularies."""
    ta = {t for h in a.header for t in tokenize(h)}
    tb = {t for h in b.header for t in tokenize(h)}
    if not ta or not tb:
        return 0.0
    return len(ta & tb) / len(ta | tb)


@dataclass(frozen=True)
class RelatedTable:
    table: str
    score: float
    kind: str  # "entity-complement" | "schema-complement"

    def __lt__(self, other: "RelatedTable") -> bool:
        return (-self.score, self.table) < (-other.score, other.table)


class RelatedTableSearch:
    """Entity-complement and schema-complement related-table search."""

    def __init__(self, lake: DataLake):
        self.lake = lake
        #: table -> (subject column index, subject value set)
        self._subjects: dict[str, tuple[int, frozenset[str]]] = {}
        self._built = False

    def build(self) -> "RelatedTableSearch":
        for table in self.lake:
            subject = detect_subject_column(table)
            if subject is not None:
                values = table.columns[subject].value_set()
                if values:
                    self._subjects[table.name] = (subject, values)
        self._built = True
        return self

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError("call build() before searching")

    def subject_of(self, table_name: str) -> int | None:
        self._require_built()
        entry = self._subjects.get(table_name)
        return entry[0] if entry else None

    # -- scoring --------------------------------------------------------------------

    def entity_complement_score(self, query: Table, candidate: str) -> float:
        """High when the candidate adds new entities of the *same kind*:
        schema consistency x fraction-of-new-subjects x domain affinity."""
        entry = self._subjects.get(candidate)
        q_subject = detect_subject_column(query)
        if entry is None or q_subject is None:
            return 0.0
        _, cand_values = entry
        q_values = query.columns[q_subject].value_set()
        if not q_values or not cand_values:
            return 0.0
        overlap = len(q_values & cand_values)
        # Domain affinity: some overlap signals the same entity domain, but
        # the value of the candidate is its NEW entities.
        affinity = overlap / min(len(q_values), len(cand_values))
        new_fraction = 1.0 - overlap / len(cand_values)
        schema = _schema_similarity(query, self.lake.table(candidate))
        if affinity == 0.0:
            return 0.0
        return affinity * new_fraction * (0.5 + 0.5 * schema)

    def schema_complement_score(self, query: Table, candidate: str) -> float:
        """High when the candidate covers the query's entities and brings
        attributes the query lacks: subject containment x new-attribute gain."""
        entry = self._subjects.get(candidate)
        q_subject = detect_subject_column(query)
        if entry is None or q_subject is None:
            return 0.0
        _, cand_values = entry
        q_values = query.columns[q_subject].value_set()
        if not q_values:
            return 0.0
        containment = len(q_values & cand_values) / len(q_values)
        cand_table = self.lake.table(candidate)
        q_headers = {t for h in query.header for t in tokenize(h)}
        new_attrs = sum(
            1
            for h in cand_table.header
            if not (set(tokenize(h)) & q_headers)
        )
        attr_gain = new_attrs / max(cand_table.num_cols, 1)
        return containment * attr_gain

    # -- search -----------------------------------------------------------------------

    def related(
        self, query: Table | str, k: int = 10, kind: str = "entity-complement"
    ) -> list[RelatedTable]:
        """Top-k related tables of the requested kind."""
        self._require_built()
        if isinstance(query, str):
            query = self.lake.table(query)
        if kind == "entity-complement":
            scorer = self.entity_complement_score
        elif kind == "schema-complement":
            scorer = self.schema_complement_score
        else:
            raise ValueError(f"unknown relatedness kind {kind!r}")
        out = []
        for name in self._subjects:
            if name == query.name:
                continue
            score = scorer(query, name)
            if score > 0:
                out.append(RelatedTable(name, score, kind))
        return sorted(out)[:k]
