"""PEXESO: embedding-based fuzzy joinable search (Dong et al., ICDE'21).

Exact equi-join search misses columns whose values are *semantically* equal
but syntactically different (synonyms, formatting).  PEXESO embeds values
into vectors and declares a query value matched if some candidate value lies
within a cosine threshold; a column is joinable if enough query values
match.  The reproduction follows the block-and-verify design: an HNSW index
over all candidate value vectors blocks the search, then candidate columns
are verified with exact cosine matching.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.datalake.lake import DataLake
from repro.datalake.table import Column, ColumnRef
from repro.obs import METRICS, TRACER
from repro.search.explain import ExplainReport, summarize_results
from repro.search.results import ColumnResult
from repro.sketch.hnsw import HNSW
from repro.understanding.embedding import EmbeddingSpace


@dataclass
class PexesoConfig:
    tau: float = 0.8  # cosine threshold for a value match
    sigma: float = 0.5  # fraction of query values that must match
    max_values_per_column: int = 150
    hnsw_m: int = 8
    ef_search: int = 48


class PexesoIndex:
    """Vector-blocked fuzzy-join index over a lake's text columns."""

    def __init__(self, space: EmbeddingSpace, config: PexesoConfig | None = None):
        self.space = space
        self.config = config or PexesoConfig()
        self._hnsw: HNSW | None = None
        #: column ref -> matrix of its (sampled) value vectors
        self._column_vectors: dict[ColumnRef, np.ndarray] = {}

    def build(self, lake: DataLake) -> "PexesoIndex":
        cfg = self.config
        self._hnsw = HNSW(dim=self.space.dim, m=cfg.hnsw_m, metric="cosine")
        for ref, col in lake.iter_text_columns():
            vectors = []
            for vid, value in enumerate(sorted(col.value_set())):
                if vid >= cfg.max_values_per_column:
                    break
                vec = self.space.vector(value)
                if vec is not None:
                    vectors.append(vec)
                    self._hnsw.add((ref, vid), vec)
            if vectors:
                self._column_vectors[ref] = np.vstack(vectors)
                METRICS.inc("index.pexeso.vectors_indexed", len(vectors))
                METRICS.inc("index.pexeso.columns_indexed")
        return self

    def stats(self) -> dict:
        """Introspection: blocked vector volume plus the backing HNSW."""
        from repro.obs.introspect import summarize_distribution

        return {
            "columns": len(self._column_vectors),
            "vectors": sum(m.shape[0] for m in self._column_vectors.values()),
            "dim": self.space.dim,
            "vectors_per_column": summarize_distribution(
                m.shape[0] for m in self._column_vectors.values()
            ),
            "hnsw": self._hnsw.stats() if self._hnsw is not None else {},
        }

    def _query_vectors(self, column: Column) -> np.ndarray:
        vecs = []
        for value in sorted(column.value_set())[: self.config.max_values_per_column]:
            v = self.space.vector(value)
            if v is not None:
                vecs.append(v)
        return np.vstack(vecs) if vecs else np.zeros((0, self.space.dim))

    def search(
        self,
        column: Column,
        k: int = 10,
        exclude_table: str | None = None,
        explain: bool = False,
    ):
        """Top-k fuzzy-joinable columns.

        Block: for each query value vector, HNSW retrieves near neighbours;
        columns hit by >= sigma * |Q| distinct query values are candidates.
        Verify: exact cosine match fraction via a matrix product.  With
        ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        if self._hnsw is None:
            raise RuntimeError("call build() before searching")
        cfg = self.config
        qvecs = self._query_vectors(column)
        if len(qvecs) == 0:
            if explain:
                return [], ExplainReport(
                    "pexeso", query="<no embeddable query values>", k=k
                )
            return []
        hits_per_column: dict[ColumnRef, set[int]] = defaultdict(set)
        for qi in range(len(qvecs)):
            for (ref, _vid), dist in self._hnsw.search(
                qvecs[qi], k=8, ef=cfg.ef_search
            ):
                if dist <= 1.0 - cfg.tau:
                    if exclude_table is None or ref.table != exclude_table:
                        hits_per_column[ref].add(qi)
        min_hits = max(1, int(0.5 * cfg.sigma * len(qvecs)))
        candidates = [
            ref for ref, qids in hits_per_column.items() if len(qids) >= min_hits
        ]
        results = []
        for ref in candidates:
            frac = self._verify(qvecs, ref)
            if frac >= cfg.sigma:
                results.append(ColumnResult(ref, frac))
        METRICS.inc("search.pexeso.queries")
        METRICS.inc("search.pexeso.columns_blocked", len(hits_per_column))
        METRICS.inc("search.pexeso.candidates_verified", len(candidates))
        METRICS.inc("search.pexeso.results_returned", len(results))
        sp = TRACER.current()
        sp.set("pexeso.columns_blocked", len(hits_per_column))
        sp.set("pexeso.candidates_verified", len(candidates))
        out = sorted(results)[:k]
        if explain:
            report = ExplainReport(
                "pexeso",
                query=f"column<{len(qvecs)} vectors>",
                k=k,
                params={
                    "tau": cfg.tau,
                    "sigma": cfg.sigma,
                    "ef_search": cfg.ef_search,
                },
            )
            report.stage("columns_indexed", len(self._column_vectors))
            report.stage("columns_blocked", len(hits_per_column))
            report.stage("candidates_verified", len(candidates), min_hits=min_hits)
            report.stage("passed_sigma", len(results))
            report.stage("returned", len(out))
            report.results = summarize_results(out)
            return out, report
        return out

    def _verify(self, qvecs: np.ndarray, ref: ColumnRef) -> float:
        """Exact fraction of query vectors with a cosine >= tau match."""
        cand = self._column_vectors.get(ref)
        if cand is None or len(cand) == 0:
            return 0.0
        sims = qvecs @ cand.T  # unit vectors: dot = cosine
        return float(np.mean(sims.max(axis=1) >= self.config.tau))


def exact_fuzzy_join_fraction(
    space: EmbeddingSpace,
    query_values: set[str],
    candidate_values: set[str],
    tau: float,
    cap: int = 150,
) -> float:
    """Brute-force reference: fraction of query values with a fuzzy match."""
    qv = [space.vector(v) for v in sorted(query_values)[:cap]]
    cv = [space.vector(v) for v in sorted(candidate_values)[:cap]]
    qv = [v for v in qv if v is not None]
    cv = [v for v in cv if v is not None]
    if not qv or not cv:
        return 0.0
    q = np.vstack(qv)
    c = np.vstack(cv)
    sims = q @ c.T
    return float(np.mean(sims.max(axis=1) >= tau))
