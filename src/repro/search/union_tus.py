"""Table Union Search (Nargesian et al., VLDB'18).

Defines *attribute unionability* — the likelihood two columns draw from the
same domain — under three signals, then aggregates column scores to table
scores with bipartite matching:

* set unionability  — value overlap (Jaccard);
* sem unionability  — overlap of ontology class annotations;
* nl unionability   — cosine of distributional embeddings;
* ensemble          — the max of the available signals (the paper picks the
  measure with the highest goodness per attribute pair).

An LSH index over column MinHashes prefilters candidate tables so search
does not score the whole lake.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datalake.lake import DataLake
from repro.datalake.ontology import Ontology
from repro.datalake.table import Column, ColumnRef, Table
from repro.search.aggregate import table_unionability
from repro.search.explain import ExplainReport, summarize_results
from repro.search.results import TableResult
from repro.sketch.lsh import MinHashLSH
from repro.sketch.minhash import MinHash
from repro.understanding.embedding import EmbeddingSpace

MEASURES = ("set", "sem", "nl", "ensemble")


@dataclass
class TusConfig:
    measure: str = "ensemble"
    num_perm: int = 128
    prefilter_threshold: float = 0.05
    alignment: str = "hungarian"
    min_column_size: int = 2


class TableUnionSearch:
    """Attribute-unionability-based unionable table search."""

    def __init__(
        self,
        lake: DataLake,
        ontology: Ontology | None = None,
        space: EmbeddingSpace | None = None,
        config: TusConfig | None = None,
    ):
        self.lake = lake
        self.ontology = ontology
        self.space = space
        self.config = config or TusConfig()
        if self.config.measure not in MEASURES:
            raise ValueError(f"unknown measure {self.config.measure!r}")
        self._minhashes: dict[ColumnRef, MinHash] = {}
        self._class_vectors: dict[ColumnRef, dict[str, float]] = {}
        self._embeddings: dict[ColumnRef, np.ndarray] = {}
        self._lsh: MinHashLSH | None = None
        self._built = False

    # -- offline ------------------------------------------------------------------

    def build(self) -> "TableUnionSearch":
        cfg = self.config
        self._lsh = MinHashLSH(threshold=cfg.prefilter_threshold,
                               num_perm=cfg.num_perm)
        for ref, col in self.lake.iter_text_columns():
            values = col.value_set()
            if len(values) < cfg.min_column_size:
                continue
            mh = MinHash.from_values(values, num_perm=cfg.num_perm)
            self._minhashes[ref] = mh
            self._lsh.insert(ref, mh)
            if self.ontology is not None:
                self._class_vectors[ref] = self._class_vector(values)
            if self.space is not None:
                self._embeddings[ref] = self.space.embed_set(values)
        self._built = True
        return self

    def stats(self) -> dict:
        """Introspection: signature store sizes plus the prefilter LSH."""
        return {
            "minhashes": len(self._minhashes),
            "class_vectors": len(self._class_vectors),
            "embeddings": len(self._embeddings),
            "measure": self.config.measure,
            "lsh": self._lsh.stats() if self._lsh is not None else {},
        }

    def _class_vector(self, values) -> dict[str, float]:
        """Normalized distribution of ontology classes over the values."""
        counts: dict[str, float] = {}
        for v in values:
            for cls in self.ontology.classes_of(v, with_ancestors=False):
                counts[cls] = counts.get(cls, 0.0) + 1.0
        total = sum(counts.values())
        return {c: n / total for c, n in counts.items()} if total else {}

    # -- attribute unionability -----------------------------------------------------

    def set_unionability(self, a: Column, b_ref: ColumnRef) -> float:
        mh_b = self._minhashes.get(b_ref)
        if mh_b is None:
            return 0.0
        mh_a = MinHash.from_values(a.value_set(), num_perm=self.config.num_perm)
        return mh_a.jaccard(mh_b)

    def sem_unionability(self, a: Column, b_ref: ColumnRef) -> float:
        if self.ontology is None:
            return 0.0
        va = self._class_vector(a.value_set())
        vb = self._class_vectors.get(b_ref, {})
        if not va or not vb:
            return 0.0
        dot = sum(va.get(c, 0.0) * vb.get(c, 0.0) for c in set(va) | set(vb))
        na = sum(x * x for x in va.values()) ** 0.5
        nb = sum(x * x for x in vb.values()) ** 0.5
        return dot / (na * nb) if na and nb else 0.0

    def nl_unionability(self, a: Column, b_ref: ColumnRef) -> float:
        if self.space is None:
            return 0.0
        vb = self._embeddings.get(b_ref)
        if vb is None:
            return 0.0
        va = self.space.embed_set(a.value_set())
        return max(0.0, float(np.dot(va, vb)))

    def attribute_unionability(
        self, a: Column, b_ref: ColumnRef, measure: str | None = None
    ) -> float:
        measure = measure or self.config.measure
        if measure == "set":
            return self.set_unionability(a, b_ref)
        if measure == "sem":
            return self.sem_unionability(a, b_ref)
        if measure == "nl":
            return self.nl_unionability(a, b_ref)
        return max(
            self.set_unionability(a, b_ref),
            self.sem_unionability(a, b_ref),
            self.nl_unionability(a, b_ref),
        )

    # -- online ---------------------------------------------------------------------

    def _candidate_tables(self, query: Table) -> set[str]:
        """LSH prefilter: tables sharing at least one colliding column."""
        tables: set[str] = set()
        for col in query.columns:
            if col.is_numeric:
                continue
            mh = MinHash.from_values(col.value_set(), num_perm=self.config.num_perm)
            for ref in self._lsh.query(mh):
                tables.add(ref.table)
        tables.discard(query.name)
        return tables

    def search(
        self,
        query: Table,
        k: int = 10,
        measure: str | None = None,
        prefilter: bool = True,
        explain: bool = False,
    ):
        """Top-k unionable tables under the chosen measure.

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        if not self._built:
            raise RuntimeError("call build() before searching")
        measure = measure or self.config.measure
        names = (
            self._candidate_tables(query)
            if prefilter
            else set(self.lake.table_names()) - {query.name}
        )
        qcols = [c for c in query.columns if not c.is_numeric]
        results = []
        scored = 0
        for name in sorted(names):
            cand = self.lake.table(name)
            cand_refs = [
                ColumnRef(name, i)
                for i, c in enumerate(cand.columns)
                if not c.is_numeric and ColumnRef(name, i) in self._minhashes
            ]
            if not cand_refs or not qcols:
                continue
            scored += 1
            scores = np.zeros((len(qcols), len(cand_refs)))
            for i, qc in enumerate(qcols):
                for j, ref in enumerate(cand_refs):
                    scores[i, j] = self.attribute_unionability(qc, ref, measure)
            total, pairs = table_unionability(
                scores, method=self.config.alignment
            )
            if total > 0:
                alignment = tuple(
                    (i, cand_refs[j].index, s) for i, j, s in pairs
                )
                results.append(TableResult(name, total, alignment))
        out = sorted(results)[:k]
        if explain:
            report = ExplainReport(
                "tus",
                query=query.name,
                k=k,
                params={"measure": measure, "prefilter": prefilter},
            )
            report.stage("tables_in_lake", len(self.lake.table_names()))
            report.stage("candidates", len(names))
            report.stage("scored", scored)
            report.stage("positive", len(results))
            report.stage("returned", len(out))
            report.results = summarize_results(out)
            return out, report
        return out
