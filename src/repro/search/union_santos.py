"""SANTOS: relationship-based semantic table union search (Khatiwada et al.,
SIGMOD'23).

Column-only unionability produces false positives: two tables can share
column domains yet pair them through *different relationships* (city-where-
born vs. city-where-died).  SANTOS matches the binary relationships between
column pairs, using an existing KB for covered regions and a KB synthesized
from the lake for uncovered ones.  A query's *intent* is its set of
(class, relationship, class) triples; candidates are ranked by how much of
that intent they support — at the instance level, so confounders that break
the fact pairing score low even when their class pairing matches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalake.lake import DataLake
from repro.datalake.ontology import Ontology
from repro.datalake.table import Table
from repro.search.results import TableResult
from repro.understanding.annotate import synthesize_kb


@dataclass
class SantosConfig:
    min_class_support: float = 0.5
    max_rows: int = 200
    synth_min_pair_count: int = 3
    #: weight of relationship intent vs. plain column-class overlap
    relationship_weight: float = 0.8


@dataclass(frozen=True)
class _TableSemantics:
    """Class annotations + instance-supported relationship strengths."""

    classes: frozenset[str]
    #: (class_a, class_b) -> fraction of rows whose value pair is a KB fact
    relationship_support: tuple[tuple[tuple[str, str], float], ...]


class SantosUnionSearch:
    """Relationship-aware unionable table search."""

    def __init__(
        self,
        lake: DataLake,
        ontology: Ontology,
        config: SantosConfig | None = None,
        use_synthesized_kb: bool = True,
    ):
        self.lake = lake
        self.ontology = ontology
        self.config = config or SantosConfig()
        self.use_synthesized_kb = use_synthesized_kb
        self._synth: Ontology | None = None
        self._semantics: dict[str, _TableSemantics] = {}
        self._built = False

    # -- offline -------------------------------------------------------------------

    def build(self) -> "SantosUnionSearch":
        if self.use_synthesized_kb:
            self._synth = synthesize_kb(
                list(self.lake), self.config.synth_min_pair_count
            )
        for table in self.lake:
            self._semantics[table.name] = self._table_semantics(table)
        self._built = True
        return self

    def _column_class(self, values: list[str]) -> str | None:
        return self.ontology.annotate_column(
            values, self.config.min_class_support
        )

    def _fact_supported(self, a: str, b: str) -> bool:
        """Is (a, b) an instance-level fact in the KB or synthesized KB?"""
        if self.ontology.relation_between_values(a, b) is not None:
            # Instance-level check: require an actual fact, not the
            # class-level fallback, for relationship support.
            if self.ontology._facts.get((a.lower(), b.lower())) is not None:
                return True
            if self.ontology._facts.get((b.lower(), a.lower())) is not None:
                return True
        if self._synth is not None:
            if self._synth.relation_between_values(a, b) is not None:
                return True
        return False

    def _table_semantics(self, table: Table) -> _TableSemantics:
        cfg = self.config
        text_cols = table.text_columns()
        classes = {}
        for i, col in text_cols:
            cls = self._column_class(col.non_null_values())
            if cls is not None:
                classes[i] = cls
        support: dict[tuple[str, str], float] = {}
        n_rows = min(table.num_rows, cfg.max_rows)
        ids = list(classes)
        for x in range(len(ids)):
            for y in range(x + 1, len(ids)):
                i, j = ids[x], ids[y]
                ci = table.columns[i].values
                cj = table.columns[j].values
                hits = checked = 0
                for r in range(n_rows):
                    a, b = ci[r].strip().lower(), cj[r].strip().lower()
                    if not a or not b:
                        continue
                    checked += 1
                    if self._fact_supported(a, b):
                        hits += 1
                if checked:
                    pair = tuple(sorted((classes[i], classes[j])))
                    support[pair] = max(support.get(pair, 0.0), hits / checked)
        return _TableSemantics(
            classes=frozenset(classes.values()),
            relationship_support=tuple(sorted(support.items())),
        )

    # -- online ----------------------------------------------------------------------

    def score(self, query_sem: _TableSemantics, cand_sem: _TableSemantics) -> float:
        """Intent-match score: relationship support overlap + class overlap."""
        w = self.config.relationship_weight
        q_rel = dict(query_sem.relationship_support)
        c_rel = dict(cand_sem.relationship_support)
        rel_score = 0.0
        if q_rel:
            matched = 0.0
            for pair, q_sup in q_rel.items():
                if q_sup < 0.3:
                    continue  # weak intent edges don't define the query
                matched += min(q_sup, c_rel.get(pair, 0.0))
            denom = sum(s for s in q_rel.values() if s >= 0.3) or 1.0
            rel_score = matched / denom
        cls_score = 0.0
        if query_sem.classes:
            cls_score = len(query_sem.classes & cand_sem.classes) / len(
                query_sem.classes
            )
        return w * rel_score + (1 - w) * cls_score

    def search(self, query: Table, k: int = 10) -> list[TableResult]:
        """Top-k tables by relationship-intent match."""
        if not self._built:
            raise RuntimeError("call build() before searching")
        query_sem = self._semantics.get(query.name) or self._table_semantics(query)
        results = []
        for name, cand_sem in self._semantics.items():
            if name == query.name:
                continue
            s = self.score(query_sem, cand_sem)
            if s > 0:
                results.append(TableResult(name, s))
        return sorted(results)[:k]


class ColumnOnlySantosBaseline(SantosUnionSearch):
    """Ablation for E5: identical pipeline with relationship weight 0 —
    i.e. class-overlap-only matching (what SANTOS improves upon)."""

    def __init__(self, lake: DataLake, ontology: Ontology, **kwargs):
        config = kwargs.pop("config", None) or SantosConfig()
        config.relationship_weight = 0.0
        super().__init__(lake, ontology, config=config, **kwargs)
