"""Correlated dataset search: joinable AND correlated (Santos et al., ICDE'22).

Feature discovery for ML wants tables that join with the query table *and*
whose numeric column correlates with a numeric query column after the join.
Executing every join is infeasible; the QCR correlation sketch estimates the
post-join correlation from keyed samples.  This module indexes one sketch
per (table, key column, numeric column) pair and ranks candidates by
estimated |r| among those with sufficient key containment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.obs import METRICS, TRACER
from repro.search.explain import ExplainReport, summarize_results
from repro.sketch.qcr import CorrelationSketch, pearson


@dataclass(frozen=True)
class CorrelatedHit:
    table: str
    key_column: int
    value_column: int
    correlation: float
    containment: float

    def __lt__(self, other: "CorrelatedHit") -> bool:
        return (-abs(self.correlation), self.table) < (
            -abs(other.correlation),
            other.table,
        )


def _key_value_pairs(table: Table, key_col: int, num_col: int):
    keys = table.columns[key_col].values
    nums = table.columns[num_col].numeric_values()
    for k, v in zip(keys, nums):
        if k.strip() and math.isfinite(v):
            yield k, float(v)


class CorrelatedSearch:
    """Sketch index for joinable-and-correlated column search."""

    def __init__(self, sketch_size: int = 256):
        self.sketch_size = sketch_size
        self._sketches: dict[tuple[str, int, int], CorrelationSketch] = {}

    def build(self, lake: DataLake) -> "CorrelatedSearch":
        """Sketch every (text key column, numeric column) pair per table."""
        for table in lake:
            text_cols = [i for i, _ in table.text_columns()]
            num_cols = [i for i, _ in table.numeric_columns()]
            for ki in text_cols:
                for ni in num_cols:
                    sketch = CorrelationSketch.from_pairs(
                        _key_value_pairs(table, ki, ni), n=self.sketch_size
                    )
                    if len(sketch) >= 4:
                        self._sketches[(table.name, ki, ni)] = sketch
        METRICS.inc("index.qcr.sketches_built", len(self._sketches))
        return self

    def stats(self) -> dict:
        """Introspection: sketch count and sample-size skew."""
        from repro.obs.introspect import summarize_distribution

        return {
            "sketches": len(self._sketches),
            "sketch_size": self.sketch_size,
            "samples": sum(len(s) for s in self._sketches.values()),
            "samples_per_sketch": summarize_distribution(
                len(s) for s in self._sketches.values()
            ),
        }

    def search(
        self,
        query: Table,
        key_column: int,
        value_column: int,
        k: int = 10,
        min_containment: float = 0.3,
        explain: bool = False,
    ):
        """Top-k candidate columns by estimated post-join |correlation|.

        With ``explain=True`` returns ``(hits, ExplainReport)``.
        """
        qsketch = CorrelationSketch.from_pairs(
            _key_value_pairs(query, key_column, value_column),
            n=self.sketch_size,
        )
        hits = []
        compared = 0
        pruned = 0
        for (name, ki, ni), sketch in self._sketches.items():
            if name == query.name:
                continue
            compared += 1
            containment = qsketch.containment(sketch)
            if containment < min_containment:
                pruned += 1
                continue
            r = qsketch.correlation(sketch)
            hits.append(CorrelatedHit(name, ki, ni, r, containment))
        METRICS.inc("search.qcr.queries")
        METRICS.inc("search.qcr.sketches_compared", compared)
        METRICS.inc("search.qcr.pruned_by_containment", pruned)
        sp = TRACER.current()
        sp.set("qcr.sketches_compared", compared)
        sp.set("qcr.pruned_by_containment", pruned)
        out = sorted(hits)[:k]
        if explain:
            report = ExplainReport(
                "qcr",
                query=f"{query.name}[{key_column},{value_column}]",
                k=k,
                params={
                    "min_containment": min_containment,
                    "sketch_size": self.sketch_size,
                },
            )
            report.stage("sketches_indexed", len(self._sketches))
            report.stage("compared", compared)
            report.stage("passed_containment", compared - pruned)
            report.stage("returned", len(out))
            report.results = summarize_results(out)
            return out, report
        return out


def exact_join_correlation(
    query: Table,
    query_key: int,
    query_value: int,
    candidate: Table,
    cand_key: int,
    cand_value: int,
) -> float:
    """Reference: execute the equi-join and compute the exact Pearson r."""
    cand_map: dict[str, float] = {}
    for key, v in _key_value_pairs(candidate, cand_key, cand_value):
        cand_map.setdefault(key.strip().lower(), v)
    xs, ys = [], []
    for key, v in _key_value_pairs(query, query_key, query_value):
        other = cand_map.get(key.strip().lower())
        if other is not None:
            xs.append(v)
            ys.append(other)
    return pearson(xs, ys)
