"""Table search engines: keyword, joinable, unionable, correlated."""

from repro.search.aggregate import (
    greedy_alignment,
    hungarian_alignment,
    table_unionability,
)
from repro.search.infogather import Augmentation, InfoGather
from repro.search.related import (
    RelatedTable,
    RelatedTableSearch,
    detect_subject_column,
)
from repro.search.valentine import (
    CompositeMatcher,
    Correspondence,
    DistributionMatcher,
    EmbeddingMatcher,
    HeaderMatcher,
    Matcher,
    ValueOverlapMatcher,
    evaluate_matcher,
    precision_at_size,
    recall_at_ground_truth,
)
from repro.search.auctus import AuctusHit, AuctusSearch, DatasetProfile, profile_table
from repro.search.correlated import (
    CorrelatedHit,
    CorrelatedSearch,
    exact_join_correlation,
)
from repro.search.joinable import JoinableSearch, JoinSearchConfig
from repro.search.josie import JosieIndex
from repro.search.keyword import KeywordHit, KeywordSearchEngine
from repro.search.mate import MateHit, MateIndex, row_super_key
from repro.search.pexeso import (
    PexesoConfig,
    PexesoIndex,
    exact_fuzzy_join_fraction,
)
from repro.search.results import ColumnResult, TableResult, top_k
from repro.search.warpgate import WarpGateConfig, WarpGateJoinDiscovery
from repro.search.union_santos import (
    ColumnOnlySantosBaseline,
    SantosConfig,
    SantosUnionSearch,
)
from repro.search.union_starmie import StarmieConfig, StarmieUnionSearch
from repro.search.union_tus import MEASURES, TableUnionSearch, TusConfig

__all__ = [
    "AuctusHit",
    "AuctusSearch",
    "Augmentation",
    "DatasetProfile",
    "CompositeMatcher",
    "Correspondence",
    "DistributionMatcher",
    "EmbeddingMatcher",
    "HeaderMatcher",
    "InfoGather",
    "MEASURES",
    "Matcher",
    "ValueOverlapMatcher",
    "evaluate_matcher",
    "precision_at_size",
    "profile_table",
    "recall_at_ground_truth",
    "ColumnOnlySantosBaseline",
    "ColumnResult",
    "CorrelatedHit",
    "CorrelatedSearch",
    "JoinSearchConfig",
    "JoinableSearch",
    "JosieIndex",
    "KeywordHit",
    "KeywordSearchEngine",
    "MateHit",
    "MateIndex",
    "PexesoConfig",
    "PexesoIndex",
    "RelatedTable",
    "RelatedTableSearch",
    "SantosConfig",
    "SantosUnionSearch",
    "StarmieConfig",
    "StarmieUnionSearch",
    "TableResult",
    "TableUnionSearch",
    "TusConfig",
    "WarpGateConfig",
    "WarpGateJoinDiscovery",
    "detect_subject_column",
    "exact_fuzzy_join_fraction",
    "exact_join_correlation",
    "greedy_alignment",
    "hungarian_alignment",
    "row_super_key",
    "table_unionability",
    "top_k",
]
