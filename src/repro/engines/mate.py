"""MATE multi-attribute join search behind the engine protocol (§2.4)."""

from __future__ import annotations

from typing import Any

from repro.core.engine import (
    Engine,
    EngineContext,
    QueryRequest,
    register_engine,
)
from repro.search.mate import MateIndex


@register_engine
class MateEngine(Engine):
    """Composite-key joinable search via super-key signatures."""

    name = "mate"
    stage = "mate_index"
    query_label = "multi_attribute"
    kind = "super-key"
    items_key = "rows"

    def __init__(self) -> None:
        super().__init__()
        self._index: MateIndex | None = None

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._index = MateIndex()
        self._index.index_lake(ctx.lake)

    def is_built(self) -> bool:
        return self._index is not None

    @property
    def raw(self) -> Any:
        return self._index

    def stats(self) -> dict:
        return self._index.stats()

    def accepts(self, request: QueryRequest) -> bool:
        return request.table is not None and bool(request.key_columns)

    def query(self, request: QueryRequest):
        key_columns = list(request.key_columns)
        if request.explain:
            return self._index.search(
                request.table, key_columns, request.k, explain=True
            )
        return (
            self._index.search(request.table, key_columns, request.k),
            None,
        )

    def to_payload(self) -> Any:
        return self._index

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._index = payload
