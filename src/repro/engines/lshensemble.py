"""LSH Ensemble containment search behind the engine protocol (§2.4)."""

from __future__ import annotations

from typing import Any

from repro.core.engine import QueryRequest, register_engine
from repro.engines.join_base import JoinIndexEngine
from repro.search.explain import summarize_results


@register_engine
class LshEnsembleEngine(JoinIndexEngine):
    """Approximate containment-threshold join search (LSH Ensemble),
    verified exactly against the stored sets (filter-verify)."""

    name = "lshensemble"
    kind = "partitioned-lsh"
    items_key = "keys"

    def stats(self) -> dict:
        return self._search.ensemble.stats()

    def memory_object(self) -> Any:
        return self._search.ensemble

    def query(self, request: QueryRequest):
        threshold = (
            request.threshold or self.ctx.config.containment_threshold
        )
        if request.explain:
            hits, report = self._search.containment(
                request.column,
                threshold,
                exclude_table=request.exclude_table,
                explain=True,
            )
            hits = hits[: request.k]
            report.k = request.k
            report.stage("returned", len(hits))
            report.results = summarize_results(hits)
            return hits, report
        hits = self._search.containment(
            request.column, threshold, exclude_table=request.exclude_table
        )[: request.k]
        return hits, None
