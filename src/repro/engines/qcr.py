"""QCR joinable-and-correlated search behind the engine protocol (§2.4)."""

from __future__ import annotations

from typing import Any

from repro.core.engine import (
    Engine,
    EngineContext,
    QueryRequest,
    register_engine,
)
from repro.search.correlated import CorrelatedSearch


@register_engine
class QcrEngine(Engine):
    """Correlation-sketch search: joinable tables whose joined column
    correlates with the query's value column."""

    name = "qcr"
    stage = "correlation_index"
    query_label = "correlated"
    kind = "correlation-sketch"
    items_key = "sketches"

    def __init__(self) -> None:
        super().__init__()
        self._search: CorrelatedSearch | None = None

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._search = CorrelatedSearch(
            sketch_size=ctx.config.qcr_sketch_size
        ).build(ctx.lake)

    def is_built(self) -> bool:
        return self._search is not None

    @property
    def raw(self) -> Any:
        return self._search

    def stats(self) -> dict:
        return self._search.stats()

    def accepts(self, request: QueryRequest) -> bool:
        return (
            request.table is not None
            and request.key_column is not None
            and request.value_column is not None
        )

    def query(self, request: QueryRequest):
        if request.explain:
            return self._search.search(
                request.table,
                request.key_column,
                request.value_column,
                request.k,
                explain=True,
            )
        return (
            self._search.search(
                request.table,
                request.key_column,
                request.value_column,
                request.k,
            ),
            None,
        )

    def to_payload(self) -> Any:
        return self._search

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._search = payload
