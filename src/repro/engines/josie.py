"""JOSIE exact top-k overlap search behind the engine protocol (§2.4)."""

from __future__ import annotations

from typing import Any

from repro.core.engine import QueryRequest, register_engine
from repro.engines.join_base import JoinIndexEngine


@register_engine
class JosieEngine(JoinIndexEngine):
    """Exact top-k joinable columns by set overlap (JOSIE)."""

    name = "josie"
    kind = "inverted+sets"
    items_key = "sets"

    def stats(self) -> dict:
        return self._search.josie.stats()

    def memory_object(self) -> Any:
        return self._search.josie

    def query(self, request: QueryRequest):
        if request.explain:
            return self._search.exact_topk(
                request.column,
                request.k,
                exclude_table=request.exclude_table,
                explain=True,
            )
        return (
            self._search.exact_topk(
                request.column, request.k, exclude_table=request.exclude_table
            ),
            None,
        )
