"""Table Union Search (TUS) behind the engine protocol (§2.5)."""

from __future__ import annotations

from typing import Any

from repro.core.engine import (
    Engine,
    EngineContext,
    QueryRequest,
    register_engine,
)
from repro.search.union_tus import TableUnionSearch, TusConfig


@register_engine
class TusEngine(Engine):
    """Ensemble attribute-unionability search (set / sem / nl measures)."""

    name = "tus"
    stage = "union_index"
    depends_on = ("embeddings",)
    query_label = "union"
    kind = "minhash+lsh"
    items_key = "minhashes"

    def __init__(self) -> None:
        super().__init__()
        self._search: TableUnionSearch | None = None

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        cfg = ctx.config
        self._search = TableUnionSearch(
            ctx.lake,
            ontology=ctx.ontology,
            space=ctx.space,
            config=TusConfig(measure=cfg.union_measure, num_perm=cfg.num_perm),
        ).build()

    def is_built(self) -> bool:
        return self._search is not None

    @property
    def raw(self) -> Any:
        return self._search

    def stats(self) -> dict:
        return self._search.stats()

    def accepts(self, request: QueryRequest) -> bool:
        return request.table is not None

    def query(self, request: QueryRequest):
        if request.explain:
            return self._search.search(request.table, request.k, explain=True)
        return self._search.search(request.table, request.k), None

    def to_payload(self) -> Any:
        return self._search

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._search = payload
