"""Lake navigation (DSDO-style organization) behind the engine protocol
(§2.6)."""

from __future__ import annotations

from typing import Any

from repro.core.engine import (
    Engine,
    EngineContext,
    QueryRequest,
    register_engine,
)
from repro.graph.organize import Organization


@register_engine
class NavigationEngine(Engine):
    """The lake-wide navigation hierarchy over table embedding vectors."""

    name = "organization"
    stage = "navigation"
    depends_on = ("embeddings",)
    category = "navigation"
    query_label = "navigate"
    kind = "navigation-tree"

    def __init__(self) -> None:
        super().__init__()
        self._org: Organization | None = None
        self._table_vectors: dict = {}

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        if ctx.space is None:
            return
        for table in ctx.lake:
            values = [
                v
                for _, col in table.text_columns()
                for v in col.non_null_values()[:50]
            ]
            self._table_vectors[table.name] = ctx.space.embed_set(values)
        if self._table_vectors:
            cfg = ctx.config
            self._org = Organization.build(
                self._table_vectors,
                branching=cfg.org_branching,
                max_leaf_size=cfg.org_max_leaf,
            )

    def is_built(self) -> bool:
        return self._org is not None

    @property
    def raw(self) -> Any:
        return self._org

    @property
    def organization(self) -> Organization | None:
        return self._org

    @property
    def table_vectors(self) -> dict:
        return self._table_vectors

    def stats(self) -> dict:
        return {"tables": len(self._table_vectors)}

    def items(self, stats: dict) -> int:
        return int(stats["tables"])

    def query(self, request: QueryRequest):
        """Navigate toward free-text intent; hits are the (unscored)
        table names at the reached node."""
        intent = self.ctx.space.embed_set(request.text.lower().split())
        _, tables = self._org.navigate(intent)
        return tables, None

    def to_payload(self) -> Any:
        return {"org": self._org, "table_vectors": self._table_vectors}

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._org = payload["org"]
        self._table_vectors = payload["table_vectors"]
