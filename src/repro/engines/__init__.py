"""Built-in engine adapters: every surveyed method registered behind the
:mod:`repro.core.engine` protocol.

Importing this package populates :data:`repro.core.engine.REGISTRY`.
Registration order is load-bearing twice over: it fixes the canonical
stage order of the offline pipeline (foundations first, then the index
stages in the legacy sequence) and the execution order of engines sharing
a stage (the union stage builds TUS, Starmie, PEXESO, then SANTOS exactly
as the hand-wired pipeline did), which keeps parallel builds bit-identical
to sequential ones.

To add an engine, drop a module here (or anywhere imported at startup)
with a ``@register_engine`` class — see ``docs/architecture.md``.
"""

from repro.engines.foundation import (
    AnnotationFoundation,
    DomainsFoundation,
    EmbeddingsFoundation,
)
from repro.engines.keyword import KeywordEngine
from repro.engines.josie import JosieEngine
from repro.engines.lshensemble import LshEnsembleEngine
from repro.engines.jaccard import JaccardLshEngine
from repro.engines.tus import TusEngine
from repro.engines.starmie import StarmieEngine
from repro.engines.pexeso import PexesoEngine
from repro.engines.santos import SantosEngine
from repro.engines.qcr import QcrEngine
from repro.engines.mate import MateEngine
from repro.engines.navigation import NavigationEngine

__all__ = [
    "AnnotationFoundation",
    "DomainsFoundation",
    "EmbeddingsFoundation",
    "JaccardLshEngine",
    "JosieEngine",
    "KeywordEngine",
    "LshEnsembleEngine",
    "MateEngine",
    "NavigationEngine",
    "PexesoEngine",
    "QcrEngine",
    "SantosEngine",
    "StarmieEngine",
    "TusEngine",
]
