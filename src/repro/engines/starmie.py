"""Starmie embedding-based union search behind the engine protocol (§2.5)."""

from __future__ import annotations

from typing import Any

from repro.core.engine import (
    Engine,
    EngineContext,
    QueryRequest,
    register_engine,
)
from repro.search.union_starmie import StarmieConfig, StarmieUnionSearch


@register_engine
class StarmieEngine(Engine):
    """Contextual column embeddings + ANN index (linear / LSH / HNSW)."""

    name = "starmie"
    stage = "union_index"
    depends_on = ("embeddings",)
    query_label = "union"
    kind = "embeddings"
    items_key = "columns"

    def __init__(self) -> None:
        super().__init__()
        self._search: StarmieUnionSearch | None = None

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        if ctx.encoder is None:
            return
        cfg = ctx.config
        self._search = StarmieUnionSearch(
            ctx.lake,
            ctx.encoder,
            StarmieConfig(
                index=cfg.union_index,
                hnsw_m=cfg.hnsw_m,
                ef_search=cfg.ef_search,
            ),
        ).build()

    def is_built(self) -> bool:
        return self._search is not None

    @property
    def raw(self) -> Any:
        return self._search

    def stats(self) -> dict:
        return self._search.stats()

    def kind_of(self) -> str:
        if self.ctx is not None:
            return f"embeddings+{self.ctx.config.union_index}"
        return self.kind

    def accepts(self, request: QueryRequest) -> bool:
        return request.table is not None

    def query(self, request: QueryRequest):
        if request.explain:
            return self._search.search(request.table, request.k, explain=True)
        return self._search.search(request.table, request.k), None

    def to_payload(self) -> Any:
        return self._search

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._search = payload
