"""SANTOS relationship-semantics union search behind the engine protocol
(§2.5)."""

from __future__ import annotations

from typing import Any

from repro.core.engine import (
    Engine,
    EngineContext,
    QueryRequest,
    register_engine,
)
from repro.search.explain import ExplainReport, summarize_results
from repro.search.union_santos import SantosUnionSearch


@register_engine
class SantosEngine(Engine):
    """Ontology relationship-intent union search (needs an ontology)."""

    name = "santos"
    stage = "union_index"
    depends_on = ("annotation",)
    query_label = "union"
    kind = "semantic-graph"

    def __init__(self) -> None:
        super().__init__()
        self._search: SantosUnionSearch | None = None

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        if ctx.ontology is None:
            return
        self._search = SantosUnionSearch(ctx.lake, ctx.ontology).build()

    def is_built(self) -> bool:
        return self._search is not None

    @property
    def raw(self) -> Any:
        return self._search

    def stats(self) -> dict:
        return {"tables": self.ctx.system.stats.tables}

    def items(self, stats: dict) -> int:
        return int(stats["tables"])

    def accepts(self, request: QueryRequest) -> bool:
        return request.table is not None

    def query(self, request: QueryRequest):
        hits = self._search.search(request.table, request.k)
        if request.explain:
            # SANTOS has no internal funnel; synthesize the summary report
            # the facade always produced.
            report = ExplainReport(
                "santos", query=request.table.name, k=request.k
            )
            report.stage("returned", len(hits))
            report.results = summarize_results(hits)
            return hits, report
        return hits, None

    def to_payload(self) -> Any:
        return self._search

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._search = payload
