"""PEXESO fuzzy-join search behind the engine protocol (§2.4)."""

from __future__ import annotations

from typing import Any

from repro.core.engine import (
    Engine,
    EngineContext,
    QueryRequest,
    register_engine,
)
from repro.search.pexeso import PexesoIndex


@register_engine
class PexesoEngine(Engine):
    """Embedding-space blocked fuzzy joinable search."""

    name = "pexeso"
    stage = "union_index"
    depends_on = ("embeddings",)
    query_label = "fuzzy_join"
    kind = "vector-block"
    items_key = "columns"

    def __init__(self) -> None:
        super().__init__()
        self._index: PexesoIndex | None = None

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        # Mirrors the legacy union stage: PEXESO is built only when the
        # contextual encoder (and thus the embedding space) exists.
        if ctx.encoder is None or ctx.space is None:
            return
        self._index = PexesoIndex(ctx.space).build(ctx.lake)

    def is_built(self) -> bool:
        return self._index is not None

    @property
    def raw(self) -> Any:
        return self._index

    def stats(self) -> dict:
        return self._index.stats()

    def accepts(self, request: QueryRequest) -> bool:
        return request.column is not None

    def query(self, request: QueryRequest):
        if request.explain:
            return self._index.search(
                request.column,
                request.k,
                exclude_table=request.exclude_table,
                explain=True,
            )
        return (
            self._index.search(
                request.column, request.k, exclude_table=request.exclude_table
            ),
            None,
        )

    def to_payload(self) -> Any:
        return self._index

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._index = payload
