"""Foundation stages: the understanding layer registered behind the same
engine protocol as the search engines.

Embeddings, domain discovery, and ontology annotation do not answer
queries themselves — they produce the shared inputs (embedding space,
contextual encoder, discovered domains, table annotations) that the
downstream indexes consume.  Registering them as ``category="foundation"``
engines means the stage DAG, snapshot payload, and build scheduling all
derive from one registry instead of special-casing the understanding
stages by hand.

Their built state lives on the owning :class:`DiscoverySystem` (``space``,
``encoder``, ``domains``, ``annotations``) because several engines and the
online facade share it; the adapters read and write it through the
:class:`~repro.core.engine.EngineContext`.
"""

from __future__ import annotations

from typing import Any

from repro.core.engine import Engine, EngineContext, register_engine
from repro.obs import METRICS
from repro.understanding.annotate import OntologyAnnotator
from repro.understanding.contextual import ContextualColumnEncoder
from repro.understanding.domains import DomainDiscovery
from repro.understanding.embedding import train_embeddings


@register_engine
class EmbeddingsFoundation(Engine):
    """Lake-wide value embeddings + the contextual column encoder."""

    name = "embeddings"
    stage = "embeddings"
    category = "foundation"
    kind = "embedding-space"

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        system = ctx.system
        cfg = ctx.config
        system.space = train_embeddings(
            ctx.lake,
            dim=cfg.embedding_dim,
            min_count=cfg.embedding_min_count,
            seed=cfg.seed,
        )
        system.stats.vocabulary = len(system.space.vocab)
        METRICS.set_gauge("embedding.vocabulary", system.stats.vocabulary)
        system.encoder = ContextualColumnEncoder(
            system.space, context_weight=cfg.context_weight
        )

    def is_built(self) -> bool:
        return self.ctx is not None and self.ctx.space is not None

    def stats(self) -> dict:
        space = self.ctx.space if self.ctx is not None else None
        return {
            "vocabulary": len(space.vocab) if space is not None else 0,
            "dim": space.dim if space is not None else 0,
        }

    def to_payload(self) -> Any:
        return {"space": self.ctx.space, "encoder": self.ctx.encoder}

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        ctx.system.space = payload["space"]
        ctx.system.encoder = payload["encoder"]


@register_engine
class DomainsFoundation(Engine):
    """Value-overlap domain discovery over the lake's text columns."""

    name = "domains"
    stage = "domains"
    category = "foundation"
    kind = "value-domains"

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        system = ctx.system
        system.domains = DomainDiscovery().discover(ctx.lake)
        system.stats.domains_found = len(system.domains)

    def is_built(self) -> bool:
        return self.ctx is not None and bool(self.ctx.system.domains)

    def stats(self) -> dict:
        domains = self.ctx.system.domains if self.ctx is not None else []
        return {"domains": len(domains)}

    def to_payload(self) -> Any:
        return {"domains": self.ctx.system.domains}

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        ctx.system.domains = payload["domains"]


@register_engine
class AnnotationFoundation(Engine):
    """Ontology class annotation of every table (feeds SANTOS)."""

    name = "annotation"
    stage = "annotation"
    category = "foundation"
    kind = "ontology-annotations"

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        annotator = OntologyAnnotator(ctx.ontology)
        for table in ctx.lake:
            ctx.system.annotations[table.name] = annotator.annotate(table)

    def is_built(self) -> bool:
        return self.ctx is not None and bool(self.ctx.annotations)

    def stats(self) -> dict:
        annotations = self.ctx.annotations if self.ctx is not None else {}
        return {"annotated_tables": len(annotations)}

    def to_payload(self) -> Any:
        return {"annotations": self.ctx.annotations}

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        ctx.system.annotations = payload["annotations"]
