"""Jaccard MinHash-LSH baseline behind the engine protocol (§2.4).

The plain Jaccard-threshold baseline of experiment E2 — the measure shown
to be biased against large columns, kept indexed beside JOSIE and LSH
Ensemble for comparison.  Registering it makes it addressable by the
federated dispatcher and introspectable like every other engine.
"""

from __future__ import annotations

from typing import Any

from repro.core.engine import QueryRequest, register_engine
from repro.engines.join_base import JoinIndexEngine


@register_engine
class JaccardLshEngine(JoinIndexEngine):
    """Plain MinHash-LSH on Jaccard similarity (the biased baseline)."""

    name = "jaccard_lsh"
    kind = "banded-lsh"
    items_key = "keys"

    def stats(self) -> dict:
        return self._search.jaccard_lsh.stats()

    def memory_object(self) -> Any:
        return self._search.jaccard_lsh

    def query(self, request: QueryRequest):
        hits = sorted(
            self._search.jaccard_baseline(
                request.column, exclude_table=request.exclude_table
            )
        )[: request.k]
        return hits, None
