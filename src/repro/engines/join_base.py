"""Shared base for the three join engines (JOSIE, LSH Ensemble, and the
Jaccard-LSH baseline).

All three are views over one :class:`~repro.search.joinable.JoinableSearch`
— a single pass over the lake's text columns builds the JOSIE sets, the
MinHash signatures, and both LSH structures together.  The shared instance
lives in the :class:`EngineContext`'s shared-structure memo during the
build, and pickles once in snapshots (pickle's memo keeps the three
engines pointing at the same object across a save/load round-trip).
"""

from __future__ import annotations

from typing import Any

from repro.core.engine import Engine, EngineContext, QueryRequest
from repro.search.joinable import JoinableSearch, JoinSearchConfig


def shared_joinable(ctx: EngineContext) -> JoinableSearch:
    """Build-or-get the stage-shared :class:`JoinableSearch`."""

    def factory() -> JoinableSearch:
        cfg = ctx.config
        return JoinableSearch(
            ctx.lake,
            JoinSearchConfig(
                num_perm=cfg.num_perm, num_partitions=cfg.num_partitions
            ),
        ).build()

    return ctx.shared("join_index", factory)


class JoinIndexEngine(Engine):
    """Base adapter for engines backed by the shared JoinableSearch."""

    stage = "join_index"
    query_label = "join"

    def __init__(self) -> None:
        super().__init__()
        self._search: JoinableSearch | None = None

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._search = shared_joinable(ctx)

    def is_built(self) -> bool:
        return self._search is not None

    @property
    def raw(self) -> Any:
        return self._search

    def accepts(self, request: QueryRequest) -> bool:
        return request.column is not None

    def to_payload(self) -> Any:
        return self._search

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._search = payload
