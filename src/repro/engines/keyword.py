"""Keyword (BM25 metadata) search behind the engine protocol (§2.3)."""

from __future__ import annotations

from typing import Any

from repro.core.engine import (
    Engine,
    EngineContext,
    QueryRequest,
    register_engine,
)
from repro.search.keyword import KeywordSearchEngine


@register_engine
class KeywordEngine(Engine):
    """GOODS-style BM25 ranking over table metadata and headers."""

    name = "keyword"
    stage = "keyword_index"
    query_label = "keyword"
    kind = "bm25"
    items_key = "documents"

    def __init__(self) -> None:
        super().__init__()
        self._index: KeywordSearchEngine | None = None

    def build(self, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._index = KeywordSearchEngine()
        self._index.index_lake(ctx.lake)

    def is_built(self) -> bool:
        return self._index is not None

    @property
    def raw(self) -> Any:
        return self._index

    def stats(self) -> dict:
        return self._index.stats()

    def accepts(self, request: QueryRequest) -> bool:
        return bool(request.text)

    def query(self, request: QueryRequest):
        if request.explain:
            return self._index.search(request.text, request.k, explain=True)
        return self._index.search(request.text, request.k), None

    def to_payload(self) -> Any:
        return self._index

    def from_payload(self, payload: Any, ctx: EngineContext) -> None:
        self.ctx = ctx
        self._index = payload
