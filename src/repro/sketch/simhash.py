"""SimHash fingerprints for near-duplicate table detection.

Used by the stitching pipeline (E18) to group table fragments that share a
logical schema: two token multisets with high cosine similarity get
fingerprints at small Hamming distance.
"""

from __future__ import annotations

from typing import Iterable

from repro.sketch.hashing import stable_hash64

_BITS = 64


def simhash(tokens: Iterable[str], seed: int = 3) -> int:
    """64-bit SimHash fingerprint of a token multiset."""
    acc = [0] * _BITS
    for token in tokens:
        h = stable_hash64(str(token), seed)
        for bit in range(_BITS):
            acc[bit] += 1 if (h >> bit) & 1 else -1
    out = 0
    for bit in range(_BITS):
        if acc[bit] > 0:
            out |= 1 << bit
    return out


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two 64-bit fingerprints."""
    return (a ^ b).bit_count()


def simhash_similarity(a: int, b: int) -> float:
    """1 - normalized Hamming distance (1.0 for identical fingerprints)."""
    return 1.0 - hamming_distance(a, b) / _BITS
