"""Indexing substrate: sketches and indices surveyed in §2.4-2.5/§3."""

from repro.sketch.hashing import UniversalHashFamily, hash_tokens, stable_hash64
from repro.sketch.hnsw import HNSW, brute_force_knn
from repro.sketch.inverted import InvertedIndex
from repro.sketch.kmv import KMV
from repro.sketch.lsh import MinHashLSH, collision_probability, optimal_bands
from repro.sketch.lshensemble import LSHEnsemble, containment_to_jaccard
from repro.sketch.minhash import MinHash, exact_containment, exact_jaccard
from repro.sketch.qcr import CorrelationSketch, pearson
from repro.sketch.simhash import hamming_distance, simhash, simhash_similarity

__all__ = [
    "HNSW",
    "KMV",
    "CorrelationSketch",
    "InvertedIndex",
    "LSHEnsemble",
    "MinHash",
    "MinHashLSH",
    "UniversalHashFamily",
    "brute_force_knn",
    "collision_probability",
    "containment_to_jaccard",
    "exact_containment",
    "exact_jaccard",
    "hamming_distance",
    "hash_tokens",
    "optimal_bands",
    "pearson",
    "simhash",
    "simhash_similarity",
    "stable_hash64",
]
