"""Banded MinHash LSH index for Jaccard-threshold search.

Signatures are split into b bands of r rows; two sets collide in a band with
probability j^r, so the probability of colliding in at least one band is
1 - (1 - j^r)^b — the classic S-curve.  ``optimal_bands`` picks (b, r)
minimizing weighted false positives + negatives at a target threshold, as in
datasketch and the LSH Ensemble paper.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

import numpy as np

from repro.core.errors import IndexError_
from repro.sketch.minhash import MinHash


def collision_probability(j: float, b: int, r: int) -> float:
    """P[at least one band collides] for true Jaccard j under (b, r)."""
    return 1.0 - (1.0 - j**r) ** b


def _integrate(f, lo: float, hi: float, steps: int = 100) -> float:
    xs = np.linspace(lo, hi, steps)
    return float(np.trapezoid([f(x) for x in xs], xs))


def optimal_bands(
    num_perm: int,
    threshold: float,
    fp_weight: float = 0.5,
) -> tuple[int, int]:
    """Choose (b, r) with b*r <= num_perm minimizing the weighted integral of
    false-positive area below the threshold and false-negative area above."""
    best, best_cost = (1, num_perm), float("inf")
    for r in range(1, num_perm + 1):
        b = num_perm // r
        if b < 1:
            break
        fp = _integrate(lambda j: collision_probability(j, b, r), 0.0, threshold)
        fn = _integrate(
            lambda j: 1.0 - collision_probability(j, b, r), threshold, 1.0
        )
        cost = fp_weight * fp + (1.0 - fp_weight) * fn
        if cost < best_cost:
            best, best_cost = (b, r), cost
    return best


class MinHashLSH:
    """LSH index over MinHash signatures for a Jaccard threshold."""

    def __init__(
        self,
        threshold: float = 0.5,
        num_perm: int = 128,
        bands: tuple[int, int] | None = None,
        fp_weight: float = 0.5,
    ):
        if not 0.0 < threshold <= 1.0:
            raise IndexError_(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.num_perm = num_perm
        self.b, self.r = bands or optimal_bands(num_perm, threshold, fp_weight)
        if self.b * self.r > num_perm:
            raise IndexError_(
                f"b*r = {self.b * self.r} exceeds num_perm = {num_perm}"
            )
        self._tables: list[dict[bytes, list[Hashable]]] = [
            defaultdict(list) for _ in range(self.b)
        ]
        self._keys: dict[Hashable, MinHash] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._keys

    def _band_digests(self, mh: MinHash) -> list[bytes]:
        sig = mh.hashvalues
        return [
            sig[i * self.r : (i + 1) * self.r].tobytes() for i in range(self.b)
        ]

    def insert(self, key: Hashable, mh: MinHash) -> None:
        """Add a keyed signature to the index."""
        if mh.num_perm != self.num_perm:
            raise IndexError_(
                f"signature has {mh.num_perm} perms, index expects {self.num_perm}"
            )
        if key in self._keys:
            raise IndexError_(f"duplicate key {key!r}")
        self._keys[key] = mh
        for table, digest in zip(self._tables, self._band_digests(mh)):
            table[digest].append(key)

    def query(self, mh: MinHash) -> list[Hashable]:
        """Keys colliding with the query in at least one band (candidates)."""
        seen: set[Hashable] = set()
        out: list[Hashable] = []
        for table, digest in zip(self._tables, self._band_digests(mh)):
            for key in table.get(digest, ()):
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out

    def stats(self) -> dict:
        """Introspection: banding shape and bucket-size skew (a giant
        bucket means one band digest dominates candidate generation)."""
        from repro.obs.introspect import summarize_distribution

        return {
            "keys": len(self._keys),
            "threshold": self.threshold,
            "bands": self.b,
            "rows": self.r,
            "buckets": sum(len(t) for t in self._tables),
            "bucket_size": summarize_distribution(
                len(keys) for t in self._tables for keys in t.values()
            ),
        }

    def query_verified(self, mh: MinHash) -> list[tuple[Hashable, float]]:
        """Candidates with estimated Jaccard >= threshold, sorted descending."""
        scored = []
        for key in self.query(mh):
            j = mh.jaccard(self._keys[key])
            if j >= self.threshold:
                scored.append((key, j))
        scored.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return scored
