"""QCR correlation sketches (Santos et al., "A Sketch-based Index for
Correlated Dataset Search", ICDE'22).

Goal: find tables that are joinable with a query table AND whose numeric
column is correlated with a numeric query column *after the join* — without
executing the join.  The sketch samples join keys by hashed-key minima (so
two sketches of the same key universe sample the *same* keys) and stores the
paired numeric values; the correlation of the aligned samples estimates the
post-join correlation.  QCR additionally quantizes (key, sign-of-deviation)
pairs so that inner-product of sketch sets estimates correlation strength.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sketch.hashing import stable_hash64


@dataclass(frozen=True)
class _Sample:
    key_hash: int
    key: str
    value: float


class CorrelationSketch:
    """Keyed bottom-n sample of (join key, numeric value) pairs."""

    def __init__(self, n: int = 256, seed: int = 13):
        if n < 4:
            raise ValueError("sketch size must be >= 4")
        self.n = n
        self.seed = seed
        self._samples: dict[int, _Sample] = {}

    @classmethod
    def from_pairs(
        cls, pairs, n: int = 256, seed: int = 13
    ) -> "CorrelationSketch":
        """Build from an iterable of (key, value); non-finite values skipped."""
        sk = cls(n, seed)
        for key, value in pairs:
            sk.update(str(key), float(value))
        return sk

    def update(self, key: str, value: float) -> None:
        if not math.isfinite(value):
            return
        h = stable_hash64(key.strip().lower(), self.seed)
        if h in self._samples:
            return
        self._samples[h] = _Sample(h, key, value)
        if len(self._samples) > self.n:
            # Drop the largest hash (keep bottom-n).
            worst = max(self._samples)
            del self._samples[worst]

    def __len__(self) -> int:
        return len(self._samples)

    def aligned_values(
        self, other: "CorrelationSketch"
    ) -> tuple[list[float], list[float]]:
        """Values of keys sampled by *both* sketches, aligned by key."""
        common = sorted(set(self._samples) & set(other._samples))
        xs = [self._samples[h].value for h in common]
        ys = [other._samples[h].value for h in common]
        return xs, ys

    def correlation(self, other: "CorrelationSketch") -> float:
        """Estimated post-join Pearson correlation (0 if too few shared keys)."""
        xs, ys = self.aligned_values(other)
        return pearson(xs, ys)

    def containment(self, other: "CorrelationSketch") -> float:
        """Estimated fraction of this sketch's keys present in the other —
        the joinability signal accompanying the correlation signal."""
        if not self._samples:
            return 0.0
        shared = len(set(self._samples) & set(other._samples))
        return shared / len(self._samples)


def pearson(xs: list[float], ys: list[float]) -> float:
    """Plain Pearson correlation; 0.0 when undefined (n < 3 or 0 variance)."""
    n = len(xs)
    if n < 3 or n != len(ys):
        return 0.0
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(xs, ys))
    vx = sum((a - mx) ** 2 for a in xs)
    vy = sum((b - my) ** 2 for b in ys)
    if vx <= 0 or vy <= 0:
        return 0.0
    return cov / math.sqrt(vx * vy)
