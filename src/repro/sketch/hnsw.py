"""Hierarchical Navigable Small World (HNSW) graphs from scratch.

Graph-based approximate nearest-neighbour index (Malkov & Yashunin,
TPAMI'20), surveyed in §2.5/§3 as the state-of-the-art vector index behind
Starmie-style embedding search.  Implements the standard construction
(exponential level assignment, greedy descent, efConstruction beam search,
bidirectional links with degree bounds) and beam-search querying.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Hashable

import numpy as np

from repro.core.errors import IndexError_
from repro.obs import METRICS, TRACER


class HNSW:
    """Approximate k-NN index over dense vectors.

    Parameters mirror the paper: ``m`` is the degree bound per layer (2m at
    layer 0), ``ef_construction`` the construction beam width.  ``metric``
    is "cosine" (vectors normalized at insert) or "l2".
    """

    def __init__(
        self,
        dim: int,
        m: int = 8,
        ef_construction: int = 64,
        metric: str = "cosine",
        seed: int = 0,
    ):
        if metric not in ("cosine", "l2"):
            raise IndexError_(f"unknown metric {metric!r}")
        self.dim = dim
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.metric = metric
        self._ml = 1.0 / math.log(m) if m > 1 else 1.0
        self._rng = random.Random(seed)
        self._vectors: list[np.ndarray] = []
        self._keys: list[Hashable] = []
        self._key_to_id: dict[Hashable, int] = {}
        #: per node: list of {neighbour id} sets, one per layer it occupies
        self._links: list[list[set[int]]] = []
        self._entry: int | None = None
        self._max_level = -1
        #: lifetime count of distance evaluations (inserts + queries)
        self.distance_computations = 0

    def __len__(self) -> int:
        return len(self._keys)

    # -- distances ----------------------------------------------------------------

    def _prep(self, vector: np.ndarray) -> np.ndarray:
        v = np.asarray(vector, dtype=np.float64)
        if v.shape != (self.dim,):
            raise IndexError_(f"expected dim {self.dim}, got shape {v.shape}")
        if self.metric == "cosine":
            n = np.linalg.norm(v)
            if n > 0:
                v = v / n
        return v

    def _dist(self, v: np.ndarray, node: int) -> float:
        self.distance_computations += 1
        u = self._vectors[node]
        if self.metric == "cosine":
            return 1.0 - float(np.dot(v, u))
        d = v - u
        return float(np.dot(d, d))

    # -- construction ---------------------------------------------------------------

    def add(self, key: Hashable, vector: np.ndarray) -> None:
        """Insert a keyed vector."""
        if key in self._key_to_id:
            raise IndexError_(f"duplicate key {key!r}")
        METRICS.inc("index.hnsw.nodes_added")
        before = self.distance_computations
        try:
            self._add(key, vector)
        finally:
            METRICS.inc(
                "index.hnsw.insert_distance_computations",
                self.distance_computations - before,
            )

    def _add(self, key: Hashable, vector: np.ndarray) -> None:
        v = self._prep(vector)
        node = len(self._keys)
        level = int(-math.log(max(self._rng.random(), 1e-12)) * self._ml)
        self._vectors.append(v)
        self._keys.append(key)
        self._key_to_id[key] = node
        self._links.append([set() for _ in range(level + 1)])

        if self._entry is None:
            self._entry = node
            self._max_level = level
            return

        ep = self._entry
        # Greedy descent through layers above the node's top level.
        for layer in range(self._max_level, level, -1):
            ep = self._greedy_step(v, ep, layer)

        # Beam search + link at each shared layer.
        for layer in range(min(level, self._max_level), -1, -1):
            cands = self._search_layer(v, [ep], layer, self.ef_construction)
            limit = self.m0 if layer == 0 else self.m
            neighbours = self._select_neighbours(v, cands, limit)
            for d, nb in neighbours:
                self._links[node][layer].add(nb)
                self._links[nb][layer].add(node)
                self._shrink(nb, layer)
            if neighbours:
                ep = neighbours[0][1]

        if level > self._max_level:
            self._max_level = level
            self._entry = node

    def _shrink(self, node: int, layer: int) -> None:
        """Enforce the degree bound by keeping the closest neighbours."""
        limit = self.m0 if layer == 0 else self.m
        links = self._links[node][layer]
        if len(links) <= limit:
            return
        v = self._vectors[node]
        ranked = sorted(links, key=lambda nb: self._dist(v, nb))
        keep = set(ranked[:limit])
        for nb in links - keep:
            self._links[nb][layer].discard(node)
        self._links[node][layer] = keep

    def _greedy_step(self, v: np.ndarray, ep: int, layer: int) -> int:
        """Greedy walk to the local minimum on one layer."""
        cur, cur_d = ep, self._dist(v, ep)
        improved = True
        while improved:
            improved = False
            for nb in self._links[cur][layer] if layer < len(self._links[cur]) else ():
                d = self._dist(v, nb)
                if d < cur_d:
                    cur, cur_d = nb, d
                    improved = True
        return cur

    def _search_layer(
        self, v: np.ndarray, entry_points: list[int], layer: int, ef: int
    ) -> list[tuple[float, int]]:
        """Beam search on one layer; returns (distance, node) sorted ascending."""
        visited = set(entry_points)
        candidates = [(self._dist(v, ep), ep) for ep in entry_points]
        heapq.heapify(candidates)
        # Max-heap of current best ef results via negated distance.
        results = [(-d, n) for d, n in candidates]
        heapq.heapify(results)
        while candidates:
            d, node = heapq.heappop(candidates)
            if results and d > -results[0][0]:
                break
            for nb in (
                self._links[node][layer] if layer < len(self._links[node]) else ()
            ):
                if nb in visited:
                    continue
                visited.add(nb)
                dn = self._dist(v, nb)
                if len(results) < ef or dn < -results[0][0]:
                    heapq.heappush(candidates, (dn, nb))
                    heapq.heappush(results, (-dn, nb))
                    if len(results) > ef:
                        heapq.heappop(results)
        out = sorted((-nd, n) for nd, n in results)
        return out

    def _select_neighbours(
        self, v: np.ndarray, cands: list[tuple[float, int]], limit: int
    ) -> list[tuple[float, int]]:
        """Simple neighbour selection: the ``limit`` closest candidates."""
        return sorted(cands)[:limit]

    def stats(self) -> dict:
        """Introspection: level histogram and layer-0 degree skew.

        The level histogram verifies the exponential level assignment; the
        degree distribution exposes hub nodes (graph quality) and the
        entry-point level bounds greedy-descent work per query.
        """
        from repro.obs.introspect import summarize_distribution

        levels: dict[int, int] = {}
        for links in self._links:
            top = len(links) - 1
            levels[top] = levels.get(top, 0) + 1
        return {
            "nodes": len(self._keys),
            "dim": self.dim,
            "m": self.m,
            "metric": self.metric,
            "max_level": self._max_level,
            "level_histogram": {str(k): levels[k] for k in sorted(levels)},
            "degree_layer0": summarize_distribution(
                len(links[0]) for links in self._links if links
            ),
            "distance_computations": self.distance_computations,
        }

    # -- querying ----------------------------------------------------------------------

    def search(
        self, vector: np.ndarray, k: int = 10, ef: int | None = None
    ) -> list[tuple[Hashable, float]]:
        """Approximate k nearest neighbours as (key, distance), ascending."""
        if self._entry is None:
            return []
        before = self.distance_computations
        v = self._prep(vector)
        ef = max(ef or max(2 * k, self.ef_construction // 2), k)
        ep = self._entry
        for layer in range(self._max_level, 0, -1):
            ep = self._greedy_step(v, ep, layer)
        found = self._search_layer(v, [ep], 0, ef)
        ndist = self.distance_computations - before
        METRICS.inc("index.hnsw.queries")
        METRICS.inc("index.hnsw.distance_computations", ndist)
        sp = TRACER.current()
        sp.set(
            "hnsw.distance_computations",
            sp.attrs.get("hnsw.distance_computations", 0) + ndist,
        )
        return [(self._keys[n], d) for d, n in found[:k]]


def brute_force_knn(
    vectors: dict[Hashable, np.ndarray],
    query: np.ndarray,
    k: int = 10,
    metric: str = "cosine",
) -> list[tuple[Hashable, float]]:
    """Exact k-NN reference used for recall measurement in E10."""
    q = np.asarray(query, dtype=np.float64)
    if metric == "cosine":
        qn = np.linalg.norm(q)
        q = q / qn if qn > 0 else q
    scored = []
    for key, v in vectors.items():
        v = np.asarray(v, dtype=np.float64)
        if metric == "cosine":
            n = np.linalg.norm(v)
            v = v / n if n > 0 else v
            d = 1.0 - float(np.dot(q, v))
        else:
            diff = q - v
            d = float(np.dot(diff, diff))
        scored.append((d, str(key), key))
    scored.sort()
    return [(key, d) for d, _, key in scored[:k]]
