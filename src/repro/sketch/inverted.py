"""Token -> posting-list inverted index.

The substrate for exact overlap search (JOSIE, §2.4) and BM25 keyword search
(§2.3).  Postings are kept sorted by key for deterministic iteration; global
document-frequency statistics support both JOSIE's rare-token-first probing
order and BM25 weighting.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.obs import METRICS


class InvertedIndex:
    """Maps tokens to the set of keys whose token set contains them."""

    def __init__(self):
        self._postings: dict[str, list[Hashable]] = {}
        self._sizes: dict[Hashable, int] = {}
        self._sorted = True

    def __len__(self) -> int:
        return len(self._sizes)

    @property
    def num_tokens(self) -> int:
        return len(self._postings)

    def insert(self, key: Hashable, tokens: Iterable[str]) -> None:
        """Index a key under its distinct tokens."""
        distinct = set(tokens)
        self._sizes[key] = len(distinct)
        for t in distinct:
            self._postings.setdefault(t, []).append(key)
        self._sorted = False
        METRICS.inc("index.inverted.keys_indexed")
        METRICS.inc("index.inverted.postings_written", len(distinct))

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            for plist in self._postings.values():
                plist.sort(key=str)
            self._sorted = True

    def postings(self, token: str) -> list[Hashable]:
        """Keys containing the token (sorted; empty list if unseen)."""
        self._ensure_sorted()
        METRICS.inc("index.inverted.postings_reads")
        return self._postings.get(token, [])

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(token, ()))

    def size_of(self, key: Hashable) -> int:
        """Distinct-token count of an indexed key."""
        return self._sizes[key]

    def keys(self) -> list[Hashable]:
        return list(self._sizes)

    def stats(self) -> dict:
        """Introspection: vocabulary size and posting-list skew."""
        from repro.obs.introspect import summarize_distribution

        return {
            "keys": len(self._sizes),
            "vocabulary": len(self._postings),
            "posting_list_len": summarize_distribution(
                len(p) for p in self._postings.values()
            ),
        }

    def overlaps(self, tokens: Iterable[str]) -> dict[Hashable, int]:
        """Exact overlap |Q ∩ X| for every indexed key X (full scan merge)."""
        counts: dict[Hashable, int] = {}
        for t in set(tokens):
            for key in self._postings.get(t, ()):
                counts[key] = counts.get(key, 0) + 1
        return counts
