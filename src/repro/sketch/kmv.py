"""KMV (k minimum values / bottom-k) sketch for distinct-count estimation.

Cardinality estimates feed the containment conversion in LSH Ensemble and
JOSIE's cost model; KMV gives an unbiased (k-1)/max_kth estimator.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.sketch.hashing import stable_hash64

_MAX64 = float(1 << 64)


class KMV:
    """Bottom-k sketch: keeps the k smallest distinct 64-bit hashes."""

    def __init__(self, k: int = 256, seed: int = 7):
        if k < 2:
            raise ValueError("KMV requires k >= 2")
        self.k = k
        self.seed = seed
        self._heap: list[int] = []  # max-heap via negation
        self._members: set[int] = set()

    @classmethod
    def from_values(cls, values: Iterable[str], k: int = 256, seed: int = 7) -> "KMV":
        sk = cls(k, seed)
        for v in values:
            sk.update(v)
        return sk

    def update(self, token: str) -> None:
        h = stable_hash64(str(token), self.seed)
        if h in self._members:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, -h)
            self._members.add(h)
        elif h < -self._heap[0]:
            removed = -heapq.heappushpop(self._heap, -h)
            self._members.discard(removed)
            self._members.add(h)

    def estimate(self) -> float:
        """Estimated number of distinct values seen."""
        n = len(self._heap)
        if n < self.k:
            return float(n)  # sketch not saturated: exact
        kth = -self._heap[0] / _MAX64
        return (self.k - 1) / kth if kth > 0 else float(n)

    def merge(self, other: "KMV") -> "KMV":
        """Sketch of the union of the two streams."""
        if self.k != other.k or self.seed != other.seed:
            raise ValueError("incompatible KMV sketches")
        out = KMV(self.k, self.seed)
        for h in set(self._members) | set(other._members):
            if len(out._heap) < out.k:
                heapq.heappush(out._heap, -h)
                out._members.add(h)
            elif h < -out._heap[0]:
                removed = -heapq.heappushpop(out._heap, -h)
                out._members.discard(removed)
                out._members.add(h)
        return out
