"""MinHash signatures for Jaccard (and containment) estimation.

MinHash is the workhorse sketch behind LSH-based joinable and unionable
table search (survey §2.4-2.5).  The estimator is the classic one: the
probability that two sets share a minimum under a random permutation equals
their Jaccard similarity.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.sketch.hashing import MERSENNE_31, UniversalHashFamily, hash_tokens

_FAMILIES: dict[tuple[int, int], UniversalHashFamily] = {}


def _family(num_perm: int, seed: int) -> UniversalHashFamily:
    """Share hash families across sketches with the same (k, seed)."""
    key = (num_perm, seed)
    if key not in _FAMILIES:
        _FAMILIES[key] = UniversalHashFamily(num_perm, seed)
    return _FAMILIES[key]


class MinHash:
    """A MinHash signature over a set of string tokens."""

    def __init__(self, num_perm: int = 128, seed: int = 1):
        self.num_perm = num_perm
        self.seed = seed
        self.hashvalues = np.full(num_perm, MERSENNE_31, dtype=np.uint64)
        self._size = 0  # number of update calls (not distinct count)

    @classmethod
    def from_values(
        cls, values: Iterable[str], num_perm: int = 128, seed: int = 1
    ) -> "MinHash":
        mh = cls(num_perm, seed)
        mh.update_batch(values)
        return mh

    def update(self, token: str) -> None:
        self.update_batch([token])

    def update_batch(self, tokens: Iterable[str]) -> None:
        """Fold a batch of tokens into the signature (vectorized)."""
        toks = list(tokens)
        if not toks:
            return
        hashed = hash_tokens(toks, seed=0)
        table = _family(self.num_perm, self.seed).apply(hashed)  # (k, n)
        np.minimum(self.hashvalues, table.min(axis=1), out=self.hashvalues)
        self._size += len(toks)

    def is_empty(self) -> bool:
        return bool(np.all(self.hashvalues == MERSENNE_31))

    def jaccard(self, other: "MinHash") -> float:
        """Estimate Jaccard similarity with another signature."""
        self._check_compatible(other)
        return float(np.mean(self.hashvalues == other.hashvalues))

    def containment(self, other: "MinHash", my_cardinality: int,
                    other_cardinality: int) -> float:
        """Estimate containment |A ∩ B| / |A| from Jaccard and cardinalities.

        Uses the inclusion-exclusion identity
        c = j * (|A| + |B|) / (|A| * (1 + j)), clipped to [0, 1].
        """
        j = self.jaccard(other)
        if my_cardinality == 0:
            return 0.0
        c = j * (my_cardinality + other_cardinality) / (
            my_cardinality * (1.0 + j)
        )
        return min(1.0, max(0.0, c))

    def merge(self, other: "MinHash") -> "MinHash":
        """Signature of the union of the two underlying sets."""
        self._check_compatible(other)
        out = MinHash(self.num_perm, self.seed)
        out.hashvalues = np.minimum(self.hashvalues, other.hashvalues)
        out._size = self._size + other._size
        return out

    def copy(self) -> "MinHash":
        out = MinHash(self.num_perm, self.seed)
        out.hashvalues = self.hashvalues.copy()
        out._size = self._size
        return out

    def _check_compatible(self, other: "MinHash") -> None:
        if self.num_perm != other.num_perm or self.seed != other.seed:
            raise ValueError(
                "incompatible MinHash signatures: "
                f"({self.num_perm}, {self.seed}) vs ({other.num_perm}, {other.seed})"
            )


def exact_jaccard(a: set, b: set) -> float:
    """Exact Jaccard similarity (test/benchmark reference)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def exact_containment(query: set, candidate: set) -> float:
    """Exact containment |Q ∩ C| / |Q| (test/benchmark reference)."""
    if not query:
        return 0.0
    return len(query & candidate) / len(query)
