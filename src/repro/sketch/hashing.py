"""Stable 64-bit hashing and universal hash families.

Python's builtin ``hash`` is salted per process, so every sketch in this
package hashes through blake2b for run-to-run determinism, then mixes with a
universal family h(x) = (a*x + b) mod p.  The family uses the Mersenne prime
p = 2^31 - 1 so that a*x (a, x < p) fits in uint64 and the whole family can
be applied vectorized in numpy.
"""

from __future__ import annotations

import hashlib

import numpy as np

MERSENNE_31 = (1 << 31) - 1
MAX_HASH = MERSENNE_31 - 1


def stable_hash64(token: str, seed: int = 0) -> int:
    """Deterministic 64-bit hash of a string token."""
    h = hashlib.blake2b(
        token.encode("utf-8"), digest_size=8, salt=seed.to_bytes(8, "little")
    )
    return int.from_bytes(h.digest(), "little")


def hash_tokens(tokens, seed: int = 0) -> np.ndarray:
    """Vector of stable 64-bit hashes for an iterable of string tokens."""
    return np.fromiter(
        (stable_hash64(t, seed) for t in tokens), dtype=np.uint64
    )


class UniversalHashFamily:
    """A family of k pairwise-independent functions h_i(x) = (a_i x + b_i) mod p.

    Inputs are 64-bit token hashes (reduced mod p internally); outputs lie in
    [0, p) with p = 2^31 - 1.  ``apply`` is vectorized: (n,) inputs ->
    (k, n) outputs.
    """

    def __init__(self, k: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.k = k
        self.a = rng.integers(1, MERSENNE_31, size=k, dtype=np.uint64)
        self.b = rng.integers(0, MERSENNE_31, size=k, dtype=np.uint64)

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Map (n,) uint64 inputs -> (k, n) outputs in [0, 2^31 - 1)."""
        p = np.uint64(MERSENNE_31)
        v = values.astype(np.uint64, copy=False) % p
        # a*v < 2^31 * 2^31 = 2^62: no uint64 overflow.
        return (self.a[:, None] * v[None, :] + self.b[:, None]) % p

    def apply_one(self, value: int) -> np.ndarray:
        """Map a single pre-hashed input through all k functions."""
        return self.apply(np.array([value], dtype=np.uint64))[:, 0]
