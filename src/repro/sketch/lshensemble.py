"""LSH Ensemble: internet-scale set *containment* search (Zhu et al., VLDB'16).

Jaccard-threshold LSH is biased against large candidate sets, which is fatal
under the skewed cardinality distributions of data lakes.  LSH Ensemble
partitions the indexed domains by cardinality (equi-depth), converts the
query's containment threshold into a per-partition Jaccard threshold using
the partition's *upper* cardinality bound

    j_p(t) = t * |Q| / (|Q| + u_p - t * |Q|)

and probes each partition with banding parameters tuned to j_p.  One
partition degenerates to plain containment-converted LSH (the ablation
baseline in E2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

from repro.core.errors import IndexError_
from repro.obs import METRICS, TRACER
from repro.sketch.lsh import collision_probability
from repro.sketch.minhash import MinHash


def containment_to_jaccard(t: float, query_size: int, upper_size: int) -> float:
    """Lower bound on Jaccard given containment >= t and |X| <= upper_size."""
    if query_size <= 0:
        return 0.0
    denom = query_size + upper_size - t * query_size
    if denom <= 0:
        return 1.0
    return max(0.0, min(1.0, t * query_size / denom))


class _Bandings:
    """Pre-built LSH tables for several (b, r) configurations over one set of
    signatures, so the ensemble can pick banding per query threshold."""

    ROWS = (1, 2, 4, 8, 16, 32)

    def __init__(self, num_perm: int):
        self.num_perm = num_perm
        self.rows = [r for r in self.ROWS if r <= num_perm]
        # r -> list of band hash tables
        self._tables: dict[int, list[dict[bytes, list[Hashable]]]] = {
            r: [defaultdict(list) for _ in range(num_perm // r)]
            for r in self.rows
        }
        self.keys: dict[Hashable, tuple[MinHash, int]] = {}

    def insert(self, key: Hashable, mh: MinHash, size: int) -> None:
        self.keys[key] = (mh, size)
        sig = mh.hashvalues
        for r, tables in self._tables.items():
            for i, table in enumerate(tables):
                table[sig[i * r : (i + 1) * r].tobytes()].append(key)

    def choose_rows(self, j: float) -> int:
        """Pick r (b = num_perm//r) near threshold j.

        False negatives are weighted heavily: the ensemble's contract is
        recall at the containment threshold (the paper optimizes partitions
        for zero false negatives and accepts extra candidates, which the
        caller verifies anyway).
        """
        best_r, best_cost = self.rows[0], float("inf")
        for r in self.rows:
            b = self.num_perm // r
            fn = 1.0 - collision_probability(j, b, r)
            fp = collision_probability(max(0.0, j - 0.2), b, r)
            cost = 5.0 * fn + fp
            if cost < best_cost:
                best_r, best_cost = r, cost
        return best_r

    def query(self, mh: MinHash, j: float) -> list[Hashable]:
        r = self.choose_rows(j)
        tables = self._tables[r]
        sig = mh.hashvalues
        seen: set[Hashable] = set()
        out = []
        for i, table in enumerate(tables):
            for key in table.get(sig[i * r : (i + 1) * r].tobytes(), ()):
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out


class LSHEnsemble:
    """Containment-threshold index over (key, MinHash, set size) triples.

    Build with ``index(entries)`` (a single bulk call, which computes the
    equi-depth cardinality partitioning), then probe with
    ``query(minhash, size, threshold)``.
    """

    def __init__(self, num_partitions: int = 8, num_perm: int = 128):
        if num_partitions < 1:
            raise IndexError_("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.num_perm = num_perm
        self._partitions: list[tuple[int, _Bandings]] = []  # (upper bound, bandings)
        self._indexed = False

    def index(self, entries: list[tuple[Hashable, MinHash, int]]) -> None:
        """Bulk-build: equi-depth partition by set size, then fill bandings."""
        if self._indexed:
            raise IndexError_("LSHEnsemble.index may only be called once")
        if not entries:
            raise IndexError_("cannot index an empty entry list")
        entries = sorted(entries, key=lambda e: e[2])
        n = len(entries)
        per = max(1, n // self.num_partitions)
        self._partitions = []
        for start in range(0, n, per):
            chunk = entries[start : start + per]
            if not chunk:
                continue
            upper = chunk[-1][2]
            bandings = _Bandings(self.num_perm)
            for key, mh, size in chunk:
                bandings.insert(key, mh, size)
            self._partitions.append((upper, bandings))
        self._indexed = True
        METRICS.inc("index.lshensemble.keys_indexed", n)
        METRICS.set_gauge("index.lshensemble.partitions", len(self._partitions))

    def stats(self) -> dict:
        """Introspection: per-partition occupancy and cardinality bounds.

        Equi-depth partitioning should yield near-uniform occupancy; a
        skewed histogram means the cardinality distribution shifted under
        the index and per-partition Jaccard thresholds are mistuned.
        """
        from repro.obs.introspect import summarize_distribution

        occupancy = [len(b.keys) for _, b in self._partitions]
        return {
            "keys": sum(occupancy),
            "num_perm": self.num_perm,
            "partitions": len(self._partitions),
            "partition_occupancy": occupancy,
            "partition_upper_bounds": [u for u, _ in self._partitions],
            "occupancy": summarize_distribution(occupancy),
        }

    def query(
        self, mh: MinHash, size: int, threshold: float
    ) -> list[Hashable]:
        """Candidate keys whose containment of the query likely >= threshold."""
        if not self._indexed:
            raise IndexError_("query before index()")
        out: list[Hashable] = []
        seen: set[Hashable] = set()
        for upper, bandings in self._partitions:
            j = containment_to_jaccard(threshold, size, max(upper, 1))
            for key in bandings.query(mh, j):
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        METRICS.inc("index.lshensemble.queries")
        METRICS.inc("index.lshensemble.partitions_probed", len(self._partitions))
        METRICS.inc("index.lshensemble.candidates_returned", len(out))
        sp = TRACER.current()
        sp.set("lshensemble.partitions_probed", len(self._partitions))
        sp.set("lshensemble.candidates_returned", len(out))
        return out

    def query_verified(
        self, mh: MinHash, size: int, threshold: float
    ) -> list[tuple[Hashable, float]]:
        """Candidates with *estimated* containment >= threshold, sorted."""
        if not self._indexed:
            raise IndexError_("query before index()")
        scored = []
        candidates = 0
        for upper, bandings in self._partitions:
            j = containment_to_jaccard(threshold, size, max(upper, 1))
            for key in bandings.query(mh, j):
                candidates += 1
                cand_mh, cand_size = bandings.keys[key]
                c = mh.containment(cand_mh, size, cand_size)
                if c >= threshold:
                    scored.append((key, c))
        scored.sort(key=lambda kv: (-kv[1], str(kv[0])))
        METRICS.inc("index.lshensemble.queries")
        METRICS.inc("index.lshensemble.partitions_probed", len(self._partitions))
        METRICS.inc("index.lshensemble.candidates_returned", candidates)
        METRICS.inc("index.lshensemble.candidates_verified", len(scored))
        return scored
