"""Juneau-style data profiles (Zhang & Ives, SIGMOD'20).

Juneau finds related tables in notebooks by first computing *data profiles*
per column — compact summaries of values, shape and sketches — and then
matching profiles instead of raw data.  This module provides the profile
record and a profile-based relatedness score, which the EKG and the
stitcher can consume as a cheap first-pass signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datalake.table import Column, Table
from repro.datalake.types import DataType
from repro.sketch.minhash import MinHash
from repro.sketch.simhash import simhash, simhash_similarity


@dataclass
class ColumnProfile:
    """Compact per-column summary used for cheap relatedness checks."""

    name: str
    dtype: DataType
    row_count: int
    distinct_count: int
    null_fraction: float
    mean_length: float
    minhash: MinHash | None  # text columns only
    shape_fingerprint: int  # SimHash over value shapes
    numeric_mean: float = 0.0
    numeric_std: float = 0.0

    @classmethod
    def from_column(cls, column: Column, num_perm: int = 64) -> "ColumnProfile":
        values = column.non_null_values()
        lengths = [len(v) for v in values] or [0]
        shapes = [
            "".join("9" if c.isdigit() else "a" for c in v[:8]) for v in values[:50]
        ]
        mh = None
        mean = std = 0.0
        if column.is_numeric:
            nums = column.numeric_values()
            nums = nums[np.isfinite(nums)]
            if len(nums):
                mean = float(np.mean(nums))
                std = float(np.std(nums))
        else:
            mh = MinHash.from_values(column.value_set(), num_perm=num_perm)
        return cls(
            name=column.name,
            dtype=column.dtype,
            row_count=len(column),
            distinct_count=column.distinct_count(),
            null_fraction=column.null_fraction(),
            mean_length=float(np.mean(lengths)),
            minhash=mh,
            shape_fingerprint=simhash(shapes) if shapes else 0,
            numeric_mean=mean,
            numeric_std=std,
        )

    def similarity(self, other: "ColumnProfile") -> float:
        """Profile relatedness in [0, 1]: content (MinHash) when both are
        textual, distribution proximity when both numeric, shape otherwise."""
        if self.minhash is not None and other.minhash is not None:
            content = self.minhash.jaccard(other.minhash)
            shape = simhash_similarity(
                self.shape_fingerprint, other.shape_fingerprint
            )
            return 0.7 * content + 0.3 * shape
        if self.dtype in (DataType.INTEGER, DataType.FLOAT) and other.dtype in (
            DataType.INTEGER,
            DataType.FLOAT,
        ):
            scale = max(abs(self.numeric_std), abs(other.numeric_std), 1e-9)
            return 1.0 / (1.0 + abs(self.numeric_mean - other.numeric_mean) / scale)
        return 0.0


@dataclass
class TableProfile:
    """Profiles for all columns of a table."""

    table: str
    columns: list[ColumnProfile]

    @classmethod
    def from_table(cls, table: Table, num_perm: int = 64) -> "TableProfile":
        return cls(
            table.name,
            [ColumnProfile.from_column(c, num_perm) for c in table.columns],
        )

    def relatedness(self, other: "TableProfile") -> float:
        """Greedy best-pair matching of column profiles, normalized by the
        smaller table's width (Juneau's table-relatedness aggregation)."""
        if not self.columns or not other.columns:
            return 0.0
        scores = sorted(
            (
                (a.similarity(b), i, j)
                for i, a in enumerate(self.columns)
                for j, b in enumerate(other.columns)
            ),
            key=lambda t: (-t[0], t[1], t[2]),
        )
        used_a: set[int] = set()
        used_b: set[int] = set()
        total = 0.0
        for s, i, j in scores:
            if s <= 0 or i in used_a or j in used_b:
                continue
            used_a.add(i)
            used_b.add(j)
            total += s
        return total / min(len(self.columns), len(other.columns))
