"""Unsupervised domain discovery (D4-style: Ota et al., VLDB'20; Li et al.,
KDD'17).

Domain discovery collects all values that belong to the same semantic domain
across a collection of tables, without supervision, by exploiting column
co-occurrence: two columns drawing from the same domain share values.  The
pipeline is: (1) connect columns whose value sets overlap; (2) take
connected components as candidate domains; (3) keep only values with robust
support (appearing in >= ``min_support`` columns of the component), D4's
defence against dirty columns; (4) pick a representative value per domain.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import networkx as nx

from repro.datalake.lake import DataLake
from repro.datalake.table import ColumnRef


@dataclass
class DiscoveredDomain:
    """One discovered domain: its values, source columns, representative."""

    values: set[str]
    columns: list[ColumnRef] = field(default_factory=list)
    representative: str = ""

    def __len__(self) -> int:
        return len(self.values)


class DomainDiscovery:
    """Column-overlap-graph domain discovery."""

    def __init__(
        self,
        overlap_threshold: float = 0.3,
        min_support: int = 2,
        min_domain_size: int = 5,
    ):
        self.overlap_threshold = overlap_threshold
        self.min_support = min_support
        self.min_domain_size = min_domain_size

    def discover(self, lake: DataLake) -> list[DiscoveredDomain]:
        """Return discovered domains, largest first."""
        cols = [(ref, col.value_set()) for ref, col in lake.iter_text_columns()]
        cols = [(ref, vs) for ref, vs in cols if len(vs) >= 2]

        # Candidate pairs via a value -> columns inverted index (avoids the
        # all-pairs comparison on large lakes).
        by_value: dict[str, list[int]] = {}
        for i, (_, vs) in enumerate(cols):
            for v in vs:
                by_value.setdefault(v, []).append(i)

        pair_overlap: Counter[tuple[int, int]] = Counter()
        for owners in by_value.values():
            if len(owners) < 2 or len(owners) > 50:
                continue  # values in too many columns are uninformative
            for a in range(len(owners)):
                for b in range(a + 1, len(owners)):
                    pair_overlap[(owners[a], owners[b])] += 1

        graph = nx.Graph()
        graph.add_nodes_from(range(len(cols)))
        for (a, b), inter in pair_overlap.items():
            smaller = min(len(cols[a][1]), len(cols[b][1]))
            if smaller and inter / smaller >= self.overlap_threshold:
                graph.add_edge(a, b)

        domains = []
        for component in nx.connected_components(graph):
            members = sorted(component)
            if len(members) < 2:
                continue
            support: Counter[str] = Counter()
            for i in members:
                support.update(cols[i][1])
            robust = {
                v for v, c in support.items() if c >= self.min_support
            }
            if len(robust) < self.min_domain_size:
                continue
            rep = max(robust, key=lambda v: (support[v], v))
            domains.append(
                DiscoveredDomain(
                    values=robust,
                    columns=[cols[i][0] for i in members],
                    representative=rep,
                )
            )
        domains.sort(key=lambda d: -len(d))
        return domains


def domain_recovery_score(
    discovered: list[DiscoveredDomain], truth: list[set[str]]
) -> float:
    """Mean best-F1 of each true domain against the discovered ones
    (the quality measure used by E8)."""
    if not truth:
        return 0.0
    total = 0.0
    for true_dom in truth:
        best = 0.0
        for d in discovered:
            inter = len(true_dom & d.values)
            if not inter:
                continue
            p = inter / len(d.values)
            r = inter / len(true_dom)
            best = max(best, 2 * p * r / (p + r))
        total += best
    return total / len(truth)
