"""Sherlock-style semantic type detection: a softmax classifier over
hand-crafted column features (Hulsebos et al., KDD'19).

The original is a deep network over 1588 features; the reproduction keeps
the architecture's essence — supervised learning on per-column features with
no table context — which is the baseline Sato improves on in E7.
"""

from __future__ import annotations

import numpy as np

from repro.datalake.table import Column
from repro.understanding.features import column_features


class SoftmaxClassifier:
    """Multinomial logistic regression trained with full-batch gradient
    descent + L2; features are standardized internally."""

    def __init__(
        self,
        n_epochs: int = 300,
        lr: float = 0.5,
        l2: float = 1e-3,
        seed: int = 0,
    ):
        self.n_epochs = n_epochs
        self.lr = lr
        self.l2 = l2
        self.seed = seed
        self.classes_: list[str] = []
        self._w: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: list[str]) -> "SoftmaxClassifier":
        x = np.asarray(features, dtype=float)
        self.classes_ = sorted(set(labels))
        label_index = {c: i for i, c in enumerate(self.classes_)}
        y = np.array([label_index[l] for l in labels])
        self._mu = x.mean(axis=0)
        self._sigma = x.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        xs = (x - self._mu) / self._sigma
        xs = np.hstack([xs, np.ones((len(xs), 1))])  # bias
        n, d = xs.shape
        k = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        w = rng.normal(0, 0.01, size=(d, k))
        onehot = np.eye(k)[y]
        for _ in range(self.n_epochs):
            logits = xs @ w
            logits -= logits.max(axis=1, keepdims=True)
            p = np.exp(logits)
            p /= p.sum(axis=1, keepdims=True)
            grad = xs.T @ (p - onehot) / n + self.l2 * w
            w -= self.lr * grad
        self._w = w
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._w is None:
            raise RuntimeError("classifier is not fitted")
        x = np.asarray(features, dtype=float)
        xs = (x - self._mu) / self._sigma
        xs = np.hstack([xs, np.ones((len(xs), 1))])
        logits = xs @ self._w
        logits -= logits.max(axis=1, keepdims=True)
        p = np.exp(logits)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> list[str]:
        p = self.predict_proba(features)
        return [self.classes_[i] for i in p.argmax(axis=1)]


class SherlockTypeDetector:
    """Per-column semantic type detector (no table context)."""

    def __init__(self, **clf_kwargs):
        self._clf = SoftmaxClassifier(**clf_kwargs)

    @property
    def classes_(self) -> list[str]:
        return self._clf.classes_

    def fit(self, columns: list[Column], labels: list[str]) -> "SherlockTypeDetector":
        feats = np.vstack([column_features(c) for c in columns])
        self._clf.fit(feats, labels)
        return self

    def predict(self, columns: list[Column]) -> list[str]:
        feats = np.vstack([column_features(c) for c in columns])
        return self._clf.predict(feats)

    def predict_proba(self, columns: list[Column]) -> np.ndarray:
        feats = np.vstack([column_features(c) for c in columns])
        return self._clf.predict_proba(feats)
