"""Ontology-based table annotation (Limaye et al. VLDB'10 / Venetis et al.
VLDB'11, survey §2.2).

Annotates cells with ontology entities, columns with ontology classes
(majority vote over covered cells), and column *pairs* with ontology
relationships — the annotations SANTOS-style relationship search consumes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.datalake.ontology import Ontology
from repro.datalake.table import Table


@dataclass
class TableAnnotation:
    """All annotations inferred for one table."""

    table: str
    #: column index -> ontology class (absent if uncovered)
    column_types: dict[int, str] = field(default_factory=dict)
    #: (column i, column j) -> relationship name
    relationships: dict[tuple[int, int], str] = field(default_factory=dict)
    #: column index -> coverage of its values by the ontology
    coverage: dict[int, float] = field(default_factory=dict)


class OntologyAnnotator:
    """Annotate tables against a (possibly partial) ontology."""

    def __init__(
        self,
        ontology: Ontology,
        min_support: float = 0.5,
        min_pair_support: float = 0.3,
        max_pair_rows: int = 200,
    ):
        self.ontology = ontology
        self.min_support = min_support
        self.min_pair_support = min_pair_support
        self.max_pair_rows = max_pair_rows

    def annotate_column(self, values: list[str]) -> str | None:
        """Majority-class annotation of a bag of values (None if uncovered)."""
        return self.ontology.annotate_column(values, self.min_support)

    def annotate(self, table: Table) -> TableAnnotation:
        """Annotate a table's columns and text-column pairs."""
        ann = TableAnnotation(table.name)
        text_cols = table.text_columns()
        for i, col in text_cols:
            vals = col.non_null_values()
            ann.coverage[i] = self.ontology.coverage_of(vals)
            cls = self.annotate_column(vals)
            if cls is not None:
                ann.column_types[i] = cls

        # Pairwise relationships from row-wise value pairs (sampled rows).
        n_rows = min(table.num_rows, self.max_pair_rows)
        for ai in range(len(text_cols)):
            for bi in range(ai + 1, len(text_cols)):
                i, ci = text_cols[ai]
                j, cj = text_cols[bi]
                votes: Counter[str] = Counter()
                checked = 0
                for r in range(n_rows):
                    a, b = ci.values[r], cj.values[r]
                    if not a.strip() or not b.strip():
                        continue
                    checked += 1
                    rel = self.ontology.relation_between_values(a, b)
                    if rel is not None:
                        votes[rel] += 1
                if not votes or checked == 0:
                    continue
                rel, n = votes.most_common(1)[0]
                if n >= self.min_pair_support * checked:
                    ann.relationships[(i, j)] = rel
        return ann


def synthesize_kb(lake_tables: list[Table], min_pair_count: int = 3) -> Ontology:
    """Build a SANTOS-style *synthesized* KB from the lake itself.

    Value pairs co-occurring row-wise in >= ``min_pair_count`` tables become
    instance-level facts under a synthesized relation per (column signature)
    — covering lake regions an existing KB misses (survey §3).
    """
    pair_tables: dict[tuple[str, str], set[str]] = {}
    for t in lake_tables:
        text_cols = t.text_columns()
        for ai in range(len(text_cols)):
            for bi in range(ai + 1, len(text_cols)):
                _, ci = text_cols[ai]
                _, cj = text_cols[bi]
                for a, b in zip(ci.values, cj.values):
                    a, b = a.strip().lower(), b.strip().lower()
                    if a and b:
                        pair_tables.setdefault((a, b), set()).add(t.name)
    onto = Ontology()
    onto.add_class("synth")
    for (a, b), tables in pair_tables.items():
        if len(tables) >= min_pair_count:
            onto.add_fact(a, b, "synth_rel")
    return onto
