"""Sherlock-style hand-crafted column features.

Sherlock (KDD'19) detects semantic column types from per-column feature
vectors (character distributions, value statistics, word features).  This is
a compact but faithful analogue: ~40 deterministic features per column.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.datalake.table import Column

FEATURE_NAMES = [
    "n_values",
    "distinct_ratio",
    "null_fraction",
    "mean_length",
    "std_length",
    "min_length",
    "max_length",
    "frac_digit_chars",
    "frac_alpha_chars",
    "frac_space_chars",
    "frac_punct_chars",
    "frac_upper_chars",
    "char_entropy",
    "frac_numeric_cells",
    "numeric_mean",
    "numeric_std",
    "numeric_min",
    "numeric_max",
    "frac_negative",
    "frac_integer_valued",
    "mean_tokens",
    "max_tokens",
    "has_at",
    "has_percent",
    "has_dollar",
    "has_dash",
    "has_slash",
    "has_colon",
    "has_dot",
    "has_paren",
    "has_comma",
    "starts_digit_frac",
    "starts_alpha_frac",
    "all_same_length",
    "mean_digit_runs",
    "frac_cells_with_digit",
    "frac_cells_all_digit",
    "frac_cells_capitalized",
    "len_4_frac",
    "len_5_frac",
]

_PUNCT = set(".,;:!?@#$%^&*()-_=+[]{}|/\\'\"<>~`")


def column_features(column: Column) -> np.ndarray:
    """Compute the feature vector of a column (see FEATURE_NAMES)."""
    values = [v for v in column.values if v.strip()]
    n = len(values)
    if n == 0:
        return np.zeros(len(FEATURE_NAMES))

    lengths = np.array([len(v) for v in values], dtype=float)
    all_text = "".join(values)
    n_chars = max(len(all_text), 1)
    digit = sum(c.isdigit() for c in all_text)
    alpha = sum(c.isalpha() for c in all_text)
    space = sum(c.isspace() for c in all_text)
    punct = sum(c in _PUNCT for c in all_text)
    upper = sum(c.isupper() for c in all_text)

    char_counts = Counter(all_text.lower())
    entropy = -sum(
        (c / n_chars) * math.log(c / n_chars) for c in char_counts.values()
    )

    numerics = []
    for v in values:
        try:
            x = float(v.replace(",", "").strip("$%"))
        except ValueError:
            continue
        if math.isfinite(x):
            numerics.append(x)
    numerics = np.array(numerics, dtype=float)
    frac_numeric = len(numerics) / n
    if len(numerics):
        num_mean = float(np.mean(numerics))
        num_std = float(np.std(numerics))
        num_min = float(np.min(numerics))
        num_max = float(np.max(numerics))
        frac_neg = float(np.mean(numerics < 0))
        frac_int = float(np.mean(numerics == np.round(numerics)))
    else:
        num_mean = num_std = num_min = num_max = frac_neg = frac_int = 0.0

    token_counts = np.array([len(v.split()) for v in values], dtype=float)

    def frac_with(ch: str) -> float:
        return sum(1 for v in values if ch in v) / n

    digit_runs = []
    for v in values:
        runs, in_run = 0, False
        for c in v:
            if c.isdigit() and not in_run:
                runs, in_run = runs + 1, True
            elif not c.isdigit():
                in_run = False
        digit_runs.append(runs)

    feats = [
        float(n),
        len(set(values)) / n,
        column.null_fraction(),
        float(np.mean(lengths)),
        float(np.std(lengths)),
        float(np.min(lengths)),
        float(np.max(lengths)),
        digit / n_chars,
        alpha / n_chars,
        space / n_chars,
        punct / n_chars,
        upper / n_chars,
        entropy,
        frac_numeric,
        _squash(num_mean),
        _squash(num_std),
        _squash(num_min),
        _squash(num_max),
        frac_neg,
        frac_int,
        float(np.mean(token_counts)),
        float(np.max(token_counts)),
        frac_with("@"),
        frac_with("%"),
        frac_with("$"),
        frac_with("-"),
        frac_with("/"),
        frac_with(":"),
        frac_with("."),
        frac_with("("),
        frac_with(","),
        sum(1 for v in values if v[0].isdigit()) / n,
        sum(1 for v in values if v[0].isalpha()) / n,
        1.0 if len(set(lengths.tolist())) == 1 else 0.0,
        float(np.mean(digit_runs)),
        sum(1 for v in values if any(c.isdigit() for c in v)) / n,
        sum(1 for v in values if v.isdigit()) / n,
        sum(1 for v in values if v[:1].isupper()) / n,
        float(np.mean(lengths == 4)),
        float(np.mean(lengths == 5)),
    ]
    return np.array(feats, dtype=float)


def _squash(x: float) -> float:
    """Signed log squash keeping magnitudes comparable across features."""
    return math.copysign(math.log1p(abs(x)), x)
