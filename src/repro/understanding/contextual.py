"""Starmie-style contextualized column representations (Fan et al., 2022).

Starmie's contribution over value-bag embeddings: a column's representation
depends on its *table context*, learned with self-supervised contrastive
training over augmented table views.  The reproduction keeps both
ingredients without a transformer:

* contextualization — a column's vector mixes its own value embedding with
  an attention-weighted combination of its sibling columns' vectors;
* contrastive refinement — a linear projection trained with the NT-Xent
  (SimCLR) objective on pairs of row-sampled views of the same column, so
  views of one column embed together while different columns repel.
"""

from __future__ import annotations

import random

import numpy as np

from repro.datalake.table import Table
from repro.understanding.embedding import EmbeddingSpace


class ContextualColumnEncoder:
    """Encode table columns into context-aware unit vectors."""

    def __init__(
        self,
        space: EmbeddingSpace,
        context_weight: float = 0.3,
        projection: np.ndarray | None = None,
    ):
        if not 0.0 <= context_weight < 1.0:
            raise ValueError("context_weight must be in [0, 1)")
        self.space = space
        self.context_weight = context_weight
        self.projection = projection  # optional trained (d, d) matrix

    # -- encoding -----------------------------------------------------------------

    def _raw_column_vectors(self, table: Table) -> list[np.ndarray]:
        return [
            self.space.embed_set(col.non_null_values())
            for col in table.columns
        ]

    def encode_table(self, table: Table) -> list[np.ndarray]:
        """Context-aware unit vectors, one per column of the table.

        Context is an attention-weighted mean of sibling vectors, with
        attention = softmax of cosine similarity to the target column —
        related siblings contribute more, mirroring self-attention.
        """
        raw = self._raw_column_vectors(table)
        out = []
        for i, own in enumerate(raw):
            siblings = [raw[j] for j in range(len(raw)) if j != i]
            if siblings and np.linalg.norm(own) > 0:
                sims = np.array([float(np.dot(own, s)) for s in siblings])
                weights = np.exp(sims - sims.max())
                weights /= weights.sum()
                context = sum(w * s for w, s in zip(weights, siblings))
                vec = (1 - self.context_weight) * own + self.context_weight * context
            else:
                vec = own
            if self.projection is not None:
                vec = vec @ self.projection
            norm = np.linalg.norm(vec)
            out.append(vec / norm if norm > 0 else vec)
        return out

    def encode_column(self, table: Table, index: int) -> np.ndarray:
        return self.encode_table(table)[index]


def _view_vector(
    space: EmbeddingSpace, values: list[str], rng: random.Random, frac: float
) -> np.ndarray:
    """Embed a random row-sampled view of a column (a Starmie augmentation)."""
    if not values:
        return np.zeros(space.dim)
    k = max(1, int(frac * len(values)))
    return space.embed_set(rng.sample(values, min(k, len(values))))


def train_contrastive_projection(
    space: EmbeddingSpace,
    tables: list[Table],
    dim: int | None = None,
    n_epochs: int = 30,
    batch_size: int = 24,
    temperature: float = 0.2,
    lr: float = 0.05,
    view_fraction: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """Learn a linear projection with the NT-Xent contrastive objective.

    Positives are two row-sampled views of the same column; all other view
    pairs in the batch are negatives.  Returns a (d, d') matrix usable as
    ``ContextualColumnEncoder(projection=...)``.
    """
    rng = random.Random(seed)
    d = space.dim
    dim = dim or d
    columns = [
        col.non_null_values()
        for t in tables
        for col in t.columns
        if not col.is_numeric and len(col.non_null_values()) >= 4
    ]
    if len(columns) < 4:
        return np.eye(d, dim)

    np_rng = np.random.default_rng(seed)
    w = np.eye(d, dim) + 0.01 * np_rng.normal(size=(d, dim))

    for _ in range(n_epochs):
        batch_cols = rng.sample(columns, min(batch_size, len(columns)))
        a = np.vstack([_view_vector(space, c, rng, view_fraction) for c in batch_cols])
        b = np.vstack([_view_vector(space, c, rng, view_fraction) for c in batch_cols])
        za, zb = a @ w, b @ w

        def normalize(z):
            n = np.linalg.norm(z, axis=1, keepdims=True)
            n[n == 0] = 1.0
            return z / n

        za_n, zb_n = normalize(za), normalize(zb)
        logits = za_n @ zb_n.T / temperature  # (n, n); diagonal = positives
        logits -= logits.max(axis=1, keepdims=True)
        p = np.exp(logits)
        p /= p.sum(axis=1, keepdims=True)
        n = len(batch_cols)
        grad_logits = (p - np.eye(n)) / n / temperature
        # Backprop through za_n @ zb_n.T, ignoring the normalization Jacobian
        # (standard simplification; direction is preserved).
        grad_za = grad_logits @ zb_n
        grad_zb = grad_logits.T @ za_n
        grad_w = a.T @ grad_za + b.T @ grad_zb
        w -= lr * grad_w
    return w
