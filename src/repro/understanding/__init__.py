"""Table understanding: annotation, type detection, domains, embeddings."""

from repro.understanding.annotate import (
    OntologyAnnotator,
    TableAnnotation,
    synthesize_kb,
)
from repro.understanding.contextual import (
    ContextualColumnEncoder,
    train_contrastive_projection,
)
from repro.understanding.domains import (
    DiscoveredDomain,
    DomainDiscovery,
    domain_recovery_score,
)
from repro.understanding.embedding import EmbeddingSpace, train_embeddings
from repro.understanding.features import FEATURE_NAMES, column_features
from repro.understanding.profiles import ColumnProfile, TableProfile
from repro.understanding.querytime import (
    AnnotationStats,
    QueryTimeAnnotator,
    batch_annotate,
)
from repro.understanding.sato import ColumnOnlyBaseline, SatoTypeDetector
from repro.understanding.sherlock import SherlockTypeDetector, SoftmaxClassifier

__all__ = [
    "FEATURE_NAMES",
    "AnnotationStats",
    "ColumnOnlyBaseline",
    "ColumnProfile",
    "ContextualColumnEncoder",
    "DiscoveredDomain",
    "DomainDiscovery",
    "EmbeddingSpace",
    "OntologyAnnotator",
    "SatoTypeDetector",
    "SherlockTypeDetector",
    "SoftmaxClassifier",
    "QueryTimeAnnotator",
    "TableProfile",
    "batch_annotate",
    "TableAnnotation",
    "column_features",
    "domain_recovery_score",
    "synthesize_kb",
    "train_contrastive_projection",
    "train_embeddings",
]
