"""Sato-style context-aware semantic type detection (Zhang et al., VLDB'20).

Sato's insight: a column's type correlates with its *table context* — the
types of sibling columns and the table's topic.  The reproduction augments
each column's Sherlock features with (a) the mean feature vector of its
sibling columns (topic proxy) and (b) a second-pass structured smoothing
where sibling type-probability mass is fed back as features, mimicking
Sato's CRF layer.
"""

from __future__ import annotations

import numpy as np

from repro.datalake.table import Table
from repro.understanding.features import column_features
from repro.understanding.sherlock import SoftmaxClassifier


def _table_context_features(table: Table) -> list[np.ndarray]:
    """For each column: [own features, mean features of sibling columns]."""
    per_col = [column_features(c) for c in table.columns]
    out = []
    for i, own in enumerate(per_col):
        siblings = [f for j, f in enumerate(per_col) if j != i]
        context = np.mean(siblings, axis=0) if siblings else np.zeros_like(own)
        out.append(np.concatenate([own, context]))
    return out


class SatoTypeDetector:
    """Two-stage context-aware type detector.

    Stage 1 trains a softmax classifier on [own, sibling-mean] features.
    Stage 2 re-trains with stage-1 sibling type probabilities appended,
    smoothing predictions toward types that co-occur in the same tables.
    """

    def __init__(self, two_stage: bool = True, **clf_kwargs):
        self.two_stage = two_stage
        self._stage1 = SoftmaxClassifier(**clf_kwargs)
        self._stage2 = SoftmaxClassifier(**clf_kwargs) if two_stage else None

    @property
    def classes_(self) -> list[str]:
        return self._stage1.classes_

    def fit(
        self, tables: list[Table], labels: dict[tuple[str, int], str]
    ) -> "SatoTypeDetector":
        """Train from tables plus {(table name, column index): type} labels."""
        feats, ys, slots = [], [], []
        for t in tables:
            ctx = _table_context_features(t)
            for i in range(t.num_cols):
                key = (t.name, i)
                if key in labels:
                    feats.append(ctx[i])
                    ys.append(labels[key])
                    slots.append((t.name, i))
        x = np.vstack(feats)
        self._stage1.fit(x, ys)
        if self._stage2 is not None:
            p1 = self._stage1.predict_proba(x)
            x2 = self._augment_with_sibling_probs(x, p1, slots)
            self._stage2.fit(x2, ys)
        return self

    def _augment_with_sibling_probs(
        self,
        x: np.ndarray,
        probs: np.ndarray,
        slots: list[tuple[str, int]],
    ) -> np.ndarray:
        """Append the mean type-probability vector of same-table siblings."""
        by_table: dict[str, list[int]] = {}
        for row, (tname, _) in enumerate(slots):
            by_table.setdefault(tname, []).append(row)
        sib = np.zeros_like(probs)
        for rows in by_table.values():
            total = probs[rows].sum(axis=0)
            for r in rows:
                others = len(rows) - 1
                sib[r] = (total - probs[r]) / others if others else 0.0
        return np.hstack([x, sib])

    def predict(self, tables: list[Table]) -> dict[tuple[str, int], str]:
        """Predict a type for every column of every table."""
        feats, slots = [], []
        for t in tables:
            ctx = _table_context_features(t)
            for i in range(t.num_cols):
                feats.append(ctx[i])
                slots.append((t.name, i))
        x = np.vstack(feats)
        p1 = self._stage1.predict_proba(x)
        if self._stage2 is not None:
            x2 = self._augment_with_sibling_probs(x, p1, slots)
            labels = self._stage2.predict(x2)
        else:
            labels = [self._stage1.classes_[i] for i in p1.argmax(axis=1)]
        return dict(zip(slots, labels))


class ColumnOnlyBaseline:
    """Ablation: the same pipeline with sibling context zeroed out, i.e.
    Sherlock re-expressed in Sato's interface (used by E7)."""

    def __init__(self, **clf_kwargs):
        self._clf = SoftmaxClassifier(**clf_kwargs)

    def fit(
        self, tables: list[Table], labels: dict[tuple[str, int], str]
    ) -> "ColumnOnlyBaseline":
        feats, ys = [], []
        for t in tables:
            for i, c in enumerate(t.columns):
                key = (t.name, i)
                if key in labels:
                    feats.append(column_features(c))
                    ys.append(labels[key])
        self._clf.fit(np.vstack(feats), ys)
        return self

    def predict(self, tables: list[Table]) -> dict[tuple[str, int], str]:
        feats, slots = [], []
        for t in tables:
            for i, c in enumerate(t.columns):
                feats.append(column_features(c))
                slots.append((t.name, i))
        labels = self._clf.predict(np.vstack(feats))
        return dict(zip(slots, labels))
