"""Query-time table annotation (tutorial §3, "Challenges").

Discovery systems traditionally annotate the whole lake offline; the
tutorial poses moving annotation to *query time* as an open challenge —
annotate only the tables a query actually touches, caching results so
repeated touches are free.  This module implements that mode with an LRU
cache and work counters, so E21 can quantify the batch-vs-lazy trade-off
the tutorial describes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.datalake.lake import DataLake
from repro.datalake.ontology import Ontology
from repro.understanding.annotate import OntologyAnnotator, TableAnnotation


@dataclass
class AnnotationStats:
    """Work counters for the lazy annotator."""

    requests: int = 0
    cache_hits: int = 0
    annotated: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0


@dataclass
class QueryTimeAnnotator:
    """Annotate tables on demand with a bounded LRU cache."""

    lake: DataLake
    ontology: Ontology
    capacity: int = 256
    stats: AnnotationStats = field(default_factory=AnnotationStats)

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._annotator = OntologyAnnotator(self.ontology)
        self._cache: OrderedDict[str, TableAnnotation] = OrderedDict()

    def annotate(self, table_name: str) -> TableAnnotation:
        """Annotation of one table — cached after the first request."""
        self.stats.requests += 1
        cached = self._cache.get(table_name)
        if cached is not None:
            self.stats.cache_hits += 1
            self._cache.move_to_end(table_name)
            return cached
        annotation = self._annotator.annotate(self.lake.table(table_name))
        self.stats.annotated += 1
        self._cache[table_name] = annotation
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return annotation

    def annotate_many(self, table_names: list[str]) -> list[TableAnnotation]:
        return [self.annotate(name) for name in table_names]

    def cached_tables(self) -> list[str]:
        return list(self._cache)


def batch_annotate(
    lake: DataLake, ontology: Ontology
) -> dict[str, TableAnnotation]:
    """The traditional offline mode: annotate every table up front."""
    annotator = OntologyAnnotator(ontology)
    return {table.name: annotator.annotate(table) for table in lake}
