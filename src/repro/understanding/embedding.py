"""Distributional value embeddings trained on the lake itself (PPMI + SVD).

Substitute for the pre-trained word/language-model embeddings used by the
surveyed systems (TUS's NL measure, PEXESO, Starmie, WarpGate).  Values that
appear in similar contexts — the same columns and the same rows — receive
nearby vectors, which is exactly the geometric property those systems
exploit.  Training is classic count-based distributional semantics:
positive pointwise mutual information over co-occurrence counts, factorized
with truncated SVD.
"""

from __future__ import annotations

import random
from collections import Counter
from math import log

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import svds

from repro.datalake.lake import DataLake


class EmbeddingSpace:
    """A trained value -> vector map with cosine-similarity utilities."""

    def __init__(self, vocab: list[str], vectors: np.ndarray):
        if len(vocab) != vectors.shape[0]:
            raise ValueError("vocab/vector row count mismatch")
        self.vocab = vocab
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self.vectors = vectors / norms
        self._index = {v: i for i, v in enumerate(vocab)}

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    def __contains__(self, value: str) -> bool:
        return str(value).lower() in self._index

    def vector(self, value: str) -> np.ndarray | None:
        """Unit vector for a value, or None if out-of-vocabulary."""
        i = self._index.get(str(value).lower())
        return self.vectors[i] if i is not None else None

    def embed_set(self, values, sample: int = 200) -> np.ndarray:
        """Mean vector of (a sample of) the values; zero vector if none known."""
        vals = list(values)
        if len(vals) > sample:
            vals = random.Random(0).sample(vals, sample)
        acc = np.zeros(self.dim)
        n = 0
        for v in vals:
            vec = self.vector(v)
            if vec is not None:
                acc += vec
                n += 1
        if n == 0:
            return acc
        acc /= n
        norm = np.linalg.norm(acc)
        return acc / norm if norm > 0 else acc

    def cosine(self, a: str, b: str) -> float:
        va, vb = self.vector(a), self.vector(b)
        if va is None or vb is None:
            return 0.0
        return float(np.dot(va, vb))

    def nearest(self, value: str, k: int = 10) -> list[tuple[str, float]]:
        """k most-similar vocabulary values by cosine."""
        v = self.vector(value)
        if v is None:
            return []
        sims = self.vectors @ v
        order = np.argsort(-sims)
        out = []
        for i in order:
            if self.vocab[i] != str(value).lower():
                out.append((self.vocab[i], float(sims[i])))
            if len(out) == k:
                break
        return out


def train_embeddings(
    lake: DataLake,
    dim: int = 64,
    min_count: int = 2,
    max_pairs_per_column: int = 4000,
    row_context: bool = True,
    seed: int = 0,
) -> EmbeddingSpace:
    """Train PPMI+SVD embeddings over the lake's value co-occurrences.

    Contexts: (1) column membership — pairs of values sampled from the same
    text column; (2) row adjacency — pairs of values from text cells of the
    same row.  Pair sampling bounds the quadratic blow-up on long columns.
    """
    rng = random.Random(seed)
    counts: Counter[str] = Counter()
    for _, col in lake.iter_text_columns():
        counts.update(col.non_null_values())
    vocab = sorted(v for v, c in counts.items() if c >= min_count)
    index = {v: i for i, v in enumerate(vocab)}
    if len(vocab) < 8:
        return EmbeddingSpace(vocab, np.zeros((len(vocab), max(dim, 1))))

    pair_counts: Counter[tuple[int, int]] = Counter()

    def record(a: str, b: str) -> None:
        ia, ib = index.get(a), index.get(b)
        if ia is None or ib is None or ia == ib:
            return
        pair_counts[(min(ia, ib), max(ia, ib))] += 1

    for table in lake:
        text_cols = [c for _, c in table.text_columns()]
        # Column context: values of one column share a domain.
        for col in text_cols:
            vals = col.non_null_values()
            if len(vals) < 2:
                continue
            n_pairs = min(max_pairs_per_column, 4 * len(vals))
            for _ in range(n_pairs):
                record(rng.choice(vals), rng.choice(vals))
        # Row context: values co-occurring in a row are related.
        if row_context and len(text_cols) >= 2:
            for i in range(table.num_rows):
                cells = [c.values[i].strip().lower() for c in text_cols]
                for a in range(len(cells)):
                    for b in range(a + 1, len(cells)):
                        record(cells[a], cells[b])

    if not pair_counts:
        return EmbeddingSpace(vocab, np.zeros((len(vocab), max(dim, 1))))

    total = sum(pair_counts.values()) * 2.0
    marginal = np.zeros(len(vocab))
    for (a, b), c in pair_counts.items():
        marginal[a] += c
        marginal[b] += c

    rows, cols, data = [], [], []
    for (a, b), c in pair_counts.items():
        pmi = log((c * total) / (marginal[a] * marginal[b]))
        if pmi > 0:
            rows.extend((a, b))
            cols.extend((b, a))
            data.extend((pmi, pmi))
    mat = coo_matrix(
        (data, (rows, cols)), shape=(len(vocab), len(vocab))
    ).tocsr()
    k = min(dim, len(vocab) - 1)
    u, s, _ = svds(mat, k=k, random_state=seed)
    vectors = u * np.sqrt(np.maximum(s, 0.0))[None, :]
    if vectors.shape[1] < dim:
        pad = np.zeros((vectors.shape[0], dim - vectors.shape[1]))
        vectors = np.hstack([vectors, pad])
    return EmbeddingSpace(vocab, vectors)
