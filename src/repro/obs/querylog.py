"""Structured query log: a bounded ring of per-query records.

Every online query the :class:`~repro.core.system.DiscoverySystem` serves
appends one :class:`QueryRecord` — engine, query, k, latency, the returned
result ids/scores, and (when the query ran with ``explain=True``) the
candidate-funnel counts.  The ring is bounded (oldest records drop first)
so the log is safe to leave on under sustained traffic; an optional JSONL
sink persists every record as it arrives.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class QueryRecord:
    """One served query: what was asked, what came back, and what it cost.

    Beyond wall-clock latency every record carries resource accounting:
    ``cpu_ms`` (thread CPU time, always on) and ``mem_peak_kb`` (peak
    allocation delta, populated only while
    ``obs.enable_memory_accounting()`` has tracemalloc running), plus
    ``funnel_total`` — the summed candidate-funnel counts when the query
    ran with ``explain=True``.
    """

    engine: str
    query: str = ""
    k: int = 0
    latency_ms: float = 0.0
    #: thread CPU time spent serving the query (milliseconds)
    cpu_ms: float = 0.0
    #: peak allocation delta in KiB (None unless memory accounting is on)
    mem_peak_kb: float | None = None
    #: ``(result id, score)`` pairs, truncated to the first ~20 hits.
    results: list[tuple[str, float]] = field(default_factory=list)
    #: EXPLAIN funnel counts (``{stage: count}``) when available.
    funnel: dict[str, int] = field(default_factory=dict)
    status: str = "ok"
    error: str | None = None
    ts: float = 0.0

    @property
    def funnel_total(self) -> int:
        """Summed candidate counts across funnel stages (0 without EXPLAIN)."""
        return sum(self.funnel.values())

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "ts": round(self.ts, 3),
            "engine": self.engine,
            "query": self.query,
            "k": self.k,
            "latency_ms": round(self.latency_ms, 3),
            "cpu_ms": round(self.cpu_ms, 3),
            "status": self.status,
            "results": [[str(i), float(s)] for i, s in self.results],
        }
        if self.mem_peak_kb is not None:
            out["mem_peak_kb"] = round(self.mem_peak_kb, 3)
        if self.funnel:
            out["funnel"] = dict(self.funnel)
            out["funnel_total"] = self.funnel_total
        if self.error:
            out["error"] = self.error
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QueryRecord":
        """Inverse of :meth:`to_dict` (tolerates records written by older
        versions without the resource-accounting fields)."""
        return cls(
            engine=data.get("engine", ""),
            query=data.get("query", ""),
            k=int(data.get("k", 0)),
            latency_ms=float(data.get("latency_ms", 0.0)),
            cpu_ms=float(data.get("cpu_ms", 0.0)),
            mem_peak_kb=(
                float(data["mem_peak_kb"])
                if data.get("mem_peak_kb") is not None
                else None
            ),
            results=[(str(i), float(s)) for i, s in data.get("results", [])],
            funnel={k: int(v) for k, v in data.get("funnel", {}).items()},
            status=data.get("status", "ok"),
            error=data.get("error"),
            ts=float(data.get("ts", 0.0)),
        )


class QueryLog:
    """Thread-safe bounded ring of :class:`QueryRecord` with a JSONL sink."""

    def __init__(self, capacity: int = 1024):
        self._lock = threading.Lock()
        self._ring: deque[QueryRecord] = deque(maxlen=capacity)
        self._sink_path: str | None = None
        self._total = 0

    # -- configuration ---------------------------------------------------------------

    def configure(
        self,
        capacity: int | None = None,
        sink: str | None = None,
    ) -> "QueryLog":
        """Resize the ring and/or set a JSONL sink path (``None`` keeps,
        ``""`` clears the sink)."""
        with self._lock:
            if capacity is not None:
                self._ring = deque(self._ring, maxlen=capacity)
            if sink is not None:
                self._sink_path = sink or None
        return self

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    @property
    def total(self) -> int:
        """Records ever appended (including ones the ring has dropped)."""
        with self._lock:
            return self._total

    # -- recording -------------------------------------------------------------------

    def append(self, record: QueryRecord) -> None:
        if not record.ts:
            record.ts = time.time()
        with self._lock:
            self._ring.append(record)
            self._total += 1
            sink = self._sink_path
        if sink:
            line = json.dumps(record.to_dict(), sort_keys=True)
            with open(sink, "a", encoding="utf-8") as f:
                f.write(line + "\n")

    # -- reading ---------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def records(self, engine: str | None = None) -> list[QueryRecord]:
        with self._lock:
            out = list(self._ring)
        if engine is not None:
            out = [r for r in out if r.engine == engine]
        return out

    def tail(self, n: int, engine: str | None = None) -> list[QueryRecord]:
        """The most recent ``n`` (matching) records, oldest first."""
        return self.records(engine)[-max(0, n):]

    def engines(self) -> list[str]:
        """Distinct engine names currently in the ring, sorted."""
        with self._lock:
            return sorted({r.engine for r in self._ring})

    def to_dicts(
        self, n: int | None = None, engine: str | None = None
    ) -> list[dict[str, Any]]:
        recs: Iterable[QueryRecord] = (
            self.records(engine) if n is None else self.tail(n, engine)
        )
        return [r.to_dict() for r in recs]

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest record first."""
        return "\n".join(
            json.dumps(d, sort_keys=True) for d in self.to_dicts()
        )

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._total = 0


def load_jsonl(path: str) -> list[QueryRecord]:
    """Read query records back from a JSONL sink file (blank lines skipped)."""
    out: list[QueryRecord] = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(QueryRecord.from_dict(json.loads(line)))
    return out


#: Process-wide query log, fed by ``DiscoverySystem``'s online query paths.
QUERY_LOG = QueryLog()
