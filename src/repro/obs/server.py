"""Stdlib-only observability HTTP endpoint.

:class:`ObservabilityServer` runs a ``http.server.ThreadingHTTPServer`` on
a background daemon thread and serves the process-wide telemetry:

* ``GET /metrics``    — Prometheus text exposition (scrape target);
* ``GET /health``     — liveness JSON (status, uptime, queries served);
* ``GET /querylog``   — recent query records as JSON (``?n=50`` limits —
  capped at the ring capacity — ``&engine=join`` filters);
* ``GET /trace``      — Chrome trace-event JSON of collected spans;
* ``GET /slo``        — SLO burn-rate report over the query log;
* ``GET /indexstats`` — the last published index introspection reports.

``port=0`` binds an ephemeral port (the bound port is available as
``server.port`` after :meth:`ObservabilityServer.start`), which is what the
tests use.  The CLI front-end is ``repro serve-metrics``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.log import get_logger

log = get_logger("obs.server")

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        from repro import obs

        split = urlsplit(self.path)
        try:
            if split.path == "/metrics":
                self._send(200, obs.METRICS.to_prometheus(), PROMETHEUS_CONTENT_TYPE)
            elif split.path == "/health":
                body = {
                    "status": "ok",
                    "uptime_s": round(time.time() - self.server.started_at, 3),
                    "queries_logged": obs.QUERY_LOG.total,
                    "tracing": obs.TRACER.enabled,
                }
                self._send_json(200, body)
            elif split.path == "/querylog":
                params = parse_qs(split.query)
                n = None
                if "n" in params:
                    try:
                        n = max(0, int(params["n"][0]))
                    except ValueError:
                        self._send_json(400, {"error": "n must be an integer"})
                        return
                    # Asking for more than the ring holds is a no-op, not
                    # an error: cap at capacity.
                    n = min(n, obs.QUERY_LOG.capacity)
                engine = params.get("engine", [None])[0]
                records = obs.QUERY_LOG.to_dicts(n, engine=engine)
                body = {
                    "total": obs.QUERY_LOG.total,
                    "returned": len(records),
                    "records": records,
                }
                if engine is not None:
                    body["engine"] = engine
                self._send_json(200, body)
            elif split.path == "/trace":
                self._send_json(200, obs.TRACER.to_chrome_trace())
            elif split.path == "/slo":
                from repro.obs import health

                report = health.evaluate(
                    obs.QUERY_LOG.records(),
                    objectives=self.server.slos or health.DEFAULT_OBJECTIVES,
                )
                self._send_json(200, report.to_dict())
            elif split.path == "/indexstats":
                from repro.obs import introspect

                reports = introspect.published()
                self._send_json(
                    200, {"reports": [r.to_dict() for r in reports]}
                )
            else:
                self._send_json(404, {"error": f"no route {split.path}"})
        except Exception as exc:  # pragma: no cover - defensive
            log.exception("request failed: %s", exc)
            self._send_json(500, {"error": type(exc).__name__})

    def _send(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, code: int, body) -> None:
        self._send(code, json.dumps(body), "application/json; charset=utf-8")

    def log_message(self, fmt: str, *args) -> None:
        log.debug("%s - %s", self.address_string(), fmt % args)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    started_at: float = 0.0
    slos = None


class ObservabilityServer:
    """Background-thread HTTP server over the global telemetry objects.

    ``slos`` optionally overrides the objectives the ``/slo`` route
    evaluates (defaults to ``repro.obs.health.DEFAULT_OBJECTIVES``).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, slos=None):
        self.host = host
        self.slos = slos
        self._requested_port = port
        self._httpd: _Server | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ObservabilityServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        self._httpd = _Server((self.host, self._requested_port), _Handler)
        self._httpd.started_at = time.time()
        self._httpd.slos = self.slos
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        log.info("observability server listening on %s", self.url)
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
