"""Metrics: a thread-safe registry of counters, gauges, and histograms.

Counters accumulate (`inc`), gauges hold the last value (`set_gauge`),
histograms bucket observations into fixed upper-bound buckets
(``value <= bound``, Prometheus ``le`` semantics) with a ``+inf`` overflow
bucket and running count/sum/min/max.  ``snapshot()`` returns a plain,
deterministically ordered dict (safe to ``json.dumps``); ``render()``
returns a human-readable dump.

Engines record *aggregated* amounts once per query (e.g. the number of
posting lists a JOSIE search read), never per-item increments inside hot
loops, so the always-on registry stays cheap.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """A Prometheus-legal metric name: prefixed, dots/dashes -> underscores."""
    full = f"{prefix}_{name}" if prefix else name
    full = _PROM_BAD.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full

#: Default histogram buckets, tuned for per-query latencies in milliseconds.
DEFAULT_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max."""

    __slots__ = ("buckets", "counts", "overflow", "count", "sum", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def to_dict(self) -> dict[str, Any]:
        buckets = {f"<={b:g}": c for b, c in zip(self.buckets, self.counts)}
        buckets["+inf"] = self.overflow
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": round(self.min, 6) if self.count else None,
            "max": round(self.max, 6) if self.count else None,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one lock."""

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        with self._lock:
            self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        """Record one observation into histogram ``name``.

        ``buckets`` only takes effect when the histogram is first created.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(buckets or DEFAULT_BUCKETS)
                self._histograms[name] = hist
            hist.observe(value)

    # -- reading -------------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def names(self) -> list[str]:
        """Every distinct metric name, sorted."""
        with self._lock:
            return sorted(
                set(self._counters) | set(self._gauges) | set(self._histograms)
            )

    def snapshot(self) -> dict[str, Any]:
        """Deterministic plain-dict dump of every metric.

        Keys are sorted lexicographically and histogram buckets ascend by
        bound with ``+inf`` last, regardless of recording order — exporter
        output and test goldens built on a snapshot are byte-stable.
        """
        with self._lock:
            return {
                "counters": {
                    k: self._counters[k] for k in sorted(self._counters)
                },
                "gauges": {
                    k: round(self._gauges[k], 6) for k in sorted(self._gauges)
                },
                "histograms": {
                    k: self._histograms[k].to_dict()
                    for k in sorted(self._histograms)
                },
            }

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition (version 0.0.4) of every metric.

        Counters get a ``_total`` suffix; histograms emit cumulative
        ``_bucket{le="..."}`` series ending in ``le="+Inf"`` plus ``_sum``
        and ``_count``.  Output is deterministic: families sort by name and
        ``le`` labels ascend, so two identical registries render
        byte-identical pages.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            hists = {
                name: (h.buckets, tuple(h.counts), h.overflow, h.count, h.sum)
                for name, h in self._histograms.items()
            }
        lines: list[str] = []
        for name in sorted(counters):
            pname = prometheus_name(name, prefix)
            if not pname.endswith("_total"):
                pname += "_total"
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {counters[name]:g}")
        for name in sorted(gauges):
            pname = prometheus_name(name, prefix)
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {gauges[name]:g}")
        for name in sorted(hists):
            bounds, bucket_counts, overflow, count, total = hists[name]
            pname = prometheus_name(name, prefix)
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, c in zip(bounds, bucket_counts):
                cumulative += c
                lines.append(
                    f'{pname}_bucket{{le="{bound:g}"}} {cumulative}'
                )
            lines.append(f'{pname}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{pname}_sum {total:g}")
            lines.append(f"{pname}_count {count}")
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        """Human-readable metrics dump."""
        snap = self.snapshot()
        lines: list[str] = []
        if snap["counters"]:
            lines.append("counters:")
            for name, value in snap["counters"].items():
                lines.append(f"  {name} = {value:g}")
        if snap["gauges"]:
            lines.append("gauges:")
            for name, value in snap["gauges"].items():
                lines.append(f"  {name} = {value:g}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name, h in snap["histograms"].items():
                if h["count"]:
                    mean = h["sum"] / h["count"]
                    lines.append(
                        f"  {name}: count={h['count']} mean={mean:.3f} "
                        f"min={h['min']:g} max={h['max']:g}"
                    )
                else:
                    lines.append(f"  {name}: count=0")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
