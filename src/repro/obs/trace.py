"""Tracing: nestable, thread-safe spans with near-zero disabled overhead.

A ``Span`` records a name, wall-clock duration, key/value attributes, and
child spans; a ``Tracer`` hands out spans as context managers and collects
finished root spans in memory.  When the tracer is disabled, ``span()``
returns a shared no-op singleton whose enter/exit does nothing — safe to
leave in hot paths.  ``force=True`` records a span even while the tracer is
disabled; the offline pipeline uses this so ``PipelineStats`` can always be
populated from span durations.

Spans nest per *thread* (a ``threading.local`` stack); a span opened on a
thread with no enclosing span becomes a root.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Iterator


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Span:
    """One timed, attributed unit of work.  Use as a context manager."""

    __slots__ = (
        "name", "attrs", "children", "duration_s", "forced",
        "_tracer", "_t0", "_tid",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, Any],
        forced: bool = False,
    ):
        self._tracer = tracer
        self.name = name
        self.attrs: dict[str, Any] = attrs
        self.children: list[Span] = []
        self.duration_s: float = 0.0
        #: force-recorded spans (offline pipeline) bypass trace sampling
        self.forced = forced
        self._t0 = 0.0
        self._tid = 0

    @property
    def start_s(self) -> float:
        """``time.perf_counter()`` at span entry (same clock as siblings)."""
        return self._t0

    @property
    def thread_id(self) -> int:
        return self._tid

    def __enter__(self) -> "Span":
        self._tracer._stack().append(self)
        self._tid = threading.get_ident()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        stack = self._tracer._stack()
        stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            self._tracer._add_root(self)
        return False

    def set(self, key: str, value: Any) -> "Span":
        """Attach one key/value attribute."""
        self.attrs[key] = value
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration_ms": round(self.duration_s * 1000, 3),
            "attrs": {k: _jsonable(v) for k, v in self.attrs.items()},
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    name = ""
    duration_s = 0.0
    attrs: dict[str, Any] = {}
    children: list = []

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans and collects finished root spans in memory.

    An optional :class:`~repro.obs.sampling.TraceSampler` decides, once per
    *completed* root span, whether its tree is retained — forced spans are
    always kept, and with no sampler every tree is kept.
    """

    def __init__(self, enabled: bool = False, sampler=None):
        self._enabled = enabled
        self._roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self.sampler = sampler

    # -- state --------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop all collected spans (active spans are unaffected)."""
        with self._lock:
            self._roots = []

    # -- span creation -------------------------------------------------------------

    def span(self, name: str, force: bool = False, **attrs: Any):
        """A context manager timing one unit of work.

        Returns the no-op singleton when disabled (unless ``force``), so
        callers never need to check ``enabled`` themselves.
        """
        if not self._enabled and not force:
            return NOOP_SPAN
        return Span(self, name, attrs, forced=force)

    def current(self):
        """The innermost active span on this thread (no-op span if none)."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1]
        return NOOP_SPAN

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _add_root(self, span: Span) -> None:
        if (
            self.sampler is not None
            and not span.forced
            and not self.sampler.keep(span)
        ):
            return
        with self._lock:
            self._roots.append(span)

    # -- export --------------------------------------------------------------------

    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def spans(self) -> list[Span]:
        """Every collected span, depth first across roots."""
        return [s for root in self.roots() for s in root.walk()]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [root.to_dict() for root in self.roots()]

    def export_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome/Perfetto trace-event JSON of every collected span.

        Emits complete (``"ph": "X"``) events with microsecond timestamps
        relative to the earliest span, one virtual thread per real thread,
        so ``chrome://tracing`` / https://ui.perfetto.dev render the span
        forest as nested slices.
        """
        spans = self.spans()
        if not spans:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        base = min(s.start_s for s in spans)
        tids = {s.thread_id for s in spans}
        tid_map = {tid: i + 1 for i, tid in enumerate(sorted(tids))}
        events = []
        for s in spans:
            events.append(
                {
                    "name": s.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round((s.start_s - base) * 1e6, 3),
                    "dur": round(s.duration_s * 1e6, 3),
                    "pid": 1,
                    "tid": tid_map[s.thread_id],
                    "args": {k: _jsonable(v) for k, v in s.attrs.items()},
                }
            )
        events.sort(key=lambda e: (e["ts"], -e["dur"], e["name"]))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def render(self) -> str:
        """Human-readable indented span tree with durations."""
        lines: list[str] = []

        def emit(span: Span, depth: int) -> None:
            pad = "  " * depth
            attrs = ""
            if span.attrs:
                inner = ", ".join(
                    f"{k}={_jsonable(v)}" for k, v in span.attrs.items()
                )
                attrs = f"  [{inner}]"
            lines.append(
                f"{pad}{span.name:<{max(1, 40 - 2 * depth)}}"
                f"{span.duration_s * 1000:9.2f} ms{attrs}"
            )
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots():
            emit(root, 0)
        return "\n".join(lines)
