"""Telemetry exporters: Prometheus text, Chrome trace JSON, JSONL dump.

Thin conveniences over the process-wide singletons (``obs.METRICS``,
``obs.TRACER``, ``obs.QUERY_LOG``); each also accepts an explicit object so
tests and embedders can export private registries/tracers.

* :func:`to_prometheus` — Prometheus text exposition (version 0.0.4);
* :func:`to_chrome_trace` — trace-event JSON loadable by ``chrome://tracing``
  and https://ui.perfetto.dev;
* :func:`telemetry_lines` / :func:`write_telemetry` — one self-describing
  JSON object per line (``{"type": "span" | "counter" | "gauge" |
  "histogram" | "query", ...}``) for ingestion into log pipelines.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry, prometheus_name
from repro.obs.querylog import QueryLog
from repro.obs.trace import Tracer

__all__ = [
    "prometheus_name",
    "telemetry_lines",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "to_prometheus",
    "write_telemetry",
]


def _defaults(
    registry: MetricsRegistry | None,
    tracer: Tracer | None,
    querylog: QueryLog | None,
):
    from repro import obs

    return (
        registry if registry is not None else obs.METRICS,
        tracer if tracer is not None else obs.TRACER,
        querylog if querylog is not None else obs.QUERY_LOG,
    )


def to_prometheus(
    registry: MetricsRegistry | None = None, prefix: str = "repro"
) -> str:
    """Prometheus text page for ``registry`` (default: the global one)."""
    registry, _, _ = _defaults(registry, None, None)
    return registry.to_prometheus(prefix=prefix)


def to_chrome_trace(tracer: Tracer | None = None) -> dict[str, Any]:
    """Chrome trace-event dict for ``tracer`` (default: the global one)."""
    _, tracer, _ = _defaults(None, tracer, None)
    return tracer.to_chrome_trace()


def to_chrome_trace_json(
    tracer: Tracer | None = None, indent: int | None = None
) -> str:
    return json.dumps(to_chrome_trace(tracer), indent=indent)


def telemetry_lines(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    querylog: QueryLog | None = None,
    extra: dict[str, Any] | None = None,
) -> Iterator[str]:
    """Yield one JSON line per telemetry item (spans, metrics, queries)."""
    registry, tracer, querylog = _defaults(registry, tracer, querylog)
    if extra:
        yield json.dumps({"type": "meta", **extra}, sort_keys=True)
    for root in tracer.roots():
        for depth, span in _walk_with_depth(root, 0):
            yield json.dumps(
                {
                    "type": "span",
                    "name": span.name,
                    "depth": depth,
                    "duration_ms": round(span.duration_s * 1000, 3),
                    "attrs": span.to_dict()["attrs"],
                },
                sort_keys=True,
            )
    snap = registry.snapshot()
    for name, value in snap["counters"].items():
        yield json.dumps(
            {"type": "counter", "name": name, "value": value}, sort_keys=True
        )
    for name, value in snap["gauges"].items():
        yield json.dumps(
            {"type": "gauge", "name": name, "value": value}, sort_keys=True
        )
    for name, hist in snap["histograms"].items():
        yield json.dumps(
            {"type": "histogram", "name": name, **hist}, sort_keys=True
        )
    for record in querylog.to_dicts():
        yield json.dumps({"type": "query", **record}, sort_keys=True)


def _walk_with_depth(span, depth: int):
    yield depth, span
    for child in span.children:
        yield from _walk_with_depth(child, depth + 1)


def write_telemetry(
    path: str,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    querylog: QueryLog | None = None,
    extra: dict[str, Any] | None = None,
) -> int:
    """Write the JSONL telemetry dump to ``path``; returns the line count."""
    n = 0
    with open(path, "w", encoding="utf-8") as f:
        for line in telemetry_lines(registry, tracer, querylog, extra):
            f.write(line + "\n")
            n += 1
    return n
