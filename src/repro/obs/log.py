"""Stdlib logging helpers: one ``repro`` logger hierarchy, one handler.

``get_logger("core.system")`` returns ``logging.getLogger("repro.core.system")``;
``configure(verbosity)`` installs (or replaces) a stderr handler on the
``repro`` root logger, mapping the CLI's ``-v`` count to a level:
0 → WARNING, 1 → INFO, ≥2 → DEBUG.  Reconfiguring is idempotent — repeated
calls never stack handlers.
"""

from __future__ import annotations

import logging
import sys

_MARKER = "_repro_obs_handler"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy."""
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install the library's stderr handler at the level for ``verbosity``."""
    if verbosity <= 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    root = logging.getLogger("repro")
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, _MARKER, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s", "%H:%M:%S"
        )
    )
    setattr(handler, _MARKER, True)
    root.addHandler(handler)
    return root
