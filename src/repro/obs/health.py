"""SLO engine: declarative per-engine objectives with burn-rate alerting.

An :class:`SloObjective` declares what "healthy" means for one engine (or
``"*"`` for all traffic): a p95 latency target and an error-rate budget.
:func:`evaluate` checks the objectives against the structured query log
using the multi-window burn-rate method: each signal (latency, errors) is
reduced to *bad events* — a query slower than the latency target, or a
query that errored — and the burn rate is

    burn = observed bad fraction / budgeted bad fraction

computed over a long window (``window_s``) and a short window
(``window_s / 12``, the classic 1h/5m pairing).  An objective breaches only
when *both* windows burn at or above the threshold, so a long-past incident
(long window hot, short window cold) or a momentary blip (short hot, long
cold) does not page.

For the latency signal the budget is the 5% of requests a p95 target
implicitly allows above the threshold.  Zero events in the long window
means "no data", never a breach.

Surfaces: ``repro slo`` (exit 1 on breach — cron/CI friendly), the ``/slo``
route on :class:`~repro.obs.server.ObservabilityServer`, and ``repro top``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.querylog import QueryRecord

#: Short window = long window / SHORT_WINDOW_DIVISOR (1h -> 5m).
SHORT_WINDOW_DIVISOR = 12

#: A p95 target tolerates 5% of requests above the latency threshold.
LATENCY_BUDGET = 0.05


@dataclass(frozen=True)
class SloObjective:
    """One engine's health contract.

    ``engine`` is a query-log engine name (``"keyword"``, ``"join"``, ...)
    or ``"*"`` to pool all traffic.  ``p95_ms`` / ``error_rate`` may each be
    ``None`` to skip that signal.
    """

    engine: str = "*"
    p95_ms: float | None = 500.0
    error_rate: float | None = 0.05
    window_s: float = 3600.0

    def validate(self) -> "SloObjective":
        if self.p95_ms is not None and self.p95_ms <= 0:
            raise ValueError(f"p95_ms must be positive, got {self.p95_ms}")
        if self.error_rate is not None and not 0 < self.error_rate <= 1:
            raise ValueError(
                f"error_rate must be in (0, 1], got {self.error_rate}"
            )
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        return self

    @classmethod
    def parse(cls, spec: str) -> "SloObjective":
        """Parse ``ENGINE:P95_MS:ERROR_RATE[:WINDOW_S]`` (empty field skips
        the signal), e.g. ``join:250:0.01`` or ``*::0.05:600``."""
        parts = spec.split(":")
        if not 2 <= len(parts) <= 4:
            raise ValueError(
                f"objective spec {spec!r} is not ENGINE:P95_MS:ERROR_RATE[:WINDOW_S]"
            )
        engine = parts[0] or "*"
        p95 = float(parts[1]) if len(parts) > 1 and parts[1] else None
        err = float(parts[2]) if len(parts) > 2 and parts[2] else None
        window = float(parts[3]) if len(parts) > 3 and parts[3] else 3600.0
        return cls(engine, p95, err, window).validate()


#: Default objectives: generous enough that a healthy in-process lake passes.
DEFAULT_OBJECTIVES: tuple[SloObjective, ...] = (SloObjective(),)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on an empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class WindowBurn:
    """Bad-event burn rate over one window."""

    window_s: float
    events: int
    bad: int
    burn: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_s": self.window_s,
            "events": self.events,
            "bad": self.bad,
            "burn": round(self.burn, 4),
        }


@dataclass
class SloStatus:
    """One (objective, signal) verdict."""

    engine: str
    signal: str  # "latency" or "errors"
    target: float
    long_window: WindowBurn
    short_window: WindowBurn
    observed_p95_ms: float | None = None
    breached: bool = False

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "engine": self.engine,
            "signal": self.signal,
            "target": self.target,
            "breached": self.breached,
            "long": self.long_window.to_dict(),
            "short": self.short_window.to_dict(),
        }
        if self.observed_p95_ms is not None:
            out["observed_p95_ms"] = round(self.observed_p95_ms, 3)
        return out


@dataclass
class SloReport:
    """All objective verdicts for one evaluation pass."""

    statuses: list[SloStatus] = field(default_factory=list)
    evaluated_at: float = 0.0
    burn_threshold: float = 1.0

    @property
    def ok(self) -> bool:
        return not any(s.breached for s in self.statuses)

    def breaches(self) -> list[SloStatus]:
        return [s for s in self.statuses if s.breached]

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "evaluated_at": round(self.evaluated_at, 3),
            "burn_threshold": self.burn_threshold,
            "statuses": [s.to_dict() for s in self.statuses],
        }

    def render(self) -> str:
        lines = [
            f"SLO report ({'OK' if self.ok else 'BREACH'}, "
            f"burn threshold {self.burn_threshold:g})"
        ]
        for s in self.statuses:
            state = "BREACH" if s.breached else "ok"
            extra = (
                f" p95={s.observed_p95_ms:.1f}ms"
                if s.observed_p95_ms is not None
                else ""
            )
            lines.append(
                f"  {state:<6} {s.engine:<10} {s.signal:<8} "
                f"target={s.target:g} "
                f"burn(long)={s.long_window.burn:.2f} "
                f"({s.long_window.bad}/{s.long_window.events}) "
                f"burn(short)={s.short_window.burn:.2f} "
                f"({s.short_window.bad}/{s.short_window.events})"
                f"{extra}"
            )
        return "\n".join(lines)


def _window_burn(
    records: list[QueryRecord],
    now: float,
    window_s: float,
    budget: float,
    is_bad,
) -> WindowBurn:
    cutoff = now - window_s
    inside = [r for r in records if r.ts >= cutoff]
    bad = sum(1 for r in inside if is_bad(r))
    if not inside:
        burn = 0.0
    else:
        burn = (bad / len(inside)) / budget
    return WindowBurn(window_s, len(inside), bad, burn)


def evaluate(
    records: Iterable[QueryRecord],
    objectives: Sequence[SloObjective] = DEFAULT_OBJECTIVES,
    now: float | None = None,
    burn_threshold: float = 1.0,
) -> SloReport:
    """Evaluate objectives against query records; see the module docstring
    for the multi-window burn-rate semantics."""
    now = time.time() if now is None else now
    all_records = list(records)
    report = SloReport(evaluated_at=now, burn_threshold=burn_threshold)
    for obj in objectives:
        obj.validate()
        pool = (
            all_records
            if obj.engine == "*"
            else [r for r in all_records if r.engine == obj.engine]
        )
        short_s = obj.window_s / SHORT_WINDOW_DIVISOR
        if obj.p95_ms is not None:
            target = obj.p95_ms

            def slow(r: QueryRecord, _t=target) -> bool:
                return r.latency_ms > _t

            long_w = _window_burn(pool, now, obj.window_s, LATENCY_BUDGET, slow)
            short_w = _window_burn(pool, now, short_s, LATENCY_BUDGET, slow)
            cutoff = now - obj.window_s
            latencies = [r.latency_ms for r in pool if r.ts >= cutoff]
            report.statuses.append(
                SloStatus(
                    engine=obj.engine,
                    signal="latency",
                    target=target,
                    long_window=long_w,
                    short_window=short_w,
                    observed_p95_ms=percentile(latencies, 95),
                    breached=(
                        long_w.events > 0
                        and long_w.burn >= burn_threshold
                        and short_w.burn >= burn_threshold
                    ),
                )
            )
        if obj.error_rate is not None:

            def errored(r: QueryRecord) -> bool:
                return r.status != "ok"

            long_w = _window_burn(
                pool, now, obj.window_s, obj.error_rate, errored
            )
            short_w = _window_burn(pool, now, short_s, obj.error_rate, errored)
            report.statuses.append(
                SloStatus(
                    engine=obj.engine,
                    signal="errors",
                    target=obj.error_rate,
                    long_window=long_w,
                    short_window=short_w,
                    breached=(
                        long_w.events > 0
                        and long_w.burn >= burn_threshold
                        and short_w.burn >= burn_threshold
                    ),
                )
            )
    return report
