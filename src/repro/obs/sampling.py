"""Head-based trace sampling with always-keep escape hatches.

Under production load, collecting every span tree is too expensive to leave
on; dropping tracing entirely loses exactly the traces an operator needs
(errors, tail latency).  :class:`TraceSampler` implements the standard
compromise: keep a configurable fraction of root span trees, but *always*
keep a tree that recorded an error or whose root latency exceeded the
slow-query threshold.

The decision is made once per root span when it completes (children share
their root's fate), so memory stays bounded: an unsampled tree is discarded
the moment its root exits.  The sampler is deterministic for a fixed seed,
which keeps tests reproducible.

The sampler keeps its own counters (it cannot import the process-wide
``METRICS`` registry without creating an import cycle); ``stats()`` exposes
them and ``obs.report()`` includes them.
"""

from __future__ import annotations

import random
import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Span


def span_tree_has_error(span: "Span") -> bool:
    """True if the span or any descendant carries an ``error`` attribute."""
    for s in span.walk():
        if "error" in s.attrs:
            return True
    return False


class TraceSampler:
    """Decides which completed root span trees a ``Tracer`` retains.

    ``rate`` is the base keep probability in [0, 1] (1.0 = keep all, the
    default, so an unconfigured tracer behaves exactly as before).
    ``slow_ms`` is the slow-query threshold: a root whose duration meets or
    exceeds it is kept regardless of the rate.  Errors anywhere in the tree
    are always kept.  Forced spans (``Tracer.span(..., force=True)``, used
    by the offline pipeline) bypass sampling entirely.
    """

    def __init__(
        self,
        rate: float = 1.0,
        slow_ms: float | None = None,
        seed: int = 0,
    ):
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self.rate = rate
        self.slow_ms = slow_ms
        self._validate()
        self.reset_counters()

    def _validate(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {self.rate}")
        if self.slow_ms is not None and self.slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {self.slow_ms}")

    def configure(
        self,
        rate: float | None = None,
        slow_ms: float | None = ...,  # type: ignore[assignment]
        seed: int | None = None,
    ) -> "TraceSampler":
        """Update sampling knobs in place (``None``/``...`` keep current)."""
        with self._lock:
            if rate is not None:
                self.rate = rate
            if slow_ms is not ...:
                self.slow_ms = slow_ms
            if seed is not None:
                self._rng = random.Random(seed)
            self._validate()
        return self

    def reset_counters(self) -> None:
        self.decisions = 0
        self.kept = 0
        self.kept_error = 0
        self.kept_slow = 0
        self.dropped = 0

    # -- the decision ------------------------------------------------------------

    def keep(self, root: "Span") -> bool:
        """Whether a completed root span tree should be retained."""
        with self._lock:
            self.decisions += 1
            if self.slow_ms is not None and root.duration_s * 1000 >= self.slow_ms:
                self.kept += 1
                self.kept_slow += 1
                return True
            if span_tree_has_error(root):
                self.kept += 1
                self.kept_error += 1
                return True
            if self.rate >= 1.0 or self._rng.random() < self.rate:
                self.kept += 1
                return True
            self.dropped += 1
            return False

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "rate": self.rate,
                "slow_ms": self.slow_ms,
                "decisions": self.decisions,
                "kept": self.kept,
                "kept_error": self.kept_error,
                "kept_slow": self.kept_slow,
                "dropped": self.dropped,
            }
