"""Index introspection: size, skew, and memory footprint of built indexes.

Benchmark studies of real data-lake deployments show that index size and
per-query cost skew — not average-case accuracy — decide whether a
discovery system is viable.  This module gives every index a uniform
introspection surface: engines implement ``stats() -> dict`` (cheap,
structure-level numbers: posting-list distribution, HNSW degree/level
histograms, LSH partition occupancy, ...), and
:meth:`DiscoverySystem.index_stats` wraps each into an
:class:`IndexStatsReport` with an estimated in-memory footprint from
:func:`deep_sizeof`.

Reports are published process-wide (:func:`publish` / :func:`published`)
so the ``/indexstats`` HTTP route and ``/metrics`` gauges can serve the
latest build's numbers without holding a reference to the system.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.health import percentile


def deep_sizeof(obj: Any) -> int:
    """Estimated total bytes reachable from ``obj``.

    Iterative traversal over containers and ``__dict__``/``__slots__``
    instances, counting each object once by identity.  numpy arrays report
    ``sys.getsizeof`` plus their buffer (``nbytes``) so large vector stores
    are not undercounted.  An estimate, not an accounting: shared interned
    objects are charged to the first referrer.
    """
    seen: set[int] = set()
    total = 0
    stack = [obj]
    while stack:
        cur = stack.pop()
        if id(cur) in seen:
            continue
        seen.add(id(cur))
        try:
            total += sys.getsizeof(cur)
        except TypeError:  # pragma: no cover - exotic objects
            continue
        nbytes = getattr(cur, "nbytes", None)
        if nbytes is not None and not isinstance(cur, (int, float)):
            # numpy array / memoryview: getsizeof misses the data buffer
            # for ndarray views; nbytes covers it.
            total += int(nbytes)
            continue
        if isinstance(cur, dict):
            stack.extend(cur.keys())
            stack.extend(cur.values())
        elif isinstance(cur, (list, tuple, set, frozenset)):
            stack.extend(cur)
        elif isinstance(cur, (str, bytes, bytearray, int, float, complex, bool)):
            continue
        else:
            d = getattr(cur, "__dict__", None)
            if d is not None:
                stack.append(d)
            for slot in getattr(type(cur), "__slots__", ()) or ():
                if hasattr(cur, slot):
                    stack.append(getattr(cur, slot))
    return total


def summarize_distribution(values: Iterable[float]) -> dict[str, Any]:
    """Compact skew summary of a size distribution: count/total/min/mean/
    median/p95/max — enough to spot hot posting lists or lopsided
    partitions without shipping the raw histogram."""
    vals = [float(v) for v in values]
    if not vals:
        return {"count": 0}
    total = sum(vals)
    return {
        "count": len(vals),
        "total": round(total, 3),
        "min": round(min(vals), 3),
        "mean": round(total / len(vals), 3),
        "p50": round(percentile(vals, 50), 3),
        "p95": round(percentile(vals, 95), 3),
        "max": round(max(vals), 3),
    }


@dataclass
class IndexStatsReport:
    """One built index's introspection snapshot."""

    name: str  # e.g. "josie", "starmie.hnsw"
    kind: str  # e.g. "inverted+sets", "hnsw"
    items: int  # primary cardinality (sets, nodes, sketches, ...)
    memory_bytes: int
    detail: dict[str, Any] = field(default_factory=dict)
    #: Where the index came from: a live build (source=build, build_jobs,
    #: stage list) or a reloaded snapshot (source=snapshot, path,
    #: created_at, config hash, lake fingerprint).
    provenance: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out = {
            "name": self.name,
            "kind": self.kind,
            "items": self.items,
            "memory_bytes": self.memory_bytes,
            "detail": self.detail,
        }
        if self.provenance:
            out["provenance"] = self.provenance
        return out

    def render(self) -> str:
        lines = [
            f"{self.name} ({self.kind}): {self.items} items, "
            f"{self.memory_bytes / 1024:.1f} KiB"
        ]
        for key in sorted(self.detail):
            lines.append(f"  {key} = {self.detail[key]}")
        if self.provenance:
            src = self.provenance.get("source", "?")
            rest = ", ".join(
                f"{k}={v}"
                for k, v in sorted(self.provenance.items())
                if k != "source"
            )
            lines.append(f"  provenance = {src}" + (f" ({rest})" if rest else ""))
        return "\n".join(lines)


_LOCK = threading.Lock()
_PUBLISHED: list[IndexStatsReport] = []


def publish(reports: Sequence[IndexStatsReport]) -> None:
    """Make ``reports`` the process-wide snapshot served by ``/indexstats``."""
    global _PUBLISHED
    with _LOCK:
        _PUBLISHED = list(reports)


def published() -> list[IndexStatsReport]:
    with _LOCK:
        return list(_PUBLISHED)


def clear_published() -> None:
    publish([])
