"""``repro top``: a stdlib-only live terminal dashboard for a running
:class:`~repro.obs.server.ObservabilityServer`.

Polls ``/health``, ``/querylog``, and ``/slo`` over HTTP and renders, in
place (ANSI clear-and-home between frames), one row per engine: queries
served, QPS over the recent window, p50/p95 latency, mean CPU time, error
rate, and the worst SLO burn rate affecting that engine.  Nothing beyond
``urllib`` is required, so it works anywhere the CLI does — including
inside an ssh session next to a misbehaving deployment.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from typing import Any, TextIO

from repro.obs.health import percentile

CLEAR = "\x1b[H\x1b[2J"


class TopDashboard:
    """Fetch + aggregate + render loop behind ``repro top``."""

    def __init__(self, url: str, window_s: float = 60.0, timeout: float = 5.0):
        self.url = url.rstrip("/")
        self.window_s = window_s
        self.timeout = timeout

    # -- data ------------------------------------------------------------------

    def _get_json(self, path: str) -> dict[str, Any]:
        with urllib.request.urlopen(
            self.url + path, timeout=self.timeout
        ) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def fetch(self) -> dict[str, Any]:
        """One poll of the server: health + query records + SLO report."""
        return {
            "health": self._get_json("/health"),
            "querylog": self._get_json("/querylog"),
            "slo": self._get_json("/slo"),
        }

    # -- aggregation -----------------------------------------------------------

    def engine_rows(self, snap: dict[str, Any]) -> list[dict[str, Any]]:
        """Per-engine aggregates from the polled query records."""
        records = snap["querylog"].get("records", [])
        now = time.time()
        burn_by_engine: dict[str, float] = {}
        for status in snap["slo"].get("statuses", []):
            burn = status.get("long", {}).get("burn", 0.0)
            engine = status.get("engine", "*")
            burn_by_engine[engine] = max(burn_by_engine.get(engine, 0.0), burn)
        engines: dict[str, list[dict[str, Any]]] = {}
        for rec in records:
            engines.setdefault(rec.get("engine", "?"), []).append(rec)
        rows = []
        for engine in sorted(engines):
            recs = engines[engine]
            lats = [r.get("latency_ms", 0.0) for r in recs]
            recent = [
                r for r in recs if r.get("ts", 0.0) >= now - self.window_s
            ]
            errors = sum(1 for r in recs if r.get("status") != "ok")
            burn = burn_by_engine.get(engine, burn_by_engine.get("*", 0.0))
            rows.append(
                {
                    "engine": engine,
                    "queries": len(recs),
                    "qps": len(recent) / self.window_s,
                    "p50_ms": percentile(lats, 50),
                    "p95_ms": percentile(lats, 95),
                    "cpu_ms": (
                        sum(r.get("cpu_ms", 0.0) for r in recs) / len(recs)
                    ),
                    "error_rate": errors / len(recs),
                    "burn": burn,
                }
            )
        return rows

    # -- rendering ---------------------------------------------------------------

    def render(self, snap: dict[str, Any]) -> str:
        health = snap["health"]
        slo = snap["slo"]
        state = "OK" if slo.get("ok", True) else "SLO BREACH"
        lines = [
            f"repro top — {self.url}  [{state}]",
            f"uptime {health.get('uptime_s', 0):.0f}s   "
            f"queries {health.get('queries_logged', 0)}   "
            f"tracing {'on' if health.get('tracing') else 'off'}   "
            f"window {self.window_s:g}s",
            "",
            f"{'ENGINE':<16}{'QUERIES':>8}{'QPS':>8}{'P50MS':>9}"
            f"{'P95MS':>9}{'CPUMS':>9}{'ERR%':>7}{'BURN':>7}",
        ]
        rows = self.engine_rows(snap)
        if not rows:
            lines.append("  (no queries logged yet)")
        for r in rows:
            lines.append(
                f"{r['engine']:<16}{r['queries']:>8}{r['qps']:>8.2f}"
                f"{r['p50_ms']:>9.2f}{r['p95_ms']:>9.2f}{r['cpu_ms']:>9.2f}"
                f"{r['error_rate'] * 100:>7.1f}{r['burn']:>7.2f}"
            )
        breaches = [
            s for s in slo.get("statuses", []) if s.get("breached")
        ]
        if breaches:
            lines.append("")
            lines.append("breaches:")
            for s in breaches:
                lines.append(
                    f"  {s['engine']} {s['signal']}: "
                    f"burn(long)={s['long']['burn']:.2f} "
                    f"burn(short)={s['short']['burn']:.2f} "
                    f"target={s['target']:g}"
                )
        return "\n".join(lines)

    # -- loop --------------------------------------------------------------------

    def run(
        self,
        iterations: int | None = None,
        interval: float = 2.0,
        out: TextIO | None = None,
        clear: bool = True,
    ) -> int:
        """Poll-and-render loop; ``iterations=None`` runs until Ctrl-C.

        Returns the number of frames rendered.
        """
        out = out or sys.stdout
        frames = 0
        try:
            while iterations is None or frames < iterations:
                snap = self.fetch()
                if clear:
                    out.write(CLEAR)
                out.write(self.render(snap) + "\n")
                out.flush()
                frames += 1
                if iterations is not None and frames >= iterations:
                    break
                time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        return frames
