"""Observability: tracing spans, a metrics registry, and logging helpers.

The library shares one module-level :class:`~repro.obs.trace.Tracer`
(``TRACER``, disabled by default) and one
:class:`~repro.obs.metrics.MetricsRegistry` (``METRICS``, always on).
Engines annotate the enclosing span via ``TRACER.current()`` and record
aggregated counters once per query via ``METRICS.inc`` — with tracing
disabled the span calls are no-ops, so instrumented hot paths cost nothing
measurable.

Typical profiling session::

    from repro import obs

    obs.reset()
    obs.enable_tracing()
    system = DiscoverySystem(lake).build()
    system.keyword_search("air quality")
    print(obs.TRACER.render())
    print(obs.METRICS.render())
    report = obs.report()          # JSON-ready span tree + metrics snapshot
"""

from __future__ import annotations

from typing import Any

from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    prometheus_name,
)
from repro.obs.querylog import QUERY_LOG, QueryLog, QueryRecord
from repro.obs.trace import NOOP_SPAN, Span, Tracer

#: Process-wide tracer; disabled by default (spans become no-ops).
TRACER = Tracer(enabled=False)

#: Process-wide metrics registry; always collecting.
METRICS = MetricsRegistry()


def enable_tracing() -> None:
    TRACER.enable()


def disable_tracing() -> None:
    TRACER.disable()


def reset() -> None:
    """Clear collected spans, metrics, and query records (flags are kept)."""
    TRACER.reset()
    METRICS.reset()
    QUERY_LOG.clear()


def report(extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """A JSON-ready observability report: span tree + metrics snapshot +
    recent query records."""
    out: dict[str, Any] = dict(extra or {})
    out["spans"] = TRACER.to_dicts()
    out["metrics"] = METRICS.snapshot()
    out["querylog"] = QUERY_LOG.to_dicts()
    return out


# Imported late: these modules read the singletons defined above.
from repro.obs.export import (  # noqa: E402
    telemetry_lines,
    to_chrome_trace,
    to_chrome_trace_json,
    to_prometheus,
    write_telemetry,
)
from repro.obs.server import ObservabilityServer  # noqa: E402

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ObservabilityServer",
    "QUERY_LOG",
    "QueryLog",
    "QueryRecord",
    "Span",
    "TRACER",
    "Tracer",
    "configure_logging",
    "disable_tracing",
    "enable_tracing",
    "get_logger",
    "prometheus_name",
    "report",
    "reset",
    "telemetry_lines",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "to_prometheus",
    "write_telemetry",
]
