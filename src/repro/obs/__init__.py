"""Observability: tracing spans, a metrics registry, and logging helpers.

The library shares one module-level :class:`~repro.obs.trace.Tracer`
(``TRACER``, disabled by default) and one
:class:`~repro.obs.metrics.MetricsRegistry` (``METRICS``, always on).
Engines annotate the enclosing span via ``TRACER.current()`` and record
aggregated counters once per query via ``METRICS.inc`` — with tracing
disabled the span calls are no-ops, so instrumented hot paths cost nothing
measurable.

Typical profiling session::

    from repro import obs

    obs.reset()
    obs.enable_tracing()
    system = DiscoverySystem(lake).build()
    system.keyword_search("air quality")
    print(obs.TRACER.render())
    print(obs.METRICS.render())
    report = obs.report()          # JSON-ready span tree + metrics snapshot
"""

from __future__ import annotations

from typing import Any

import tracemalloc

from repro.obs.health import DEFAULT_OBJECTIVES, SloObjective, SloReport
from repro.obs.introspect import IndexStatsReport, deep_sizeof
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    prometheus_name,
)
from repro.obs.querylog import QUERY_LOG, QueryLog, QueryRecord
from repro.obs.sampling import TraceSampler
from repro.obs.trace import NOOP_SPAN, Span, Tracer

#: Process-wide trace sampler; keep-everything until configured.
SAMPLER = TraceSampler()

#: Process-wide tracer; disabled by default (spans become no-ops).
TRACER = Tracer(enabled=False, sampler=SAMPLER)

#: Process-wide metrics registry; always collecting.
METRICS = MetricsRegistry()


def enable_tracing() -> None:
    TRACER.enable()


def disable_tracing() -> None:
    TRACER.disable()


def configure_sampling(
    rate: float | None = None,
    slow_ms: float | None = ...,  # type: ignore[assignment]
    seed: int | None = None,
) -> TraceSampler:
    """Configure head-based trace sampling on the process-wide tracer."""
    return SAMPLER.configure(rate=rate, slow_ms=slow_ms, seed=seed)


def enable_memory_accounting() -> None:
    """Start tracemalloc so every query record carries its peak allocation
    delta (opt-in: tracemalloc costs ~2x on allocation-heavy paths)."""
    if not tracemalloc.is_tracing():
        tracemalloc.start()


def disable_memory_accounting() -> None:
    if tracemalloc.is_tracing():
        tracemalloc.stop()


def memory_accounting_enabled() -> bool:
    return tracemalloc.is_tracing()


def reset() -> None:
    """Clear collected spans, metrics, query records, and sampler counters
    (enabled/sampling-rate flags are kept)."""
    TRACER.reset()
    METRICS.reset()
    QUERY_LOG.clear()
    SAMPLER.reset_counters()


def report(extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """A JSON-ready observability report: span tree + metrics snapshot +
    recent query records + sampling counters."""
    out: dict[str, Any] = dict(extra or {})
    out["spans"] = TRACER.to_dicts()
    out["metrics"] = METRICS.snapshot()
    out["querylog"] = QUERY_LOG.to_dicts()
    out["sampling"] = SAMPLER.stats()
    return out


# Imported late: these modules read the singletons defined above.
from repro.obs.export import (  # noqa: E402
    telemetry_lines,
    to_chrome_trace,
    to_chrome_trace_json,
    to_prometheus,
    write_telemetry,
)
from repro.obs.server import ObservabilityServer  # noqa: E402

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_OBJECTIVES",
    "Histogram",
    "IndexStatsReport",
    "METRICS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ObservabilityServer",
    "QUERY_LOG",
    "QueryLog",
    "QueryRecord",
    "SAMPLER",
    "SloObjective",
    "SloReport",
    "Span",
    "TRACER",
    "TraceSampler",
    "Tracer",
    "configure_logging",
    "configure_sampling",
    "deep_sizeof",
    "disable_memory_accounting",
    "disable_tracing",
    "enable_memory_accounting",
    "enable_tracing",
    "get_logger",
    "memory_accounting_enabled",
    "prometheus_name",
    "report",
    "reset",
    "telemetry_lines",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "to_prometheus",
    "write_telemetry",
]
