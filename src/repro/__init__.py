"""tablediscovery: a full-stack reproduction of "Table Discovery in Data
Lakes: State-of-the-art and Future Directions" (SIGMOD-Companion 2023).

The package implements the tutorial's Figure-1 architecture end to end:

* ``repro.datalake``      — lake substrate (tables, typing, CSV, ontology,
  synthetic benchmark corpora with ground truth);
* ``repro.sketch``        — indexing substrate (MinHash, LSH, LSH Ensemble,
  inverted index, HNSW, KMV, QCR correlation sketch, SimHash);
* ``repro.understanding`` — table understanding (annotation, semantic type
  detection, domain discovery, embeddings, contextual column encoders);
* ``repro.search``        — the table search engine (keyword, JOSIE, PEXESO,
  MATE, correlated search, TUS / SANTOS / Starmie union search);
* ``repro.graph``         — navigation support (Aurum EKG, organizations,
  RONIN, homograph detection);
* ``repro.apps``          — data science support (ARDA augmentation,
  stitching/KB completion, training set discovery);
* ``repro.core``          — the ``DiscoverySystem`` facade tying it together;
* ``repro.obs``           — observability (tracing spans, metrics registry,
  logging helpers; see ``docs/observability.md``);
* ``repro.bench``         — metrics, workloads, and the experiment harness.

Quickstart::

    from repro import DataLake, DiscoverySystem, Table

    lake = DataLake([Table.from_dict("t", {"city": ["oslo", "rome"]})])
    system = DiscoverySystem(lake).build()
    system.keyword_search("city")
"""

from repro.core.config import DiscoveryConfig
from repro.core.system import DiscoverySystem
from repro.datalake.csvio import read_table_csv, write_table_csv
from repro.datalake.lake import DataLake
from repro.datalake.ontology import Ontology
from repro.datalake.table import Column, ColumnRef, Table, TableMetadata

__version__ = "0.1.0"

__all__ = [
    "Column",
    "ColumnRef",
    "DataLake",
    "DiscoveryConfig",
    "DiscoverySystem",
    "Ontology",
    "Table",
    "TableMetadata",
    "read_table_csv",
    "write_table_csv",
    "__version__",
]
